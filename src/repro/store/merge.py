"""Union per-worker result stores into one — the multi-host campaign join.

A sharded campaign (:mod:`repro.campaign`) can give every worker — or every
host — its own :class:`~repro.store.store.ResultStore`; because cell keys
are content-addressed and location-agnostic, the per-worker stores are
mergeable by construction.  :func:`merge_stores` performs that union:

* entries are copied **byte-for-byte** (the raw entry file travels, so a
  merged cell re-serves the exact bytes its producer wrote);
* a key present in both source and destination is **verified**, not
  replaced: the canonical payload serializations are compared, identical
  payloads count as verified collisions, different payloads raise
  :class:`StoreMergeError` loudly — two hosts disagreeing about the same
  content-addressed key means a non-deterministic producer, which must
  never be papered over by picking a winner;
* corrupt source entries are skipped (and counted), exactly as a local
  read would treat them.

``repro store merge SRC [SRC ...] --store DEST`` is the CLI face.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.store.store import ResultStore
from repro.utils.io import atomic_write_bytes
from repro.utils.validation import ValidationError

__all__ = ["StoreMergeError", "MergeReport", "merge_stores"]


class StoreMergeError(ValidationError):
    """Two stores hold different payloads under the same key."""


@dataclass(frozen=True)
class MergeReport:
    """Outcome of one :func:`merge_stores` union."""

    destination: str
    sources: tuple[str, ...]
    #: Entries copied into the destination (key was absent there).
    copied: int
    #: Keys present in both sides whose payloads compared byte-identical.
    verified: int
    #: Unreadable/corrupt source entries skipped (a recompute elsewhere,
    #: never an error — matching the store's corruption-tolerant reads).
    skipped_corrupt: int

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for the CLI's ``--json`` output."""
        return {
            "destination": self.destination,
            "sources": list(self.sources),
            "copied": self.copied,
            "verified": self.verified,
            "skipped_corrupt": self.skipped_corrupt,
        }


def _entry_payload(raw: bytes, key: str) -> Optional[dict[str, Any]]:
    """Parse one raw entry file; ``None`` if corrupt or mis-keyed."""
    try:
        entry = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(entry, dict) or entry.get("key") != key:
        return None
    payload = entry.get("payload")
    if not isinstance(payload, dict):
        return None
    return payload


def _canonical_payload_text(payload: dict[str, Any]) -> str:
    return json.dumps(payload, allow_nan=True, sort_keys=True)


def merge_stores(
    sources: Sequence[Union[ResultStore, str, Path]],
    destination: Union[ResultStore, str, Path],
) -> MergeReport:
    """Union every source store into ``destination``.

    Sources may be :class:`ResultStore` handles or store root paths; a
    non-existent source root is simply an empty store (zero entries), so a
    campaign whose worker never produced anything merges cleanly.  Raises
    :class:`StoreMergeError` on the first payload mismatch — the
    destination is left with everything merged up to that point (every
    copied entry is individually atomic, so there is no torn state to roll
    back).
    """
    dest = (
        destination
        if isinstance(destination, ResultStore)
        else ResultStore(destination)
    )
    handles = [
        source if isinstance(source, ResultStore) else ResultStore(source)
        for source in sources
    ]
    for handle in handles:
        if handle.root.resolve() == dest.root.resolve():
            raise ValidationError(
                f"cannot merge a store into itself: {handle.root}"
            )
    copied = 0
    verified = 0
    skipped = 0
    for handle in handles:
        for info in handle.entries():
            try:
                raw = info.path.read_bytes()
            except OSError:
                skipped += 1
                continue
            payload = _entry_payload(raw, info.key)
            if payload is None:
                skipped += 1
                continue
            dest_path = dest._entry_path(info.key)
            if dest_path.is_file():
                existing = _entry_payload(dest_path.read_bytes(), info.key)
                if existing is not None:
                    if _canonical_payload_text(existing) != _canonical_payload_text(
                        payload
                    ):
                        raise StoreMergeError(
                            f"merge collision on key {info.key}: "
                            f"{handle.root} and {dest.root} hold different "
                            "payloads for the same content-addressed key — "
                            "a producer was non-deterministic; refusing to "
                            "pick a winner"
                        )
                    verified += 1
                    continue
                # Corrupt destination entry: replace it with the good copy.
            dest_path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(dest_path, raw)
            copied += 1
    return MergeReport(
        destination=str(dest.root),
        sources=tuple(str(h.root) for h in handles),
        copied=copied,
        verified=verified,
        skipped_corrupt=skipped,
    )

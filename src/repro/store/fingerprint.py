"""Code fingerprint of the modules that *produce* simulation results.

A content-addressed result is only trustworthy if its key covers the code
that computed it.  :func:`code_fingerprint` hashes the source of every
producing subpackage — the model, the engines, the schedulers, the workload
generators and the experiment harnesses — so editing any of them invalidates
every cached cell (conservative by design: a one-character change to a
docstring also misses, which costs one recompute and never a wrong hit).

``repro.config`` is included too — not for the parser (spec *objects* are
canonicalized into each key, so a parser change that alters what gets built
is already captured) but because ``config/run.py`` *assembles the study
payloads that get stored*: a fragment-shape change there must invalidate the
cached studies.  Deliberately excluded are the layers that only consume
results: ``repro.cli``, ``repro.report`` and the store itself — reformatting
the CLI must not nuke a campaign cache.

``REPRO_CACHE_SALT`` (environment) is folded into the fingerprint — a manual
big-red-button for invalidating a store without touching code, and the hook
the cache-semantics tests use to simulate "a producing module changed".
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache
from pathlib import Path

__all__ = ["PRODUCING_PACKAGES", "code_fingerprint", "clear_fingerprint_cache"]

#: Subpackages of :mod:`repro` whose source participates in every cache key.
PRODUCING_PACKAGES: tuple[str, ...] = (
    "core",
    "simulator",
    "online",
    "periodic",
    "analysis",
    "workload",
    "experiments",
    "config",
    "faults",
    "utils",
)


@lru_cache(maxsize=8)
def _fingerprint_of_tree(root: str, salt: str) -> str:
    base = Path(root)
    h = hashlib.sha256()
    h.update(salt.encode("utf-8"))
    h.update(b"\0")
    for package in PRODUCING_PACKAGES:
        package_dir = base / package
        if not package_dir.is_dir():  # pragma: no cover - defensive
            h.update(f"missing:{package}".encode("ascii"))
            continue
        for source in sorted(package_dir.rglob("*.py")):
            h.update(source.relative_to(base).as_posix().encode("utf-8"))
            h.update(b"\0")
            h.update(source.read_bytes())
            h.update(b"\0")
    return h.hexdigest()


def code_fingerprint(root: Path | str | None = None) -> str:
    """Hex fingerprint of the producing source tree (cached per process).

    ``root`` defaults to the installed :mod:`repro` package directory; tests
    pass a synthetic tree to exercise change detection without touching the
    real sources.  The environment salt is read on every call, so setting
    ``REPRO_CACHE_SALT`` takes effect immediately (each distinct
    (root, salt) pair is memoized).
    """
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    salt = os.environ.get("REPRO_CACHE_SALT", "")
    return _fingerprint_of_tree(str(root), salt)


def clear_fingerprint_cache() -> None:
    """Forget memoized fingerprints (tests that rewrite source trees)."""
    _fingerprint_of_tree.cache_clear()

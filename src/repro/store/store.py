"""The content-addressed on-disk result store.

Layout (``~/.cache/repro`` by default, relocatable via ``REPRO_STORE`` or
``repro run --store PATH``)::

    <root>/
      v1/                     # store format version; a format change bumps it
        ab/                   # first two hex digits of the key (git-style fan-out)
          ab3f…e2.json        # one entry: {"key", "created", "payload"}

Guarantees:

* **atomic entries** — every entry is written to a temp sibling and
  ``os.replace``d into place, so a crash or ``Ctrl-C`` mid-campaign can
  never leave a truncated entry (interrupted campaigns resume from whatever
  cells already landed);
* **corruption-tolerant reads** — an unreadable / truncated / wrong-key
  entry counts as a miss (and is deleted), never as an exception: the worst
  a corrupt store can do is cost a recompute;
* **byte-stable payloads** — entries round-trip through JSON with NaN /
  Infinity preserved, so a decoded result re-serializes to the exact bytes
  a fresh computation would produce;
* **bounded growth** — :meth:`ResultStore.gc` evicts by age and by
  count/size (least-recently-used first; hits refresh an entry's mtime).

The store knows nothing about simulators or specs: callers bring a key
(see :mod:`repro.store.canonical` / :mod:`repro.store.fingerprint`) and a
JSON-able payload.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Union

from repro.utils.io import atomic_write_text
from repro.utils.validation import ValidationError

__all__ = ["StoreStats", "StoreEntryInfo", "ResultStore", "default_store_path"]

#: On-disk format version; bump on any incompatible layout/payload change so
#: an old store degrades to misses instead of mis-decoding.
STORE_FORMAT = "v1"

_KEY_HEX_LEN = 64  # sha256


def default_store_path() -> Path:
    """``$REPRO_STORE`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_STORE", "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def _json_default(value: object) -> object:
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        scalar: object = item()
        return scalar
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy array
        nested: object = tolist()
        return nested
    raise TypeError(
        f"store payloads must be JSON-able, got {type(value).__qualname__!r}"
    )


@dataclass
class StoreStats:
    """Per-process counters of one store handle (not persisted)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    write_errors: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls (hits + misses; corrupt entries are misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for payload-free reporting (CLI line, report)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "write_errors": self.write_errors,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class StoreEntryInfo:
    """Metadata of one on-disk entry (for ``gc`` ordering and ``info``)."""

    path: Path
    key: str
    size: int
    mtime: float


class ResultStore:
    """A content-addressed key → JSON-payload store on the local disk.

    Opening a store never touches the disk; directories appear on the first
    write, so a read-only consultation of a non-existent store is simply all
    misses.  One handle's :attr:`stats` describe the lookups made *through
    that handle* — ``repro run`` reports them as the campaign's hit/miss
    line.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_store_path()
        self.stats = StoreStats()
        self._warned_unwritable = False

    # ------------------------------------------------------------------ #
    @property
    def _objects(self) -> Path:
        return self.root / STORE_FORMAT

    def _entry_path(self, key: str) -> Path:
        if len(key) != _KEY_HEX_LEN or not all(
            c in "0123456789abcdef" for c in key
        ):
            raise ValidationError(
                f"malformed store key {key!r} (expected {_KEY_HEX_LEN} hex chars)"
            )
        return self._objects / key[:2] / f"{key}.json"

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The payload stored under ``key``, or ``None`` on miss.

        Any defect — unreadable file, truncated JSON, an entry whose
        recorded key disagrees with its filename — is treated as a miss:
        the entry is deleted, ``stats.corrupt`` is bumped, and the caller
        recomputes.  A hit refreshes the entry's mtime (LRU input for
        :meth:`gc`).
        """
        path = self._entry_path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            self.stats.corrupt += 1
            self._discard(path)
            return None
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict) or entry.get("key") != key:
                raise ValueError("store entry does not match its key")
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise ValueError("store payload is not a JSON object")
        except (ValueError, KeyError):
            self.stats.misses += 1
            self.stats.corrupt += 1
            self._discard(path)
            return None
        self.stats.hits += 1
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - mtime refresh is best-effort
            pass
        return payload

    def put(self, key: str, payload: Mapping[str, Any]) -> Optional[Path]:
        """Atomically persist ``payload`` under ``key`` (overwrites).

        Write failures (disk full, read-only store, quota) are **fail-soft**:
        the campaign that computed the result must never die on cache
        bookkeeping, so the failure is counted (``stats.write_errors``),
        warned about once per handle on stderr, and ``None`` is returned —
        the run simply continues uncached.  A payload that is not JSON-able
        is a programming error and still raises.
        """
        path = self._entry_path(key)
        entry = {"key": key, "created": time.time(), "payload": payload}  # reprolint: ignore[D002] — gc metadata only; never enters keys or payloads
        text = json.dumps(entry, allow_nan=True, default=_json_default)  # reprolint: ignore[D004] — entry bytes are not content-addressed (key is the filename); readers parse, never diff
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, text + "\n")
        except OSError as exc:
            self.stats.write_errors += 1
            if not self._warned_unwritable:
                self._warned_unwritable = True
                print(
                    f"warning: result store at {self.root} is not writable "
                    f"({exc}); continuing without caching new results",
                    file=sys.stderr,
                )
            return None
        self.stats.writes += 1
        return path

    def discard(self, key: str) -> None:
        """Remove one entry if present (poisoned-payload eviction)."""
        self._discard(self._entry_path(key))

    def __contains__(self, key: str) -> bool:
        return self._entry_path(key).is_file()

    # ------------------------------------------------------------------ #
    def entries(self) -> Iterator[StoreEntryInfo]:
        """Iterate the on-disk entries (silently skipping vanished files)."""
        if not self._objects.is_dir():
            return
        for path in sorted(self._objects.glob("??/*.json")):
            try:
                stat = path.stat()
            except OSError:
                continue
            yield StoreEntryInfo(
                path=path, key=path.stem, size=stat.st_size, mtime=stat.st_mtime
            )

    def info(self) -> dict[str, object]:
        """Summary of the on-disk state (path, entry count, bytes, ages)."""
        entries = list(self.entries())
        total = sum(e.size for e in entries)
        return {
            "path": str(self.root),
            "format": STORE_FORMAT,
            "entries": len(entries),
            "total_bytes": total,
            "oldest_mtime": min((e.mtime for e in entries), default=None),
            "newest_mtime": max((e.mtime for e in entries), default=None),
        }

    def gc(
        self,
        *,
        max_age_days: Optional[float] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Evict entries; returns how many were removed.

        ``max_age_days`` drops everything not touched within the window
        (hits refresh mtime, so live cells survive).  ``max_entries`` /
        ``max_bytes`` then trim least-recently-used entries until the store
        fits both budgets.  With no arguments nothing is removed.
        """
        for name, bound in (
            ("max_age_days", max_age_days),
            ("max_entries", max_entries),
            ("max_bytes", max_bytes),
        ):
            if bound is not None and bound < 0:
                raise ValidationError(f"{name} must be >= 0, got {bound}")
        entries = sorted(self.entries(), key=lambda e: e.mtime)  # oldest first
        removed = 0
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0  # reprolint: ignore[D002] — gc age policy against file mtimes; host-local, never in results
            keep: list[StoreEntryInfo] = []
            for entry in entries:
                if entry.mtime < cutoff:
                    self._discard(entry.path)
                    removed += 1
                else:
                    keep.append(entry)
            entries = keep
        total = sum(e.size for e in entries)
        index = 0
        while entries[index:] and (
            (max_entries is not None and len(entries) - index > max_entries)
            or (max_bytes is not None and total > max_bytes)
        ):
            victim = entries[index]
            self._discard(victim.path)
            total -= victim.size
            index += 1
            removed += 1
        return removed

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for entry in self.entries():
            self._discard(entry.path)
            removed += 1
        return removed

"""The content-addressed on-disk result store.

Layout (``~/.cache/repro`` by default, relocatable via ``REPRO_STORE`` or
``repro run --store PATH``)::

    <root>/
      v1/                     # store format version; a format change bumps it
        ab/                   # first two hex digits of the key (git-style fan-out)
          ab3f…e2.json        # one entry: {"key", "created", "payload"}

Guarantees:

* **atomic entries** — every entry is written to a temp sibling and
  ``os.replace``d into place, so a crash or ``Ctrl-C`` mid-campaign can
  never leave a truncated entry (interrupted campaigns resume from whatever
  cells already landed);
* **corruption-tolerant reads** — an unreadable / truncated / wrong-key
  entry counts as a miss (and is deleted), never as an exception: the worst
  a corrupt store can do is cost a recompute;
* **byte-stable payloads** — entries round-trip through JSON with NaN /
  Infinity preserved, so a decoded result re-serializes to the exact bytes
  a fresh computation would produce;
* **verified collisions** — a write against an existing key compares
  canonical payload bytes: identical payloads (concurrent producers of the
  same cell) skip the rewrite, different payloads raise
  :class:`StoreCollisionError` loudly instead of silently replacing —
  same key must mean same content;
* **bounded growth** — :meth:`ResultStore.gc` evicts by age and by
  count/size (least-recently-used first; hits refresh an entry's mtime),
  but never evicts entries referenced by an active campaign journal
  (:meth:`ResultStore.protected_keys`).

The store knows nothing about simulators or specs: callers bring a key
(see :mod:`repro.store.canonical` / :mod:`repro.store.fingerprint`) and a
JSON-able payload.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Union

from repro.obs.telemetry import recorder as _obs_recorder
from repro.utils.io import atomic_write_text
from repro.utils.validation import ValidationError

#: Process-wide telemetry funnel.  Imported here (the store *entry* layer)
#: only — key derivation (canonical.py / fingerprint.py) must stay
#: telemetry-free, which reprolint rule O001 enforces statically.
_OBS = _obs_recorder()

__all__ = [
    "StoreStats",
    "StoreEntryInfo",
    "StoreCollisionError",
    "ResultStore",
    "default_store_path",
]

#: On-disk format version; bump on any incompatible layout/payload change so
#: an old store degrades to misses instead of mis-decoding.
STORE_FORMAT = "v1"

_KEY_HEX_LEN = 64  # sha256


def default_store_path() -> Path:
    """``$REPRO_STORE`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_STORE", "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def _json_default(value: object) -> object:
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        scalar: object = item()
        return scalar
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy array
        nested: object = tolist()
        return nested
    raise TypeError(
        f"store payloads must be JSON-able, got {type(value).__qualname__!r}"
    )


class StoreCollisionError(ValidationError):
    """Two different payloads were written under the same key.

    Keys are content-addressed, so this should be impossible for correct
    code — it means either non-determinism in a producer (two hosts
    computed different results for the same inputs) or a key-derivation
    bug.  Either way the store must fail loudly instead of silently letting
    the last writer win.
    """


@dataclass
class StoreStats:
    """Per-handle counters of one store handle (not persisted).

    This is the *per-handle view* of the same event stream the process-wide
    telemetry registry (:mod:`repro.obs`) aggregates across every handle:
    ``get``/``put`` bump these plain ints unconditionally and additionally
    emit ``repro_store_get_total`` / ``repro_store_put_total`` counters and
    latency histograms when the recorder is enabled.  Keep using these
    attributes for handle-scoped reporting (``repro run``'s store line);
    use the registry for whole-process dashboards.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    write_errors: int = 0
    #: Writes that collided with an existing entry and were *verified*
    #: byte-identical instead of rewritten (concurrent producers of the
    #: same cell — campaign workers racing on a shared store).
    collisions: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls (hits + misses; corrupt entries are misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for payload-free reporting (CLI line, report)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "write_errors": self.write_errors,
            "collisions": self.collisions,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class StoreEntryInfo:
    """Metadata of one on-disk entry (for ``gc`` ordering and ``info``)."""

    path: Path
    key: str
    size: int
    mtime: float


class ResultStore:
    """A content-addressed key → JSON-payload store on the local disk.

    Opening a store never touches the disk; directories appear on the first
    write, so a read-only consultation of a non-existent store is simply all
    misses.  One handle's :attr:`stats` describe the lookups made *through
    that handle* — ``repro run`` reports them as the campaign's hit/miss
    line.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_store_path()
        self.stats = StoreStats()
        self._warned_unwritable = False

    # ------------------------------------------------------------------ #
    @property
    def _objects(self) -> Path:
        return self.root / STORE_FORMAT

    def _entry_path(self, key: str) -> Path:
        if len(key) != _KEY_HEX_LEN or not all(
            c in "0123456789abcdef" for c in key
        ):
            raise ValidationError(
                f"malformed store key {key!r} (expected {_KEY_HEX_LEN} hex chars)"
            )
        return self._objects / key[:2] / f"{key}.json"

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The payload stored under ``key``, or ``None`` on miss.

        Any defect — unreadable file, truncated JSON, an entry whose
        recorded key disagrees with its filename — is treated as a miss:
        the entry is deleted, ``stats.corrupt`` is bumped, and the caller
        recomputes.  A hit refreshes the entry's mtime (LRU input for
        :meth:`gc`).
        """
        if not _OBS.enabled:
            return self._get_impl(key)
        corrupt_before = self.stats.corrupt
        with _OBS.span(
            "store.get", category="store",
            observe="repro_store_get_seconds", key=key[:12],
        ):
            payload = self._get_impl(key)
        if payload is not None:
            outcome = "hit"
        elif self.stats.corrupt > corrupt_before:
            outcome = "corrupt"
        else:
            outcome = "miss"
        _OBS.count("repro_store_get_total", outcome=outcome)
        return payload

    def _get_impl(self, key: str) -> Optional[dict[str, Any]]:
        path = self._entry_path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            self.stats.corrupt += 1
            self._discard(path)
            return None
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict) or entry.get("key") != key:
                raise ValueError("store entry does not match its key")
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise ValueError("store payload is not a JSON object")
        except (ValueError, KeyError):
            self.stats.misses += 1
            self.stats.corrupt += 1
            self._discard(path)
            return None
        self.stats.hits += 1
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - mtime refresh is best-effort
            pass
        return payload

    def _existing_payload(self, path: Path, key: str) -> Optional[dict[str, Any]]:
        """The valid payload already stored at ``path``, if any.

        Collision-check helper for :meth:`put`: unlike :meth:`get` it never
        touches the hit/miss counters (a write is not a lookup) and leaves a
        corrupt entry in place for the caller to overwrite (counting it in
        ``stats.corrupt``).
        """
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            self.stats.corrupt += 1
            return None
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict) or entry.get("key") != key:
                raise ValueError("store entry does not match its key")
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise ValueError("store payload is not a JSON object")
        except (ValueError, KeyError):
            self.stats.corrupt += 1
            return None
        return payload

    def put(self, key: str, payload: Mapping[str, Any]) -> Optional[Path]:
        """Atomically persist ``payload`` under ``key``.

        Keys are content-addressed, so a ``put`` against an existing entry
        is *verified*, never blindly replaced: an identical payload (the
        normal case — concurrent campaign workers racing on the same cell)
        refreshes the entry's mtime, counts in ``stats.collisions`` and
        skips the rewrite; a **different** payload raises
        :class:`StoreCollisionError` loudly, because it means a
        non-deterministic producer or a key-derivation bug.  A corrupt
        existing entry is simply overwritten.

        Write failures (disk full, read-only store, quota) are **fail-soft**:
        the campaign that computed the result must never die on cache
        bookkeeping, so the failure is counted (``stats.write_errors``),
        warned about once per handle on stderr, and ``None`` is returned —
        the run simply continues uncached.  A payload that is not JSON-able
        is a programming error and still raises.
        """
        if not _OBS.enabled:
            return self._put_impl(key, payload)
        collisions = self.stats.collisions
        write_errors = self.stats.write_errors
        with _OBS.span(
            "store.put", category="store",
            observe="repro_store_put_seconds", key=key[:12],
        ):
            result = self._put_impl(key, payload)
        if self.stats.collisions > collisions:
            outcome = "collision"
        elif self.stats.write_errors > write_errors:
            outcome = "write_error"
        else:
            outcome = "write"
        _OBS.count("repro_store_put_total", outcome=outcome)
        return result

    def _put_impl(self, key: str, payload: Mapping[str, Any]) -> Optional[Path]:
        path = self._entry_path(key)
        new_text = json.dumps(
            payload, allow_nan=True, sort_keys=True, default=_json_default
        )
        existing = self._existing_payload(path, key)
        if existing is not None:
            existing_text = json.dumps(existing, allow_nan=True, sort_keys=True)
            if existing_text == new_text:
                self.stats.collisions += 1
                try:
                    os.utime(path)
                except OSError:  # pragma: no cover - mtime refresh is best-effort
                    pass
                return path
            raise StoreCollisionError(
                f"store collision on key {key} at {self.root}: an entry with "
                f"a different payload already exists ({len(existing_text)} vs "
                f"{len(new_text)} canonical bytes). Same key must mean same "
                "content — this indicates a non-deterministic producer or a "
                "key-derivation bug, not a cache eviction problem."
            )
        entry = {"key": key, "created": time.time(), "payload": payload}  # reprolint: ignore[D002] — gc metadata only; never enters keys or payloads
        text = json.dumps(entry, allow_nan=True, default=_json_default)  # reprolint: ignore[D004] — entry bytes are not content-addressed (key is the filename); readers parse, never diff
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, text + "\n")
        except OSError as exc:
            self.stats.write_errors += 1
            if not self._warned_unwritable:
                self._warned_unwritable = True
                print(
                    f"warning: result store at {self.root} is not writable "
                    f"({exc}); continuing without caching new results",
                    file=sys.stderr,
                )
            return None
        self.stats.writes += 1
        return path

    def discard(self, key: str) -> None:
        """Remove one entry if present (poisoned-payload eviction)."""
        self._discard(self._entry_path(key))

    def __contains__(self, key: str) -> bool:
        return self._entry_path(key).is_file()

    # ------------------------------------------------------------------ #
    @property
    def campaigns_dir(self) -> Path:
        """Registration directory of active campaign journals.

        A running campaign coordinator (:mod:`repro.campaign`) drops a
        ``<campaign-id>.journal`` pointer file here naming its journal;
        :meth:`gc` refuses to evict any entry such a journal references.
        Completed campaigns unregister themselves; a stale pointer (journal
        gone, or carrying a ``complete`` record) is cleaned up lazily by
        :meth:`protected_keys`.
        """
        return self.root / "campaigns"

    def protected_keys(self) -> frozenset[str]:
        """Keys referenced by active campaign journals (gc-protected).

        Scans the ``<campaign-id>.journal`` pointers under
        :attr:`campaigns_dir` and collects the cell-key list from each
        journal's header record — one JSON object per line, written by
        :class:`repro.campaign.CampaignJournal`; unparsable lines are
        skipped (the journal is append-only and crash-tolerant by design).
        A journal that recorded ``{"type": "complete"}`` is finished: its
        pointer is unlinked and its keys are fair game.
        """
        protected: set[str] = set()
        if not self.campaigns_dir.is_dir():
            return frozenset()
        for pointer in sorted(self.campaigns_dir.glob("*.journal")):
            try:
                journal_path = Path(pointer.read_text(encoding="utf-8").strip())
            except OSError:
                continue
            try:
                lines = journal_path.read_text(encoding="utf-8").splitlines()
            except OSError:
                # Journal vanished: the campaign directory was deleted, so
                # the registration is stale.
                self._discard(pointer)
                continue
            keys: set[str] = set()
            complete = False
            for line in lines:
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(record, dict):
                    continue
                if record.get("type") == "campaign":
                    cells = record.get("cells")
                    if isinstance(cells, list):
                        keys.update(
                            cell["key"]
                            for cell in cells
                            if isinstance(cell, dict)
                            and isinstance(cell.get("key"), str)
                        )
                elif record.get("type") == "complete":
                    complete = True
            if complete:
                self._discard(pointer)
            else:
                protected.update(keys)
        return frozenset(protected)

    # ------------------------------------------------------------------ #
    def entries(self) -> Iterator[StoreEntryInfo]:
        """Iterate the on-disk entries (silently skipping vanished files)."""
        if not self._objects.is_dir():
            return
        for path in sorted(self._objects.glob("??/*.json")):
            try:
                stat = path.stat()
            except OSError:
                continue
            yield StoreEntryInfo(
                path=path, key=path.stem, size=stat.st_size, mtime=stat.st_mtime
            )

    def info(self) -> dict[str, object]:
        """Summary of the on-disk state (path, entry count, bytes, ages)."""
        entries = list(self.entries())
        total = sum(e.size for e in entries)
        return {
            "path": str(self.root),
            "format": STORE_FORMAT,
            "entries": len(entries),
            "total_bytes": total,
            "oldest_mtime": min((e.mtime for e in entries), default=None),
            "newest_mtime": max((e.mtime for e in entries), default=None),
        }

    def gc(
        self,
        *,
        max_age_days: Optional[float] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Evict entries; returns how many were removed.

        ``max_age_days`` drops everything not touched within the window
        (hits refresh mtime, so live cells survive).  ``max_entries`` /
        ``max_bytes`` then trim least-recently-used entries until the store
        fits both budgets.  With no arguments nothing is removed.

        Entries referenced by an **active campaign journal** (see
        :meth:`protected_keys`) are never evicted, whatever the budgets: a
        crashed campaign's ``resume`` depends on those cells still being
        here.  Protected entries keep counting toward the size/count
        totals, so gc trims everything evictable first and simply stops
        when only protected entries remain over budget.
        """
        for name, bound in (
            ("max_age_days", max_age_days),
            ("max_entries", max_entries),
            ("max_bytes", max_bytes),
        ):
            if bound is not None and bound < 0:
                raise ValidationError(f"{name} must be >= 0, got {bound}")
        protected = self.protected_keys()
        all_entries = sorted(self.entries(), key=lambda e: e.mtime)  # oldest first
        entries = [e for e in all_entries if e.key not in protected]
        protected_size = sum(e.size for e in all_entries if e.key in protected)
        protected_count = len(all_entries) - len(entries)
        removed = 0
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0  # reprolint: ignore[D002] — gc age policy against file mtimes; host-local, never in results
            keep: list[StoreEntryInfo] = []
            for entry in entries:
                if entry.mtime < cutoff:
                    self._discard(entry.path)
                    removed += 1
                else:
                    keep.append(entry)
            entries = keep
        total = protected_size + sum(e.size for e in entries)
        index = 0
        while entries[index:] and (
            (
                max_entries is not None
                and protected_count + len(entries) - index > max_entries
            )
            or (max_bytes is not None and total > max_bytes)
        ):
            victim = entries[index]
            self._discard(victim.path)
            total -= victim.size
            index += 1
            removed += 1
        return removed

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for entry in self.entries():
            self._discard(entry.path)
            removed += 1
        return removed

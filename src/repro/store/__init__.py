"""Content-addressed result store: never compute the same cell twice.

Every experiment cell (one ``(scenario, scheduler)`` simulation) and every
analysis/periodic study is deterministic given three inputs: the canonical
form of the objects describing it, the source code of the modules that
compute it, and its derived seed.  This package turns that observation into
a durable memo table:

* :mod:`repro.store.canonical` — deterministic canonical JSON + SHA-256
  digests of arbitrary model objects (dataclasses, numpy scalars, …);
* :mod:`repro.store.fingerprint` — a fingerprint of the producing source
  tree, folded into every key so editing the simulator invalidates the
  cache;
* :mod:`repro.store.store` — the atomic, corruption-tolerant, evictable
  on-disk store (``~/.cache/repro`` or ``repro run --store PATH``).

The consumers live next to the things they cache:
:func:`repro.experiments.runner.run_grid` memoizes grid cells through
:class:`repro.experiments.runner.ExperimentExecutor`, and
:mod:`repro.config.run` memoizes whole analysis figures and periodic sweeps.
See ``docs/artifacts.md`` for the key contract and on-disk layout.
"""

from repro.store.canonical import (
    CanonicalizationError,
    canonical_json,
    canonicalize,
    digest,
)
from repro.store.fingerprint import (
    PRODUCING_PACKAGES,
    clear_fingerprint_cache,
    code_fingerprint,
)
from repro.store.merge import MergeReport, StoreMergeError, merge_stores
from repro.store.store import (
    ResultStore,
    StoreCollisionError,
    StoreEntryInfo,
    StoreStats,
    default_store_path,
)

__all__ = [
    "CanonicalizationError",
    "canonicalize",
    "canonical_json",
    "digest",
    "PRODUCING_PACKAGES",
    "code_fingerprint",
    "clear_fingerprint_cache",
    "ResultStore",
    "StoreStats",
    "StoreEntryInfo",
    "StoreCollisionError",
    "StoreMergeError",
    "MergeReport",
    "merge_stores",
    "default_store_path",
]

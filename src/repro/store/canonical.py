"""Canonical serialization for cache keys.

A cache key must be a *pure function of the inputs that determine the
result*: same scenario + same scheduler case + same horizon ⇒ same key, on
any machine, in any process, in any order of construction.  Python's default
``repr`` does not guarantee that (dict order, numpy scalar reprs, object
identity), so this module defines one canonical JSON form:

* mappings are emitted with **sorted keys**;
* sequences (list / tuple) keep their order (order is semantic for
  instances, scenarios, scheduler lists);
* sets are sorted by their canonical encoding;
* dataclasses become ``{"__dc__": <qualname>, <field>: ...}`` using only
  their **declared fields** — ``cached_property`` memos and other
  ``__dict__`` residue never leak into the key;
* numpy scalars collapse to their Python equivalents (``.item()``), numpy
  arrays to nested lists;
* floats round-trip through ``repr`` via ``json.dumps`` (shortest exact
  representation, deterministic for a given IEEE double; NaN/Infinity are
  emitted as their JSON-extension tokens);
* enums become their values.

Anything else (functions, live RNGs, open files …) raises
:class:`CanonicalizationError` — an unstable key must fail loudly, not
silently produce a cache that never hits (or worse, wrongly hits).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Mapping

__all__ = [
    "CanonicalizationError",
    "canonicalize",
    "canonical_json",
    "digest",
]


class CanonicalizationError(TypeError):
    """Raised for values with no stable canonical form."""


_ATOMS = (str, int, bool, type(None))


def canonicalize(value: object) -> object:
    """Reduce ``value`` to plain JSON-able data with deterministic structure."""
    if isinstance(value, _ATOMS):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__qualname__, "value": canonicalize(value.value)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: dict[str, object] = {"__dc__": type(value).__qualname__}
        for field in dataclasses.fields(value):
            out[field.name] = canonicalize(getattr(value, field.name))
        return out
    if isinstance(value, Mapping):
        items = {str(k): canonicalize(v) for k, v in value.items()}
        if len(items) != len(value):
            raise CanonicalizationError(
                f"mapping keys collide after str() conversion: {sorted(items)}"
            )
        return items
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(canonical_json(v) for v in value)}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    # numpy without importing numpy at module scope (the store must stay
    # dependency-light): scalars expose .item(), arrays expose .tolist().
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        return canonicalize(item())
    tolist = getattr(value, "tolist", None)
    if callable(tolist) and hasattr(value, "shape"):
        return canonicalize(tolist())
    raise CanonicalizationError(
        f"cannot canonicalize {type(value).__qualname__!r} for a cache key; "
        "give the store plain data, dataclasses, or numpy scalars/arrays"
    )


def canonical_json(value: object) -> str:
    """The canonical JSON text of ``value`` (compact, sorted keys)."""
    return json.dumps(
        canonicalize(value),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=True,
        ensure_ascii=True,
    )


def digest(*parts: object) -> str:
    """SHA-256 hex digest over the canonical forms of ``parts``.

    Each part is canonicalized independently and length-prefixed, so
    ``digest("ab", "c") != digest("a", "bc")``.
    """
    h = hashlib.sha256()
    for part in parts:
        # Type-tag each part: a raw string and a canonicalized value with
        # the same text (digest("3") vs digest(3)) must never collide.
        if isinstance(part, str):
            tag, text = b"s", part
        else:
            tag, text = b"c", canonical_json(part)
        data = text.encode("utf-8")
        h.update(tag)
        h.update(str(len(data)).encode("ascii"))
        h.update(b":")
        h.update(data)
    return h.hexdigest()

"""Turn parsed specs into live model objects: platforms, scenarios, cases.

This is the deterministic half of the subsystem: given the same
:class:`~repro.config.spec.ExperimentSpec` the builders always produce the
same :class:`~repro.core.scenario.Scenario` objects, byte for byte, because
every random draw comes from seeds derived by the contract documented in
:mod:`repro.config.spec` (and in ``docs/scenarios.md``).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.config.schema import SpecError
from repro.config.spec import (
    AppSpec,
    FaultsSpec,
    GridSpec,
    PeriodicSpec,
    PlatformSpec,
    ScenarioEntry,
)
from repro.core.application import Application
from repro.core.platform import BurstBufferSpec, Platform, generic, intrepid, mira, vesta
from repro.core.scenario import Scenario
from repro.experiments.runner import SchedulerCase
from repro.faults import (
    BandwidthWindow,
    CrashEvent,
    FaultModel,
    sample_crashes,
    sample_windows,
)
from repro.periodic.period_search import minimum_period
from repro.utils.rng import spawn_rngs
from repro.workload.congested import CongestedMomentSpec, generate_congested_moment
from repro.workload.generator import MixSpec, figure6_mix, generate_mix
from repro.workload.ior import (
    DEFAULT_COMPUTE_TIME,
    DEFAULT_ITERATIONS,
    DEFAULT_WRITE_PER_NODE,
    ior_scenario,
)

__all__ = [
    "build_platform",
    "build_burst_buffer_platform",
    "build_entry_scenarios",
    "build_grid_scenarios",
    "build_cases",
    "build_periodic_setup",
]

_PRESETS = {"intrepid": intrepid, "mira": mira, "vesta": vesta}


def build_platform(
    spec: Optional[PlatformSpec], *, with_burst_buffer: bool = False
) -> Platform:
    """Concrete :class:`~repro.core.platform.Platform` for one platform spec.

    ``None`` means the default (Intrepid, the paper's primary machine).
    ``with_burst_buffer`` asks a preset for its burst-buffer variant; the
    scale/rename post-processing is identical either way, so the plain and
    BB platforms of one spec differ only in the burst-buffer layer.
    """
    if spec is None:
        return intrepid(with_burst_buffer=with_burst_buffer)
    if spec.preset in _PRESETS:
        platform = _PRESETS[spec.preset](with_burst_buffer=with_burst_buffer)
    else:
        platform = generic(
            total_processors=spec.processors,
            node_bandwidth=spec.node_bandwidth,
            system_bandwidth=spec.system_bandwidth,
            name=spec.name or "generic",
        )
    if spec.burst_buffer is not None:
        platform = platform.with_burst_buffer(
            BurstBufferSpec(
                capacity=spec.burst_buffer.capacity,
                ingest_bandwidth=spec.burst_buffer.ingest_bandwidth,
                drain_bandwidth=spec.burst_buffer.drain_bandwidth,
            )
        )
    if spec.scale is not None:
        platform = platform.scaled(spec.scale, name=spec.name)
        if platform.burst_buffer is not None:
            # Platform.scaled leaves the burst buffer untouched; the spec
            # layer promises uniform machine scaling, and a 5%-size machine
            # with a full-size buffer would absorb all I/O and silently
            # invalidate any BB-vs-no-BB comparison.
            bb = platform.burst_buffer
            platform = platform.with_burst_buffer(
                BurstBufferSpec(
                    capacity=bb.capacity * spec.scale,
                    ingest_bandwidth=bb.ingest_bandwidth * spec.scale,
                    drain_bandwidth=bb.drain_bandwidth * spec.scale,
                )
            )
    if spec.name is not None and platform.name != spec.name:
        platform = dataclasses.replace(platform, name=spec.name)
    return platform


def build_burst_buffer_platform(spec: Optional[PlatformSpec]) -> Optional[Platform]:
    """The burst-buffer variant of a platform spec, when one is derivable.

    Presets carry the machine's burst-buffer description; generic platforms
    need an explicit ``[platform.burst_buffer]`` table.  Returns ``None``
    when no burst buffer can be built — scheduler cases that ask for one
    then fail with a spec-level error.
    """
    if spec is not None and spec.burst_buffer is not None:
        return build_platform(spec)
    if spec is None or spec.preset in _PRESETS:
        return build_platform(spec, with_burst_buffer=True)
    return None


# ---------------------------------------------------------------------- #
def _build_app(spec: AppSpec) -> Application:
    return Application.periodic(
        name=spec.name,
        processors=spec.processors,
        work=spec.work,
        io_volume=spec.io_volume,
        n_instances=spec.instances,
        release_time=spec.release,
    )


def _entry_label(entry: ScenarioEntry, index: int) -> str:
    if entry.label is not None:
        return entry.label
    return f"{entry.kind}-{index}"


def build_entry_scenarios(
    entry: ScenarioEntry,
    index: int,
    platform: Platform,
    rng: np.random.Generator,
) -> list[Scenario]:
    """All scenarios of one ``[[scenarios]]`` entry (one per repetition).

    ``rng`` is the entry's child generator from the experiment seed; an
    entry-level ``seed`` replaces it, pinning the entry's randomness
    independently of its position in the spec.
    """
    if entry.platform is not None:
        platform = build_platform(entry.platform)
    base_label = _entry_label(entry, index)
    rep_rngs = spawn_rngs(entry.seed if entry.seed is not None else rng,
                          entry.repetitions)
    scenarios: list[Scenario] = []
    for rep, rep_rng in enumerate(rep_rngs):
        label = base_label if entry.repetitions == 1 else f"{base_label}-rep{rep:02d}"
        if entry.kind == "mix":
            scenario = generate_mix(
                MixSpec(
                    n_small=entry.small,
                    n_large=entry.large,
                    n_very_large=entry.very_large,
                ),
                platform,
                entry.io_ratio,
                rep_rng,
                label=label,
                fit_to_platform=entry.fit_to_platform,
            )
        elif entry.kind == "congested":
            scenario = generate_congested_moment(
                CongestedMomentSpec(
                    congestion_factor=entry.congestion_factor,
                    n_small=entry.small,
                    n_large=entry.large,
                    n_very_large=entry.very_large,
                    io_ratio=entry.io_ratio,
                ),
                platform,
                rep_rng,
                label=label,
            )
        elif entry.kind == "figure6":
            scenario = figure6_mix(entry.panel, platform, rep_rng, label=label)
        elif entry.kind == "ior":
            scenario = ior_scenario(
                entry.mix,
                platform,
                iterations=entry.iterations or DEFAULT_ITERATIONS,
                compute_time=entry.compute_time or DEFAULT_COMPUTE_TIME,
                write_per_node=entry.write_per_node or DEFAULT_WRITE_PER_NODE,
                jitter=entry.jitter,
                rng=rep_rng,
            ).with_label(label)
        elif entry.kind == "apps":
            scenario = Scenario(
                platform=platform,
                applications=tuple(_build_app(a) for a in entry.apps),
                label=label,
                metadata={"kind": "apps"},
            )
        else:  # pragma: no cover - parser rejects unknown kinds
            raise SpecError(f"unknown scenario kind {entry.kind!r}")
        scenarios.append(scenario)
    return scenarios


def _realize_fault_model(
    faults: FaultsSpec,
    scenario: Scenario,
    windows_rng: np.random.Generator,
    crashes_rng: np.random.Generator,
    horizon: float,
) -> FaultModel:
    """One realized :class:`FaultModel` for one scenario.

    Deterministic windows/crashes translate directly; the stochastic
    processes are sampled *here*, at build time, from the scenario's two
    dedicated fault streams — the engines never draw randomness, which is
    what keeps faulted runs byte-reproducible under any worker count.
    """
    unknown = {c.app for c in faults.crashes} - set(scenario.application_names)
    if unknown:
        raise SpecError(
            f"[[faults.crashes]] names unknown application(s) "
            f"{sorted(unknown)} — scenario {scenario.label!r} has "
            f"{list(scenario.application_names)}"
        )
    windows = [
        BandwidthWindow(
            start=w.start,
            end=w.end if w.end is not None else math.inf,
            factor=w.factor,
        )
        for w in faults.windows
    ]
    crashes = [
        CrashEvent(app_name=c.app, time=c.time, checkpoint_io=c.checkpoint_io)
        for c in faults.crashes
    ]
    if faults.random_windows is not None:
        rw = faults.random_windows
        windows.extend(
            sample_windows(
                rate=rw.rate,
                duration=rw.duration,
                factor=rw.factor,
                horizon=horizon,
                rng=windows_rng,
            )
        )
    if faults.random_crashes is not None:
        rc = faults.random_crashes
        crashes.extend(
            sample_crashes(
                scenario.application_names,
                rate=rc.rate,
                checkpoint_io=rc.checkpoint_io,
                horizon=horizon,
                rng=crashes_rng,
            )
        )
    return FaultModel(windows=tuple(windows), crashes=tuple(crashes))


def build_grid_scenarios(
    grid: GridSpec, seed: int, *, max_time: float = float("inf")
) -> list[Scenario]:
    """Every scenario of a grid experiment, in declaration order.

    Implements the determinism contract of :mod:`repro.config.spec`: one
    child generator per entry from ``spawn_rngs(seed, n_entries)``, then one
    per repetition inside each entry.

    With a ``[faults]`` table each built scenario gets a realized
    :class:`~repro.faults.FaultModel`.  Fault randomness comes from its own
    seed tree — ``spawn_rngs(faults.seed or seed, n_scenarios)``, two child
    streams (windows, crashes) per scenario — so adding or tuning faults
    never perturbs the application draws, and vice versa.  With
    ``baseline = true`` the healthy scenario is kept and its faulted twin
    (labelled ``"<label>+faults"``) is inserted right after it, so reports
    can pair the two.  ``max_time`` is the horizon the stochastic fault
    processes are realized over.
    """
    platform = build_platform(grid.platform)
    entry_rngs = spawn_rngs(seed, len(grid.scenarios))
    scenarios: list[Scenario] = []
    labels: set[str] = set()
    for index, (entry, rng) in enumerate(zip(grid.scenarios, entry_rngs)):
        for scenario in build_entry_scenarios(entry, index, platform, rng):
            if scenario.label in labels:
                raise SpecError(
                    f"duplicate scenario label {scenario.label!r}; give "
                    "entries distinct 'label' values"
                )
            labels.add(scenario.label)
            scenarios.append(scenario)
    faults = grid.faults
    if faults is None:
        return scenarios
    if faults.is_stochastic and not math.isfinite(max_time):
        raise SpecError(
            "stochastic fault processes need a finite max_time horizon "
            "to realize their events over"
        )
    faults_seed = faults.seed if faults.seed is not None else seed
    fault_rngs = spawn_rngs(faults_seed, len(scenarios))
    out: list[Scenario] = []
    for scenario, fault_rng in zip(scenarios, fault_rngs):
        windows_rng, crashes_rng = spawn_rngs(fault_rng, 2)
        model = _realize_fault_model(
            faults, scenario, windows_rng, crashes_rng, max_time
        )
        if faults.baseline:
            out.append(scenario)
        out.append(
            scenario.with_faults(model).with_label(f"{scenario.label}+faults")
        )
    return out


def build_periodic_setup(
    body: PeriodicSpec, seed: int
) -> tuple[Platform, list[Application]]:
    """Platform and application set of a ``periodic`` experiment.

    Explicit ``[[periodic.apps]]`` tables build deterministically; a
    generated mix draws from ``spawn_rngs(experiment.seed, 1)[0]`` (one child
    stream, mirroring the grid contract), so the same spec always schedules
    the same applications.

    An explicit ``max_period`` below the application set's minimum period
    is rejected here — this helper backs both ``repro validate`` and
    ``repro run``, so validation really means the sweep will start.
    """
    platform = build_platform(body.platform)
    if body.apps:
        applications = [_build_app(a) for a in body.apps]
        # In the paper's model the applications jointly own dedicated
        # processors for the whole steady state, so the set must fit the
        # machine.  The generated-mix path is safe by construction
        # (generate_mix partitions the platform); explicit apps are not,
        # and with online = [] no Scenario would ever check the budget —
        # the heuristics would score a physically impossible machine.
        used = sum(app.processors for app in applications)
        if used > platform.total_processors:
            raise SpecError(
                f"periodic.apps use {used} processors but platform "
                f"{platform.name!r} only has {platform.total_processors}"
            )
    else:
        (mix_rng,) = spawn_rngs(seed, 1)
        scenario = generate_mix(
            MixSpec(
                n_small=body.small,
                n_large=body.large,
                n_very_large=body.very_large,
            ),
            platform,
            body.io_ratio,
            mix_rng,
            label="periodic-mix",
            fit_to_platform=body.fit_to_platform,
        )
        applications = list(scenario.applications)
    if body.max_period is not None:
        t_min = minimum_period(platform, applications)
        if body.max_period < t_min:
            raise SpecError(
                f"periodic.max_period ({body.max_period:g}) is smaller than "
                f"the application set's minimum period ({t_min:g}) — the "
                "(1+eps) sweep could not evaluate a single period length"
            )
    return platform, applications


def build_cases(grid: GridSpec) -> list[SchedulerCase]:
    """Concrete :class:`~repro.experiments.runner.SchedulerCase` columns.

    Cases with ``burst_buffer = true`` are bound to the grid platform's
    burst-buffer variant; a spec whose platform has no derivable burst
    buffer fails here with a message naming the case.  Because that binding
    is grid-wide, burst-buffer cases are rejected when any scenario entry
    overrides its platform — the BB cell would silently run on a different
    machine than the entry's other cells.
    """
    bb_platform: Optional[Platform] = None
    cases: list[SchedulerCase] = []
    for spec in grid.cases:
        if spec.burst_buffer:
            if any(entry.platform is not None for entry in grid.scenarios):
                raise SpecError(
                    f"scheduler case {spec.name!r} sets burst_buffer = true, "
                    "which binds the grid-level platform's burst buffer to "
                    "every scenario — incompatible with per-entry "
                    "[scenarios.platform] overrides; drop the overrides or "
                    "split the grid into separate specs"
                )
            if bb_platform is None:
                bb_platform = build_burst_buffer_platform(grid.platform)
            if bb_platform is None or bb_platform.burst_buffer is None:
                raise SpecError(
                    f"scheduler case {spec.name!r} sets burst_buffer = true "
                    "but the platform defines no burst buffer; use a preset "
                    "platform or add a [platform.burst_buffer] table"
                )
        case = SchedulerCase(
            name=spec.name,
            use_burst_buffer=spec.burst_buffer,
            burst_buffer_platform=bb_platform if spec.burst_buffer else None,
            label=spec.label,
        )
        # Grids index cells by display label; a collision would silently
        # merge two columns (last cell wins), exactly like duplicate
        # scenario labels in build_grid_scenarios.
        if any(case.display == existing.display for existing in cases):
            raise SpecError(
                f"duplicate scheduler label {case.display!r}; give cases "
                "distinct 'label' values"
            )
        cases.append(case)
    return cases

"""Execute a parsed experiment spec and package the results.

:func:`run_spec` is the single entry point behind ``repro run``: it
dispatches on the experiment kind, drives the corresponding harness
(:func:`repro.experiments.runner.run_grid`,
:func:`repro.experiments.comparison.figure6_experiment`,
:func:`repro.experiments.comparison.congested_moments_experiment`,
:func:`repro.experiments.vesta.vesta_experiment`,
:func:`repro.periodic.period_search.search_period` for ``periodic`` specs,
or the :mod:`repro.analysis` studies for ``analysis`` specs) and returns a
:class:`SpecRunResult` carrying three synchronized views of the outcome:

* ``payload`` — a JSON-serializable dict (spec echo + per-cell records +
  averages), the round-trip artefact a spec fully determines;
* ``records`` — flat per-cell rows for CSV;
* ``text`` — the aligned plain-text tables printed to the terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Optional

from repro.analysis.sensitivity import sensitivity_study
from repro.analysis.throughput import throughput_decrease_study
from repro.analysis.usage import characterize
from repro.config.build import (
    build_cases,
    build_grid_scenarios,
    build_periodic_setup,
    build_platform,
)
from repro.config.schema import SpecError
from repro.config.spec import (
    ANALYSIS_FIGURES,
    PERIODIC_HEURISTIC_TABLE,
    AnalysisSpec,
    CongestedMomentsSpec,
    ExperimentSpec,
    Figure6Spec,
    GridSpec,
    PeriodicSpec,
    VestaSpec,
)
from repro.core.scenario import Scenario
from repro.experiments.comparison import (
    congested_moments_experiment,
    figure6_experiment,
)
from repro.experiments.reporting import (
    format_table,
    grid_records,
    percent,
    ratio,
    resilience_records,
    write_csv,
    write_json,
)
from repro.experiments.runner import ExperimentExecutor, SchedulerCase, run_grid
from repro.experiments.vesta import vesta_experiment
from repro.obs.telemetry import recorder as _obs_recorder
from repro.periodic.period_search import search_period
from repro.store import (
    ResultStore,
    StoreStats,
    canonical_json,
    code_fingerprint,
    digest,
)
from repro.utils.rng import spawn_rngs
from repro.workload.darshan import generate_records

__all__ = ["SpecRunResult", "ProgressCallback", "run_spec", "write_result"]

#: Process-wide telemetry funnel.  The ``build`` / ``run`` / ``report``
#: stage markers below are what ``--trace`` renders as top-level lanes,
#: what ``--profile DIR`` profiles, and what ``--metrics`` snapshots
#: after; they are no-ops unless the CLI enabled the recorder and they
#: never influence payloads (see docs/observability.md).
_OBS = _obs_recorder()

#: Signature of the optional live-status callback threaded from the CLI
#: (``repro run --progress``) down to the experiment harnesses: it receives
#: one human-readable line per completed cell / level / study.
ProgressCallback = Callable[[str], None]


@dataclass
class SpecRunResult:
    """Everything one spec run produced (see module docstring)."""

    spec: ExperimentSpec
    payload: dict
    records: list[dict]
    text: str
    #: Hit/miss counters of the attached result store for this run (``None``
    #: when the run was uncached).  Deliberately *not* part of ``payload``:
    #: a cached rerun must stay byte-identical to the cold run it replays.
    store_stats: Optional[dict] = None

    def write(self, path: Optional[str] = None, format: Optional[str] = None) -> Optional[Path]:
        """Write the results to disk; see :func:`write_result`."""
        return write_result(self, path=path, format=format)


def _spec_echo(spec: ExperimentSpec) -> dict:
    """The reproducibility header of every payload."""
    return {
        "name": spec.name,
        "kind": spec.kind,
        "seed": spec.seed,
        "max_time": spec.max_time,
    }


def _averages_rows(averages: dict[str, dict[str, float]]) -> list[list[object]]:
    # Pre-format through the percent/ratio helpers: a truncated run can leave
    # a NaN/inf dilation, which must render as "-"/"inf", not as ":.2f" noise.
    return [
        [
            scheduler,
            percent(metrics["system_efficiency"]),
            ratio(metrics["dilation"]),
            percent(metrics["upper_limit"]),
        ]
        for scheduler, metrics in averages.items()
    ]


_AVERAGES_HEADERS = ["Scheduler", "SysEfficiency (%)", "Dilation", "Upper limit (%)"]


# ---------------------------------------------------------------------- #
def _run_grid_spec(
    spec: ExperimentSpec,
    body: GridSpec,
    progress: Optional[ProgressCallback] = None,
    executor: Optional[ExperimentExecutor] = None,
    store: Optional[ResultStore] = None,
) -> SpecRunResult:
    with _OBS.stage("build", kind=spec.kind):
        scenarios = build_grid_scenarios(body, spec.seed, max_time=spec.max_time)
        cases = build_cases(body)
    with _OBS.stage("run", kind=spec.kind):
        grid = run_grid(scenarios, cases, max_time=spec.max_time,
                        progress=progress, executor=executor, store=store,
                        engine=spec.engine)
    with _OBS.stage("report", kind=spec.kind):
        return _grid_spec_report(spec, body, scenarios, grid)


def _grid_spec_report(
    spec: ExperimentSpec,
    body: GridSpec,
    scenarios: list[Scenario],
    grid,
) -> SpecRunResult:
    """Assemble the grid payload/records/tables (the ``report`` stage)."""
    records = grid_records(grid)
    averages = grid.averages()
    payload = {
        "experiment": _spec_echo(spec),
        "platform": build_platform(body.platform).name,
        "n_scenarios": len(scenarios),
        "n_cells": len(records),
        "cells": records,
        "averages": averages,
    }
    if any(entry.platform is not None for entry in body.scenarios):
        # Per-entry platform overrides: the single grid-level name above
        # would misattribute those cells, so record the real machine per
        # scenario.  (Keyed on overrides, not on name differences — an
        # override may coincidentally reuse the grid platform's name.)
        payload["scenario_platforms"] = {
            s.label: s.platform.name for s in scenarios
        }
    text = format_table(
        _AVERAGES_HEADERS,
        _averages_rows(averages),
        title=f"{spec.name}: averages over {len(scenarios)} scenario(s)",
    )
    resilience = resilience_records(grid)
    if resilience:
        # Keys present only for faulted grids: healthy payloads stay
        # byte-identical to pre-fault-subsystem artefacts.
        payload["resilience"] = resilience
        text += "\n" + format_table(
            ["Scheduler", "Retained (%)", "Crashes", "Brown-out (s)",
             "Stall (s)", "Recovery I/O"],
            [
                [
                    str(row["scheduler"]),
                    percent(row["throughput_retained"]),
                    str(row["total_crashes"]),
                    ratio(row["mean_brownout_time"]),
                    ratio(row["mean_stall_time"]),
                    ratio(row["mean_recovery_io"]),
                ]
                for row in resilience
            ],
            title=(
                f"Resilience under fault injection "
                f"({resilience[0]['n_faulted_cells']} faulted scenario(s) "
                "per scheduler)"
            ),
        )
    return SpecRunResult(spec=spec, payload=payload, records=records, text=text)


def _run_figure6_spec(
    spec: ExperimentSpec,
    body: Figure6Spec,
    progress: Optional[ProgressCallback] = None,
    executor: Optional[ExperimentExecutor] = None,
    store: Optional[ResultStore] = None,
) -> SpecRunResult:
    with _OBS.stage("build", kind=spec.kind):
        platform = (
            build_platform(body.platform) if body.platform is not None else None
        )
    records: list[dict] = []
    panels_payload: dict[str, dict] = {}
    blocks: list[str] = []
    with _OBS.stage("run", kind=spec.kind):
        for i, panel in enumerate(body.panels):
            result = figure6_experiment(
                panel,
                n_repetitions=body.n_repetitions,
                schedulers=body.schedulers,
                platform=platform,
                rng=spec.seed,
                max_time=spec.max_time,
                progress=progress,
                executor=executor,
                store=store,
                engine=spec.engine,
            )
            if progress is not None:
                progress(f"panel {panel}: {i + 1}/{len(body.panels)} done")
            _figure6_panel_report(
                body, panel, result, panels_payload, records, blocks
            )
    payload = {
        "experiment": _spec_echo(spec),
        "n_repetitions": body.n_repetitions,
        "panels": panels_payload,
        "cells": records,
    }
    return SpecRunResult(
        spec=spec, payload=payload, records=records, text="\n".join(blocks)
    )


def _figure6_panel_report(
    body: Figure6Spec,
    panel: str,
    result,
    panels_payload: dict[str, dict],
    records: list[dict],
    blocks: list[str],
) -> None:
    """Fold one Figure-6 panel's averages into the spec-level views."""
    averages = {
        scheduler: {
            "system_efficiency": avg.system_efficiency,
            "dilation": avg.dilation,
            "upper_limit": avg.upper_limit,
        }
        for scheduler, avg in result.averages.items()
    }
    panels_payload[panel] = averages
    for scheduler, metrics in averages.items():
        records.append({"panel": panel, "scheduler": scheduler, **metrics})
    blocks.append(
        format_table(
            _AVERAGES_HEADERS,
            _averages_rows(averages),
            title=f"Figure 6 — {panel} ({body.n_repetitions} mixes)",
        )
    )


def _run_congested_spec(
    spec: ExperimentSpec,
    body: CongestedMomentsSpec,
    progress: Optional[ProgressCallback] = None,
    executor: Optional[ExperimentExecutor] = None,
    store: Optional[ResultStore] = None,
) -> SpecRunResult:
    with _OBS.stage("run", kind=spec.kind):
        result = congested_moments_experiment(
            body.machine,
            n_moments=body.n_moments,
            schedulers=body.schedulers,
            rng=spec.seed,
            priority_only=body.priority_only,
            max_time=spec.max_time,
            progress=progress,
            executor=executor,
            store=store,
            engine=spec.engine,
        )
    with _OBS.stage("report", kind=spec.kind):
        records = grid_records(result.grid)
        averages = result.grid.averages()
        payload = {
            "experiment": _spec_echo(spec),
            "machine": body.machine,
            "n_moments": len(result.grid.scenarios()),
            "baseline": result.baseline_label,
            "mean_upper_limit": result.mean_upper_limit(),
            "cells": records,
            "averages": averages,
        }
        text = format_table(
            _AVERAGES_HEADERS,
            _averages_rows(averages),
            title=(
                f"Congested moments on {body.machine} "
                f"({len(result.grid.scenarios())} moments; "
                f"baseline {result.baseline_label} runs with burst buffers)"
            ),
        )
        return SpecRunResult(
            spec=spec, payload=payload, records=records, text=text
        )


def _run_vesta_spec(
    spec: ExperimentSpec,
    body: VestaSpec,
    progress: Optional[ProgressCallback] = None,
    executor: Optional[ExperimentExecutor] = None,
    store: Optional[ResultStore] = None,
) -> SpecRunResult:
    if spec.max_time != float("inf"):
        # Vesta cells are overhead-scored against their full execution
        # (score_with_overhead rebuilds outcomes from the complete original
        # parameters), so a truncation horizon would yield misleading
        # numbers.  Reject it rather than silently ignore it; the cells are
        # small enough to always run to completion.
        raise SpecError(
            "max_time is not supported for 'vesta' experiments: cells are "
            "overhead-scored on complete runs — remove experiment.max_time "
            "(or the --max-time override)"
        )
    with _OBS.stage("run", kind=spec.kind):
        result = vesta_experiment(
            scenarios=body.scenarios,
            configurations=body.configurations,
            rng=spec.seed,
            progress=progress,
            executor=executor,
            store=store,
            engine=spec.engine,
        )
    with _OBS.stage("report", kind=spec.kind):
        records = [
            {
                "scenario": case.scenario,
                "configuration": case.configuration,
                "system_efficiency": case.summary.system_efficiency,
                "dilation": case.summary.dilation,
                "upper_limit": case.summary.upper_limit,
                "makespan": case.makespan,
            }
            for case in result.cases
        ]
        payload = {
            "experiment": _spec_echo(spec),
            "scenarios": list(body.scenarios),
            "configurations": list(body.configurations),
            "cells": records,
        }
        rows = [
            [r["scenario"], r["configuration"],
             percent(r["system_efficiency"]), ratio(r["dilation"])]
            for r in records
        ]
        text = format_table(
            ["Node mix", "Configuration", "SysEfficiency (%)", "Dilation"],
            rows,
            title=(
                f"{spec.name}: Vesta / modified-IOR emulation "
                "(Figure 15 grid)"
            ),
        )
        return SpecRunResult(
            spec=spec, payload=payload, records=records, text=text
        )


def _run_periodic_spec(
    spec: ExperimentSpec,
    body: PeriodicSpec,
    progress: Optional[ProgressCallback] = None,
    executor: Optional[ExperimentExecutor] = None,
    store: Optional[ResultStore] = None,
) -> SpecRunResult:
    if spec.max_time != float("inf"):
        # Parse-time rejection covers the spec file; this covers a CLI
        # --max-time override.  A horizon could only truncate the online
        # half, silently skewing the periodic-vs-online comparison.
        raise SpecError(
            "max_time is not supported for 'periodic' experiments: a "
            "steady-state schedule has no horizon, so truncation would "
            "only distort the online comparison — remove experiment."
            "max_time (or the --max-time override)"
        )
    with _OBS.stage("build", kind=spec.kind):
        platform, applications = build_periodic_setup(body, spec.seed)
    records: list[dict] = []
    rows: list[list[object]] = []
    periodic_payload: dict[str, dict] = {}
    with _OBS.stage("run", kind=spec.kind):
        # The period sweep is a *study*, not a grid of independent simulations,
        # so it memoizes as one unit per heuristic: the key digests the built
        # platform + applications (capturing the seed-derived mix), the sweep
        # knobs and the producing-code fingerprint.
        study_prefix = None
        if store is not None:
            study_prefix = digest(
                "periodic-study",
                code_fingerprint(),
                canonical_json(platform),
                canonical_json(applications),
                body.epsilon,
                body.max_period,
                body.max_period_factor,
            )
        for key in body.heuristics:
            heuristic_cls, objective = PERIODIC_HEURISTIC_TABLE[key]
            cached = None
            study_key = None
            if study_prefix is not None:
                study_key = digest(study_prefix, key, objective)
                cached = store.get(study_key)
            if cached is not None:
                fragment = cached["fragment"]
                record = cached["record"]
                row = cached["row"]
            else:
                heuristic = heuristic_cls()
                result = search_period(
                    heuristic,
                    platform,
                    applications,
                    objective=objective,
                    epsilon=body.epsilon,
                    max_period=body.max_period,
                    max_period_factor=body.max_period_factor,
                )
                summary = result.best_schedule.summary()
                counts = result.best_schedule.instances_per_application()
                fragment = {
                    "heuristic": heuristic.name,
                    "objective": objective,
                    "best_period": result.best_period,
                    "system_efficiency": summary.system_efficiency,
                    "dilation": summary.dilation,
                    "n_instances_per_period": sum(counts.values()),
                    "complete": result.best_schedule.is_complete(),
                    "sweep": [
                        {
                            "period": point.period,
                            "system_efficiency": point.system_efficiency,
                            "dilation": point.dilation,
                            "complete": point.complete,
                        }
                        for point in result.sweep
                    ],
                }
                record = {
                    "mode": "periodic",
                    "scheduler": heuristic.name,
                    "objective": objective,
                    "system_efficiency": summary.system_efficiency,
                    "dilation": summary.dilation,
                    "period": result.best_period,
                }
                row = [
                    f"{heuristic.name} (periodic)",
                    percent(summary.system_efficiency),
                    ratio(summary.dilation),
                    ratio(result.best_period),
                ]
                if study_key is not None:
                    store.put(
                        study_key,
                        {"fragment": fragment, "record": record, "row": row},
                    )
            periodic_payload[key] = fragment
            records.append(record)
            rows.append(row)
            if progress is not None:
                progress(
                    f"periodic {key}: swept {len(fragment['sweep'])} periods, "
                    f"best T = {fragment['best_period']:.6g} s"
                )

        online_payload: dict[str, dict] = {}
        if body.online:
            scenario = Scenario(
                platform=platform,
                applications=tuple(applications),
                label=f"{spec.name}-apps",
                metadata={"kind": "periodic"},
            )
            cases = [SchedulerCase(name=name) for name in body.online]
            # No max_time: the guard above pins it to inf, and the online half
            # must structurally run to completion to stay comparable with the
            # steady-state schedules.
            grid = run_grid(
                [scenario],
                cases,
                progress=progress,
                executor=executor,
                store=store,
                engine=spec.engine,
            )
            for case in grid.cases:
                online_payload[case.scheduler_label] = {
                    "system_efficiency": case.system_efficiency,
                    "dilation": case.dilation,
                    "upper_limit": case.upper_limit,
                    "makespan": case.makespan,
                }
                records.append(
                    {
                        "mode": "online",
                        "scheduler": case.scheduler_label,
                        "system_efficiency": case.system_efficiency,
                        "dilation": case.dilation,
                        "makespan": case.makespan,
                    }
                )
                rows.append(
                    [
                        f"{case.scheduler_label} (online)",
                        percent(case.system_efficiency),
                        ratio(case.dilation),
                        "-",
                    ]
                )

    with _OBS.stage("report", kind=spec.kind):
        payload = {
            "experiment": _spec_echo(spec),
            "platform": platform.name,
            "n_applications": len(applications),
            "applications": [
                {
                    "name": app.name,
                    "processors": app.processors,
                    "work": app.instances[0].work,
                    "io_volume": app.instances[0].io_volume,
                    "instances": app.n_instances,
                }
                for app in applications
            ],
            "periodic": periodic_payload,
            "online": online_payload,
        }
        text = format_table(
            ["Case", "SysEfficiency (%)", "Dilation", "Best period T (s)"],
            rows,
            title=(
                f"{spec.name}: Section 3.2 periodic heuristics vs online "
                f"({len(applications)} applications on {platform.name})"
            ),
        )
        return SpecRunResult(spec=spec, payload=payload, records=records, text=text)


_FigureOutcome = tuple[dict, list[dict], str]


def _analysis_figure1(
    spec: ExperimentSpec,
    body: AnalysisSpec,
    platform,
    rng,
    progress: Optional[ProgressCallback],
    executor: Optional[ExperimentExecutor] = None,
) -> _FigureOutcome:
    """Figure 1: the throughput-decrease replay."""
    f1 = body.figure1
    study = throughput_decrease_study(
        f1.n_applications,
        platform=platform,
        applications_per_batch=f1.applications_per_batch,
        io_ratio=f1.io_ratio,
        release_spread=f1.release_spread,
        rng=rng,
        bin_width=f1.bin_width,
        max_time=spec.max_time,
        executor=executor,
        engine=spec.engine,
    )
    fragment = {
        "n_applications_requested": study.n_applications_requested,
        "n_applications": study.n_applications,
        "mean_decrease": study.mean_decrease,
        "max_decrease": study.max_decrease,
        "fraction_above_30pct": study.fraction_above(30.0),
        "bin_edges": list(study.bin_edges),
        "histogram": list(study.histogram),
    }
    records: list[dict] = []
    rows: list[list[object]] = []
    for lo, hi, count in zip(
        study.bin_edges[:-1], study.bin_edges[1:], study.histogram
    ):
        records.append(
            {"figure": "figure1", "bin_start": lo, "bin_end": hi, "count": count}
        )
        rows.append([f"{lo:g}-{hi:g}", str(count)])
    block = format_table(
        ["Decrease bin (%)", "Applications"],
        rows,
        title=(
            f"Figure 1 — I/O throughput decrease "
            f"({study.n_applications} applications, "
            f"max {study.max_decrease:.1f}%)"
        ),
    )
    if progress is not None:
        progress(
            f"figure1: {study.n_applications} applications measured, "
            f"worst decrease {study.max_decrease:.1f}%"
        )
    return fragment, records, block


def _analysis_figure5(
    spec: ExperimentSpec,
    body: AnalysisSpec,
    platform,
    rng,
    progress: Optional[ProgressCallback],
    executor: Optional[ExperimentExecutor] = None,
) -> _FigureOutcome:
    """Figure 5: the synthetic-Darshan workload characterization."""
    f5 = body.figure5
    usage = characterize(
        generate_records(
            f5.n_jobs,
            platform,
            rng,
            duration_days=f5.duration_days,
            coverage=f5.coverage,
        ),
        duration_days=f5.duration_days,
    )
    fragment = {
        "n_jobs": f5.n_jobs,
        "duration_days": f5.duration_days,
        "daily_node_hours": {
            c.value: v for c, v in usage.daily_node_hours.items()
        },
        "io_time_percent": {
            c.value: v for c, v in usage.io_time_percent.items()
        },
        "job_counts": {c.value: n for c, n in usage.job_counts.items()},
        "dominant_category": usage.dominant_category().value,
    }
    records: list[dict] = []
    rows: list[list[object]] = []
    for category, node_hours in usage.daily_node_hours.items():
        records.append(
            {
                "figure": "figure5",
                "category": category.value,
                "daily_node_hours": node_hours,
                "io_time_percent": usage.io_time_percent[category],
                "job_count": usage.job_counts[category],
            }
        )
        rows.append(
            [
                category.value,
                ratio(node_hours),
                percent(usage.io_time_percent[category]),
                str(usage.job_counts[category]),
            ]
        )
    block = format_table(
        ["Category", "Node-hours/day", "I/O time (%)", "Jobs"],
        rows,
        title=(
            f"Figure 5 — workload characterization "
            f"({f5.n_jobs} synthetic Darshan jobs)"
        ),
    )
    if progress is not None:
        progress(
            f"figure5: {f5.n_jobs} jobs characterized, dominant "
            f"category {usage.dominant_category().value}"
        )
    return fragment, records, block


def _analysis_figure7(
    spec: ExperimentSpec,
    body: AnalysisSpec,
    platform,
    rng,
    progress: Optional[ProgressCallback],
    executor: Optional[ExperimentExecutor] = None,
) -> _FigureOutcome:
    """Figure 7: the sensibility (periodicity) sweep."""
    f7 = body.figure7
    study = sensitivity_study(
        f7.sensibilities,
        schedulers=f7.schedulers,
        scenario=f7.scenario,
        n_repetitions=f7.n_repetitions,
        platform=platform,
        rng=rng,
        perturb_io=f7.perturb_io,
        max_time=spec.max_time,
        progress=progress,
        executor=executor,
        engine=spec.engine,
    )
    fragment = {
        "scenario": f7.scenario,
        "n_repetitions": f7.n_repetitions,
        "perturb_io": f7.perturb_io,
        "sensibilities_percent": study.sensibilities(),
        "series": {
            scheduler: {
                "system_efficiency": study.series(
                    scheduler, "system_efficiency"
                ),
                "dilation": study.series(scheduler, "dilation"),
            }
            for scheduler in study.schedulers
        },
        "max_relative_variation": {
            scheduler: study.max_relative_variation(
                scheduler, "system_efficiency"
            )
            for scheduler in study.schedulers
        },
    }
    records: list[dict] = []
    rows: list[list[object]] = []
    for point in study.points:
        for scheduler in study.schedulers:
            records.append(
                {
                    "figure": "figure7",
                    "sensibility_percent": point.sensibility_percent,
                    "scheduler": scheduler,
                    "system_efficiency": point.system_efficiency[scheduler],
                    "dilation": point.dilation[scheduler],
                }
            )
            rows.append(
                [
                    f"{point.sensibility_percent:g}",
                    scheduler,
                    percent(point.system_efficiency[scheduler]),
                    ratio(point.dilation[scheduler]),
                ]
            )
    block = format_table(
        ["Sensibility (%)", "Scheduler", "SysEfficiency (%)", "Dilation"],
        rows,
        title=(
            f"Figure 7 — sensibility sweep on {f7.scenario} "
            f"({f7.n_repetitions} mixes per level)"
        ),
    )
    if progress is not None:
        progress(
            f"figure7: {len(study.points)} sensibility levels x "
            f"{len(study.schedulers)} heuristics done"
        )
    return fragment, records, block


_ANALYSIS_RUNNERS = {
    "figure1": _analysis_figure1,
    "figure5": _analysis_figure5,
    "figure7": _analysis_figure7,
}


def _run_analysis_spec(
    spec: ExperimentSpec,
    body: AnalysisSpec,
    progress: Optional[ProgressCallback] = None,
    executor: Optional[ExperimentExecutor] = None,
    store: Optional[ResultStore] = None,
) -> SpecRunResult:
    with _OBS.stage("build", kind=spec.kind):
        platform = build_platform(body.platform)
        # Fixed seed slots: figure N always consumes child stream N of the
        # experiment seed, so deselecting one figure never shifts the others.
        slots = dict(
            zip(ANALYSIS_FIGURES, spawn_rngs(spec.seed, len(ANALYSIS_FIGURES)))
        )
    records: list[dict] = []
    figures_payload: dict[str, dict] = {}
    blocks: list[str] = []
    with _OBS.stage("run", kind=spec.kind):
        for figure in body.figures:
            # Each figure memoizes as one study.  The key digests the built
            # platform, the figure's own spec fragment, the experiment seed (the
            # slot streams derive deterministically from it) and the horizon —
            # so a second run of an unchanged spec performs zero study work.
            study_key = None
            cached = None
            if store is not None:
                study_key = digest(
                    "analysis-study",
                    code_fingerprint(),
                    figure,
                    canonical_json(platform),
                    canonical_json(getattr(body, figure)),
                    spec.seed,
                    spec.max_time,
                    spec.engine,
                )
                cached = store.get(study_key)
            if cached is not None:
                fragment = cached["fragment"]
                figure_records = cached["records"]
                block = cached["block"]
                if progress is not None:
                    progress(f"{figure}: served from the result store")
            else:
                fragment, figure_records, block = _ANALYSIS_RUNNERS[figure](
                    spec, body, platform, slots[figure], progress, executor
                )
                if study_key is not None:
                    store.put(
                        study_key,
                        {
                            "fragment": fragment,
                            "records": figure_records,
                            "block": block,
                        },
                    )
            figures_payload[figure] = fragment
            records.extend(figure_records)
            blocks.append(block)

    with _OBS.stage("report", kind=spec.kind):
        payload = {
            "experiment": _spec_echo(spec),
            "platform": platform.name,
            "figures": figures_payload,
            "cells": records,
        }
        return SpecRunResult(
            spec=spec, payload=payload, records=records, text="\n".join(blocks)
        )


# ---------------------------------------------------------------------- #
def run_spec(
    spec: ExperimentSpec,
    progress: Optional[ProgressCallback] = None,
    store: Optional[ResultStore] = None,
) -> SpecRunResult:
    """Run one experiment spec to completion.

    The spec's own ``seed`` / ``workers`` / ``max_time`` are honoured; apply
    CLI-level overrides first via
    :meth:`~repro.config.spec.ExperimentSpec.with_overrides`.  ``progress``
    (the CLI's ``--progress`` flag) receives one human-readable line per
    completed grid cell / sweep level / figure study; it never affects
    results.

    ``store`` attaches a :class:`repro.store.ResultStore`: every grid cell
    and analysis/periodic study is served from the store when its key is
    present and written back when computed, so a rerun of an unchanged spec
    performs zero simulation work and an interrupted campaign resumes from
    the cells that already landed.  Cached runs are byte-identical to cold
    ones; the run's hit/miss counters land in
    :attr:`SpecRunResult.store_stats` (never in the payload).
    """
    body = spec.body
    result: Optional[SpecRunResult] = None
    # Snapshot the handle's counters so store_stats describes *this* run
    # even when one store serves a whole fleet of specs (repro report).
    stats_before = replace(store.stats) if store is not None else None
    # One executor for the whole spec run: every harness below shares the
    # same lazily-spawned pool (never spawned at all for serial specs), so
    # a multi-study spec pays process start-up at most once.
    with _OBS.span("spec", category="spec", spec=spec.name, kind=spec.kind), \
            ExperimentExecutor(spec.workers) as executor:
        if isinstance(body, GridSpec):
            result = _run_grid_spec(spec, body, progress, executor, store)
        elif isinstance(body, Figure6Spec):
            result = _run_figure6_spec(spec, body, progress, executor, store)
        elif isinstance(body, CongestedMomentsSpec):
            result = _run_congested_spec(spec, body, progress, executor, store)
        elif isinstance(body, VestaSpec):
            result = _run_vesta_spec(spec, body, progress, executor, store)
        elif isinstance(body, PeriodicSpec):
            result = _run_periodic_spec(spec, body, progress, executor, store)
        elif isinstance(body, AnalysisSpec):
            result = _run_analysis_spec(spec, body, progress, executor, store)
    if result is None:
        raise SpecError(f"experiment kind {spec.kind!r} has no runner")
    if store is not None:
        result.store_stats = StoreStats(
            hits=store.stats.hits - stats_before.hits,
            misses=store.stats.misses - stats_before.misses,
            writes=store.stats.writes - stats_before.writes,
            corrupt=store.stats.corrupt - stats_before.corrupt,
            write_errors=store.stats.write_errors - stats_before.write_errors,
            collisions=store.stats.collisions - stats_before.collisions,
        ).as_dict()
    return result


def write_result(
    result: SpecRunResult,
    *,
    path: Optional[str] = None,
    format: Optional[str] = None,
) -> Optional[Path]:
    """Write a run's results to disk.

    ``path`` / ``format`` override the spec's ``[output]`` table; with
    neither an ``[output]`` table nor an explicit path, nothing is written
    and ``None`` is returned.  The format is picked in order: explicit
    ``format`` argument; the spec's ``[output].format`` — but only when the
    spec's own path is used (a ``path`` override switches to its suffix, so
    ``--out cells.csv`` never receives JSON); else the target suffix
    (``.csv`` selects CSV, anything else JSON).
    """
    output = result.spec.output
    target = path or (output.path if output else None)
    if target is None:
        return None
    chosen = format
    if chosen is None and path is None and output is not None:
        chosen = output.format
    if chosen is None:
        chosen = "csv" if str(target).lower().endswith(".csv") else "json"
    if chosen == "csv":
        return write_csv(result.records, target)
    if chosen == "json":
        return write_json(result.payload, target)
    raise SpecError(f"unknown output format {chosen!r}; use 'json' or 'csv'")

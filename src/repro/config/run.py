"""Execute a parsed experiment spec and package the results.

:func:`run_spec` is the single entry point behind ``repro run``: it
dispatches on the experiment kind, drives the corresponding harness
(:func:`repro.experiments.runner.run_grid`,
:func:`repro.experiments.comparison.figure6_experiment`,
:func:`repro.experiments.comparison.congested_moments_experiment` or
:func:`repro.experiments.vesta.vesta_experiment`) and returns a
:class:`SpecRunResult` carrying three synchronized views of the outcome:

* ``payload`` — a JSON-serializable dict (spec echo + per-cell records +
  averages), the round-trip artefact a spec fully determines;
* ``records`` — flat per-cell rows for CSV;
* ``text`` — the aligned plain-text tables printed to the terminal.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.config.build import build_cases, build_grid_scenarios, build_platform
from repro.config.schema import SpecError
from repro.config.spec import (
    CongestedMomentsSpec,
    ExperimentSpec,
    Figure6Spec,
    GridSpec,
    OutputSpec,
    VestaSpec,
)
from repro.experiments.comparison import (
    congested_moments_experiment,
    figure6_experiment,
)
from repro.experiments.reporting import (
    format_table,
    grid_records,
    write_csv,
    write_json,
)
from repro.experiments.runner import run_grid
from repro.experiments.vesta import vesta_experiment

__all__ = ["SpecRunResult", "run_spec", "write_result"]


@dataclass
class SpecRunResult:
    """Everything one spec run produced (see module docstring)."""

    spec: ExperimentSpec
    payload: dict
    records: list[dict]
    text: str

    def write(self, path: Optional[str] = None, format: Optional[str] = None) -> Optional[Path]:
        """Write the results to disk; see :func:`write_result`."""
        return write_result(self, path=path, format=format)


def _spec_echo(spec: ExperimentSpec) -> dict:
    """The reproducibility header of every payload."""
    return {
        "name": spec.name,
        "kind": spec.kind,
        "seed": spec.seed,
        "max_time": spec.max_time,
    }


def _averages_rows(averages: dict[str, dict[str, float]]) -> list[list[object]]:
    return [
        [
            scheduler,
            metrics["system_efficiency"],
            metrics["dilation"],
            metrics["upper_limit"],
        ]
        for scheduler, metrics in averages.items()
    ]


_AVERAGES_HEADERS = ["Scheduler", "SysEfficiency (%)", "Dilation", "Upper limit (%)"]


# ---------------------------------------------------------------------- #
def _run_grid_spec(spec: ExperimentSpec, body: GridSpec) -> SpecRunResult:
    scenarios = build_grid_scenarios(body, spec.seed)
    cases = build_cases(body)
    grid = run_grid(scenarios, cases, max_time=spec.max_time, workers=spec.workers)
    records = grid_records(grid)
    averages = grid.averages()
    payload = {
        "experiment": _spec_echo(spec),
        "platform": build_platform(body.platform).name,
        "n_scenarios": len(scenarios),
        "n_cells": len(records),
        "cells": records,
        "averages": averages,
    }
    if any(entry.platform is not None for entry in body.scenarios):
        # Per-entry platform overrides: the single grid-level name above
        # would misattribute those cells, so record the real machine per
        # scenario.  (Keyed on overrides, not on name differences — an
        # override may coincidentally reuse the grid platform's name.)
        payload["scenario_platforms"] = {
            s.label: s.platform.name for s in scenarios
        }
    text = format_table(
        _AVERAGES_HEADERS,
        _averages_rows(averages),
        title=f"{spec.name}: averages over {len(scenarios)} scenario(s)",
    )
    return SpecRunResult(spec=spec, payload=payload, records=records, text=text)


def _run_figure6_spec(spec: ExperimentSpec, body: Figure6Spec) -> SpecRunResult:
    platform = build_platform(body.platform) if body.platform is not None else None
    records: list[dict] = []
    panels_payload: dict[str, dict] = {}
    blocks: list[str] = []
    for panel in body.panels:
        result = figure6_experiment(
            panel,
            n_repetitions=body.n_repetitions,
            schedulers=body.schedulers,
            platform=platform,
            rng=spec.seed,
            workers=spec.workers,
            max_time=spec.max_time,
        )
        averages = {
            scheduler: {
                "system_efficiency": avg.system_efficiency,
                "dilation": avg.dilation,
                "upper_limit": avg.upper_limit,
            }
            for scheduler, avg in result.averages.items()
        }
        panels_payload[panel] = averages
        for scheduler, metrics in averages.items():
            records.append({"panel": panel, "scheduler": scheduler, **metrics})
        blocks.append(
            format_table(
                _AVERAGES_HEADERS,
                _averages_rows(averages),
                title=f"Figure 6 — {panel} ({body.n_repetitions} mixes)",
            )
        )
    payload = {
        "experiment": _spec_echo(spec),
        "n_repetitions": body.n_repetitions,
        "panels": panels_payload,
        "cells": records,
    }
    return SpecRunResult(
        spec=spec, payload=payload, records=records, text="\n".join(blocks)
    )


def _run_congested_spec(
    spec: ExperimentSpec, body: CongestedMomentsSpec
) -> SpecRunResult:
    result = congested_moments_experiment(
        body.machine,
        n_moments=body.n_moments,
        schedulers=body.schedulers,
        rng=spec.seed,
        priority_only=body.priority_only,
        workers=spec.workers,
        max_time=spec.max_time,
    )
    records = grid_records(result.grid)
    averages = result.grid.averages()
    payload = {
        "experiment": _spec_echo(spec),
        "machine": body.machine,
        "n_moments": len(result.grid.scenarios()),
        "baseline": result.baseline_label,
        "mean_upper_limit": result.mean_upper_limit(),
        "cells": records,
        "averages": averages,
    }
    text = format_table(
        _AVERAGES_HEADERS,
        _averages_rows(averages),
        title=(
            f"Congested moments on {body.machine} "
            f"({len(result.grid.scenarios())} moments; "
            f"baseline {result.baseline_label} runs with burst buffers)"
        ),
    )
    return SpecRunResult(spec=spec, payload=payload, records=records, text=text)


def _run_vesta_spec(spec: ExperimentSpec, body: VestaSpec) -> SpecRunResult:
    if spec.max_time != float("inf"):
        # Vesta cells are overhead-scored against their full execution
        # (score_with_overhead rebuilds outcomes from the complete original
        # parameters), so a truncation horizon would yield misleading
        # numbers.  Reject it rather than silently ignore it; the cells are
        # small enough to always run to completion.
        raise SpecError(
            "max_time is not supported for 'vesta' experiments: cells are "
            "overhead-scored on complete runs — remove experiment.max_time "
            "(or the --max-time override)"
        )
    result = vesta_experiment(
        scenarios=body.scenarios,
        configurations=body.configurations,
        rng=spec.seed,
        workers=spec.workers,
    )
    records = [
        {
            "scenario": case.scenario,
            "configuration": case.configuration,
            "system_efficiency": case.summary.system_efficiency,
            "dilation": case.summary.dilation,
            "upper_limit": case.summary.upper_limit,
            "makespan": case.makespan,
        }
        for case in result.cases
    ]
    payload = {
        "experiment": _spec_echo(spec),
        "scenarios": list(body.scenarios),
        "configurations": list(body.configurations),
        "cells": records,
    }
    rows = [
        [r["scenario"], r["configuration"], r["system_efficiency"], r["dilation"]]
        for r in records
    ]
    text = format_table(
        ["Node mix", "Configuration", "SysEfficiency (%)", "Dilation"],
        rows,
        title=f"{spec.name}: Vesta / modified-IOR emulation (Figure 15 grid)",
    )
    return SpecRunResult(spec=spec, payload=payload, records=records, text=text)


# ---------------------------------------------------------------------- #
def run_spec(spec: ExperimentSpec) -> SpecRunResult:
    """Run one experiment spec to completion.

    The spec's own ``seed`` / ``workers`` / ``max_time`` are honoured; apply
    CLI-level overrides first via
    :meth:`~repro.config.spec.ExperimentSpec.with_overrides`.
    """
    body = spec.body
    if isinstance(body, GridSpec):
        return _run_grid_spec(spec, body)
    if isinstance(body, Figure6Spec):
        return _run_figure6_spec(spec, body)
    if isinstance(body, CongestedMomentsSpec):
        return _run_congested_spec(spec, body)
    if isinstance(body, VestaSpec):
        return _run_vesta_spec(spec, body)
    raise SpecError(f"experiment kind {spec.kind!r} has no runner")


def write_result(
    result: SpecRunResult,
    *,
    path: Optional[str] = None,
    format: Optional[str] = None,
) -> Optional[Path]:
    """Write a run's results to disk.

    ``path`` / ``format`` override the spec's ``[output]`` table; with
    neither an ``[output]`` table nor an explicit path, nothing is written
    and ``None`` is returned.  The format is picked in order: explicit
    ``format`` argument; the spec's ``[output].format`` — but only when the
    spec's own path is used (a ``path`` override switches to its suffix, so
    ``--out cells.csv`` never receives JSON); else the target suffix
    (``.csv`` selects CSV, anything else JSON).
    """
    output = result.spec.output
    target = path or (output.path if output else None)
    if target is None:
        return None
    chosen = format
    if chosen is None and path is None and output is not None:
        chosen = output.format
    if chosen is None:
        chosen = "csv" if str(target).lower().endswith(".csv") else "json"
    if chosen == "csv":
        return write_csv(result.records, target)
    if chosen == "json":
        return write_json(result.payload, target)
    raise SpecError(f"unknown output format {chosen!r}; use 'json' or 'csv'")

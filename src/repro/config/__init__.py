"""Declarative scenario/experiment configs (the layer behind ``repro run``).

A *spec* is a TOML or JSON file (or a plain dict) that fully determines a
reproducible experiment: platform, application scenarios with pinned seeds,
scheduler list, truncation horizon and output destination.  The subsystem
splits into four small modules:

* :mod:`repro.config.schema` — typed key extraction with path-aware errors
  (``scenarios[0].io_ratio must be a number``);
* :mod:`repro.config.spec` — the validated spec dataclasses and
  :func:`~repro.config.spec.parse_spec`;
* :mod:`repro.config.loader` — :func:`~repro.config.loader.load_spec` for
  ``.toml`` / ``.json`` files;
* :mod:`repro.config.build` / :mod:`repro.config.run` — spec → live model
  objects → executed results (JSON/CSV dumps included).

Quickstart::

    from repro.config import load_spec, run_spec

    spec = load_spec("examples/specs/figure6.toml")
    result = run_spec(spec.with_overrides(max_time=2000.0))
    print(result.text)

See ``docs/scenarios.md`` for the full key reference.
"""

from repro.config.build import (
    build_burst_buffer_platform,
    build_cases,
    build_entry_scenarios,
    build_grid_scenarios,
    build_periodic_setup,
    build_platform,
)
from repro.config.loader import load_spec, load_spec_data, parse_spec_text
from repro.config.run import ProgressCallback, SpecRunResult, run_spec, write_result
from repro.config.schema import Section, SpecError
from repro.config.spec import (
    ANALYSIS_FIGURES,
    EXPERIMENT_KINDS,
    PERIODIC_HEURISTICS,
    SCENARIO_KINDS,
    AnalysisSpec,
    AppSpec,
    BurstBufferTable,
    CongestedMomentsSpec,
    CrashSpec,
    ExperimentSpec,
    FaultsSpec,
    FaultWindowSpec,
    Figure1Spec,
    Figure5Spec,
    Figure6Spec,
    Figure7Spec,
    GridSpec,
    OutputSpec,
    PeriodicSpec,
    PlatformSpec,
    RandomCrashesSpec,
    RandomWindowsSpec,
    ScenarioEntry,
    SchedulerCaseSpec,
    VestaSpec,
    check_scheduler_name,
    parse_spec,
)

__all__ = [
    "SpecError",
    "Section",
    "EXPERIMENT_KINDS",
    "SCENARIO_KINDS",
    "PlatformSpec",
    "BurstBufferTable",
    "AppSpec",
    "ScenarioEntry",
    "SchedulerCaseSpec",
    "OutputSpec",
    "FaultWindowSpec",
    "CrashSpec",
    "RandomWindowsSpec",
    "RandomCrashesSpec",
    "FaultsSpec",
    "GridSpec",
    "Figure6Spec",
    "CongestedMomentsSpec",
    "VestaSpec",
    "PeriodicSpec",
    "AnalysisSpec",
    "Figure1Spec",
    "Figure5Spec",
    "Figure7Spec",
    "PERIODIC_HEURISTICS",
    "ANALYSIS_FIGURES",
    "ExperimentSpec",
    "check_scheduler_name",
    "parse_spec",
    "parse_spec_text",
    "load_spec",
    "load_spec_data",
    "build_platform",
    "build_burst_buffer_platform",
    "build_entry_scenarios",
    "build_grid_scenarios",
    "build_cases",
    "build_periodic_setup",
    "SpecRunResult",
    "ProgressCallback",
    "run_spec",
    "write_result",
]

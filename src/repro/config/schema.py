"""Low-level spec validation: typed key extraction with path-aware errors.

Declarative specs arrive as nested mappings (parsed from TOML or JSON, or
built directly as Python dicts).  Everything in this module exists to turn a
malformed spec into an error message that names the exact key that is wrong
— ``scenarios[2].io_ratio must be a number, got 'lots'`` — instead of a bare
``KeyError`` three stack frames deep inside a builder.

:class:`Section` wraps one table of the spec together with its path.  Typed
getters (:meth:`Section.get_str`, :meth:`Section.get_float`, ...) consume
keys as they validate them; :meth:`Section.finish` then rejects any key that
was never consumed, so typos (``scheduler`` for ``schedulers``) fail loudly
with the list of keys that *would* have been accepted.
"""

from __future__ import annotations

from typing import Any, Literal, Mapping, Optional, Sequence, overload

from repro.utils.validation import ValidationError

__all__ = ["SpecError", "Section"]


class SpecError(ValidationError):
    """Raised when a declarative scenario/experiment spec is malformed.

    The message always starts with the spec path of the offending key
    (``experiment.kind``, ``scenarios[0].apps[1].work``, ...) so the error
    can be traced straight back to the line of the spec file.
    """


def _type_name(value: object) -> str:
    return type(value).__name__


class Section:
    """One table of a spec, with typed key extraction and unknown-key checks.

    Parameters
    ----------
    data:
        The mapping to validate.
    where:
        Spec path of this table, used as the prefix of every error message
        (e.g. ``"scenarios[0]"``; the empty string denotes the spec root).
    """

    def __init__(self, data: Mapping[str, Any], where: str = "") -> None:
        if not isinstance(data, Mapping):
            raise SpecError(
                f"{where or 'spec'} must be a table/mapping, got {_type_name(data)}"
            )
        self._data = data
        self._where = where
        self._consumed: set[str] = set()

    # ------------------------------------------------------------------ #
    @property
    def where(self) -> str:
        """Spec path of this table."""
        return self._where

    def path(self, key: str) -> str:
        """Spec path of one key inside this table."""
        return f"{self._where}.{key}" if self._where else key

    def has(self, key: str) -> bool:
        """Whether the key is present (does not consume it)."""
        return key in self._data

    def has_value(self, key: str) -> bool:
        """Whether the key is present with a non-null value (not consumed).

        JSON null counts as absent, matching how every getter treats it.
        """
        return self._data.get(key) is not None

    def error(self, message: str) -> SpecError:
        """A :class:`SpecError` prefixed with this table's path."""
        prefix = f"{self._where}: " if self._where else ""
        return SpecError(f"{prefix}{message}")

    # ------------------------------------------------------------------ #
    def _take(self, key: str, default: Any, required: bool) -> Any:
        self._consumed.add(key)
        # A JSON null is treated exactly like an absent key (TOML cannot
        # express null at all): it must not bypass required/type/bounds
        # checks by short-circuiting the getters' `value is None` paths.
        if self._data.get(key) is not None:
            return self._data[key]
        if required:
            raise SpecError(f"missing required key {self.path(key)!r}")
        return default

    # The getters narrow statically the same way they behave dynamically:
    # a non-None default or required=True can never return None, so those
    # call shapes type as the bare value — spec dataclass fields annotated
    # non-Optional accept them under mypy --strict without casts.
    @overload
    def get_str(
        self,
        key: str,
        default: str,
        *,
        required: bool = ...,
        choices: Optional[Sequence[str]] = ...,
    ) -> str: ...

    @overload
    def get_str(
        self,
        key: str,
        default: None = ...,
        *,
        required: Literal[True],
        choices: Optional[Sequence[str]] = ...,
    ) -> str: ...

    @overload
    def get_str(
        self,
        key: str,
        default: None = ...,
        *,
        required: bool = ...,
        choices: Optional[Sequence[str]] = ...,
    ) -> Optional[str]: ...

    def get_str(
        self,
        key: str,
        default: Optional[str] = None,
        *,
        required: bool = False,
        choices: Optional[Sequence[str]] = None,
    ) -> Optional[str]:
        """A string value, optionally restricted to ``choices``."""
        value = self._take(key, default, required)
        if value is None:
            return None
        if not isinstance(value, str):
            raise SpecError(
                f"{self.path(key)} must be a string, got {_type_name(value)}"
            )
        if choices is not None and value not in choices:
            raise SpecError(
                f"{self.path(key)} must be one of {sorted(choices)}, got {value!r}"
            )
        return value

    @overload
    def get_bool(
        self, key: str, default: bool, *, required: bool = ...
    ) -> bool: ...

    @overload
    def get_bool(
        self, key: str, default: None = ..., *, required: Literal[True]
    ) -> bool: ...

    @overload
    def get_bool(
        self, key: str, default: None = ..., *, required: bool = ...
    ) -> Optional[bool]: ...

    def get_bool(
        self, key: str, default: Optional[bool] = None, *, required: bool = False
    ) -> Optional[bool]:
        """A boolean value (``true``/``false`` in TOML)."""
        value = self._take(key, default, required)
        if value is None:
            return None
        if not isinstance(value, bool):
            raise SpecError(
                f"{self.path(key)} must be a boolean, got {_type_name(value)}"
            )
        return value

    @overload
    def get_int(
        self,
        key: str,
        default: int,
        *,
        required: bool = ...,
        minimum: Optional[int] = ...,
        maximum: Optional[int] = ...,
    ) -> int: ...

    @overload
    def get_int(
        self,
        key: str,
        default: None = ...,
        *,
        required: Literal[True],
        minimum: Optional[int] = ...,
        maximum: Optional[int] = ...,
    ) -> int: ...

    @overload
    def get_int(
        self,
        key: str,
        default: None = ...,
        *,
        required: bool = ...,
        minimum: Optional[int] = ...,
        maximum: Optional[int] = ...,
    ) -> Optional[int]: ...

    def get_int(
        self,
        key: str,
        default: Optional[int] = None,
        *,
        required: bool = False,
        minimum: Optional[int] = None,
        maximum: Optional[int] = None,
    ) -> Optional[int]:
        """An integer value within optional inclusive bounds."""
        value = self._take(key, default, required)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(
                f"{self.path(key)} must be an integer, got {value!r}"
            )
        if minimum is not None and value < minimum:
            raise SpecError(f"{self.path(key)} must be >= {minimum}, got {value}")
        if maximum is not None and value > maximum:
            raise SpecError(f"{self.path(key)} must be <= {maximum}, got {value}")
        return value

    @overload
    def get_float(
        self,
        key: str,
        default: float,
        *,
        required: bool = ...,
        minimum: Optional[float] = ...,
        maximum: Optional[float] = ...,
        positive: bool = ...,
        allow_inf: bool = ...,
    ) -> float: ...

    @overload
    def get_float(
        self,
        key: str,
        default: None = ...,
        *,
        required: Literal[True],
        minimum: Optional[float] = ...,
        maximum: Optional[float] = ...,
        positive: bool = ...,
        allow_inf: bool = ...,
    ) -> float: ...

    @overload
    def get_float(
        self,
        key: str,
        default: None = ...,
        *,
        required: bool = ...,
        minimum: Optional[float] = ...,
        maximum: Optional[float] = ...,
        positive: bool = ...,
        allow_inf: bool = ...,
    ) -> Optional[float]: ...

    def get_float(
        self,
        key: str,
        default: Optional[float] = None,
        *,
        required: bool = False,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
        positive: bool = False,
        allow_inf: bool = False,
    ) -> Optional[float]:
        """A numeric value (int or float) within optional bounds.

        NaN is always rejected (every bound comparison is vacuously false on
        NaN, so it would silently defeat validation); infinities only pass
        with ``allow_inf`` (meaningful for e.g. an unbounded ``max_time``).
        The ``default`` is trusted as-is.
        """
        present = self._data.get(key) is not None
        value = self._take(key, default, required)
        if value is None:
            return None
        if not present:
            return value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(
                f"{self.path(key)} must be a number, got {value!r}"
            )
        value = float(value)
        if value != value:
            raise SpecError(f"{self.path(key)} must not be NaN")
        if not allow_inf and value in (float("inf"), float("-inf")):
            raise SpecError(f"{self.path(key)} must be finite, got {value}")
        if positive and value <= 0:
            raise SpecError(f"{self.path(key)} must be > 0, got {value}")
        if minimum is not None and value < minimum:
            raise SpecError(f"{self.path(key)} must be >= {minimum}, got {value}")
        if maximum is not None and value > maximum:
            raise SpecError(f"{self.path(key)} must be <= {maximum}, got {value}")
        return value

    @overload
    def get_str_list(
        self,
        key: str,
        default: Sequence[str],
        *,
        required: bool = ...,
        non_empty: bool = ...,
        unique: bool = ...,
    ) -> list[str]: ...

    @overload
    def get_str_list(
        self,
        key: str,
        default: None = ...,
        *,
        required: Literal[True],
        non_empty: bool = ...,
        unique: bool = ...,
    ) -> list[str]: ...

    @overload
    def get_str_list(
        self,
        key: str,
        default: None = ...,
        *,
        required: bool = ...,
        non_empty: bool = ...,
        unique: bool = ...,
    ) -> Optional[list[str]]: ...

    def get_str_list(
        self,
        key: str,
        default: Optional[Sequence[str]] = None,
        *,
        required: bool = False,
        non_empty: bool = False,
        unique: bool = False,
    ) -> Optional[list[str]]:
        """A list of strings; ``unique`` rejects duplicate entries.

        Results keyed by these strings (panels, scheduler averages, node
        mixes) silently collapse on duplicates, so list keys that feed such
        indexes should pass ``unique=True``.
        """
        value = self._take(key, default, required)
        if value is None:
            return None
        if isinstance(value, str) or not isinstance(value, Sequence):
            raise SpecError(
                f"{self.path(key)} must be a list of strings, got {value!r}"
            )
        out: list[str] = []
        for i, item in enumerate(value):
            if not isinstance(item, str):
                raise SpecError(
                    f"{self.path(key)}[{i}] must be a string, got {_type_name(item)}"
                )
            if unique and item in out:
                raise SpecError(
                    f"{self.path(key)}[{i}] duplicates {item!r}; entries "
                    "must be unique"
                )
            out.append(item)
        if non_empty and not out:
            raise SpecError(f"{self.path(key)} must not be empty")
        return out

    @overload
    def get_float_list(
        self,
        key: str,
        default: Sequence[float],
        *,
        required: bool = ...,
        non_empty: bool = ...,
        unique: bool = ...,
        minimum: Optional[float] = ...,
        maximum: Optional[float] = ...,
    ) -> list[float]: ...

    @overload
    def get_float_list(
        self,
        key: str,
        default: None = ...,
        *,
        required: Literal[True],
        non_empty: bool = ...,
        unique: bool = ...,
        minimum: Optional[float] = ...,
        maximum: Optional[float] = ...,
    ) -> list[float]: ...

    @overload
    def get_float_list(
        self,
        key: str,
        default: None = ...,
        *,
        required: bool = ...,
        non_empty: bool = ...,
        unique: bool = ...,
        minimum: Optional[float] = ...,
        maximum: Optional[float] = ...,
    ) -> Optional[list[float]]: ...

    def get_float_list(
        self,
        key: str,
        default: Optional[Sequence[float]] = None,
        *,
        required: bool = False,
        non_empty: bool = False,
        unique: bool = False,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
    ) -> Optional[list[float]]:
        """A list of numbers (ints or floats) within optional bounds.

        NaN entries are always rejected (bound checks are vacuously false on
        NaN); ``unique`` rejects duplicates, which matters for lists that key
        result payloads (e.g. sensibility levels).
        """
        value = self._take(key, default, required)
        if value is None:
            return None
        # Defaults run through the same validation as spec values (matching
        # get_str_list): they are tiny lists, and an invalid code-authored
        # default should fail fast, not slip through.
        if isinstance(value, (str, Mapping)) or not isinstance(value, Sequence):
            raise SpecError(
                f"{self.path(key)} must be a list of numbers, got {value!r}"
            )
        out: list[float] = []
        for i, item in enumerate(value):
            if isinstance(item, bool) or not isinstance(item, (int, float)):
                raise SpecError(
                    f"{self.path(key)}[{i}] must be a number, got {item!r}"
                )
            item = float(item)
            if item != item:
                raise SpecError(f"{self.path(key)}[{i}] must not be NaN")
            if minimum is not None and item < minimum:
                raise SpecError(
                    f"{self.path(key)}[{i}] must be >= {minimum}, got {item:g}"
                )
            if maximum is not None and item > maximum:
                raise SpecError(
                    f"{self.path(key)}[{i}] must be <= {maximum}, got {item:g}"
                )
            if unique and item in out:
                raise SpecError(
                    f"{self.path(key)}[{i}] duplicates {item:g}; entries "
                    "must be unique"
                )
            out.append(item)
        if non_empty and not out:
            raise SpecError(f"{self.path(key)} must not be empty")
        return out

    # ------------------------------------------------------------------ #
    @overload
    def subsection(self, key: str, *, required: Literal[True]) -> "Section": ...

    @overload
    def subsection(
        self, key: str, *, required: bool = ...
    ) -> Optional["Section"]: ...

    def subsection(self, key: str, *, required: bool = False) -> Optional["Section"]:
        """A nested table, or ``None`` when absent and not required."""
        value = self._take(key, None, required)
        if value is None:
            return None
        return Section(value, self.path(key))

    def sections(self, key: str, *, required: bool = False) -> list["Section"]:
        """An array of tables (``[[key]]`` in TOML); empty when absent."""
        value = self._take(key, None, required)
        if value is None:
            return []
        if isinstance(value, (str, Mapping)) or not isinstance(value, Sequence):
            raise SpecError(
                f"{self.path(key)} must be an array of tables "
                f"(use [[{key}]] in TOML), got {_type_name(value)}"
            )
        return [Section(item, f"{self.path(key)}[{i}]") for i, item in enumerate(value)]

    def finish(self) -> None:
        """Reject keys that no getter consumed (typos, unsupported options)."""
        unknown = sorted(set(self._data) - self._consumed)
        if unknown:
            expected = sorted(self._consumed)
            raise self.error(
                f"unknown key(s) {unknown}; expected keys are {expected}"
            )

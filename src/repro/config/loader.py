"""Load spec files (TOML or JSON) into validated :class:`ExperimentSpec` objects.

The file format is chosen by extension: ``.toml`` goes through the standard
library ``tomllib``, ``.json`` through ``json``.  Both produce the same
nested mappings, so a spec can be written in either language — the examples
under ``examples/specs/`` use TOML because inline comments make them
self-documenting.
"""

from __future__ import annotations

import json
import tomllib
from pathlib import Path
from typing import Union

from repro.config.schema import SpecError
from repro.config.spec import ExperimentSpec, parse_spec

__all__ = ["load_spec", "load_spec_data", "parse_spec_text"]


def _parse_data(text: str, *, format: str) -> dict:
    """The raw nested mapping of spec source text (pre-validation)."""
    if format == "toml":
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"invalid TOML: {exc}") from exc
    elif format == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise SpecError("a JSON spec must be an object at the top level")
        return data
    raise SpecError(f"unknown spec format {format!r}; use 'toml' or 'json'")


def parse_spec_text(text: str, *, format: str = "toml", name: str = "experiment") -> ExperimentSpec:
    """Parse spec source text (``format`` is ``"toml"`` or ``"json"``)."""
    return parse_spec(_parse_data(text, format=format), name=name)


def load_spec_data(path: Union[str, Path]) -> dict:
    """Load one spec file into its raw (unvalidated) nested mapping.

    The campaign journal embeds this mapping so ``repro campaign resume``
    is self-contained — it can rebuild the exact spec after a coordinator
    crash even if the original file moved.  ``load_spec`` is this plus
    :func:`~repro.config.spec.parse_spec` validation.
    """
    path = Path(path)
    if not path.exists():
        raise SpecError(f"spec file not found: {path}")
    suffix = path.suffix.lower()
    if suffix == ".toml":
        format = "toml"
    elif suffix == ".json":
        format = "json"
    else:
        raise SpecError(
            f"unsupported spec extension {suffix!r} for {path}; use .toml or .json"
        )
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError as exc:
        raise SpecError(f"{path}: not valid UTF-8 text ({exc})") from exc
    except OSError as exc:
        raise SpecError(f"{path}: cannot read spec file ({exc})") from exc
    try:
        return _parse_data(text, format=format)
    except SpecError as exc:
        raise SpecError(f"{path}: {exc}") from exc


def load_spec(path: Union[str, Path]) -> ExperimentSpec:
    """Load and validate one spec file.

    Raises :class:`~repro.config.schema.SpecError` when the file does not
    exist, has an unsupported extension, is not valid TOML/JSON, or fails
    schema validation — always with a message naming the file.
    """
    path = Path(path)
    if not path.exists():
        raise SpecError(f"spec file not found: {path}")
    suffix = path.suffix.lower()
    if suffix == ".toml":
        format = "toml"
    elif suffix == ".json":
        format = "json"
    else:
        raise SpecError(
            f"unsupported spec extension {suffix!r} for {path}; use .toml or .json"
        )
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError as exc:
        raise SpecError(f"{path}: not valid UTF-8 text ({exc})") from exc
    except OSError as exc:
        raise SpecError(f"{path}: cannot read spec file ({exc})") from exc
    try:
        return parse_spec_text(text, format=format, name=path.stem)
    except SpecError as exc:
        raise SpecError(f"{path}: {exc}") from exc

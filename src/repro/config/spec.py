"""Declarative experiment specs: the parsed, validated form of a spec file.

A spec fully determines a reproducible run: the platform, the application
scenarios (with every random draw pinned by seeds), the scheduler list, the
truncation horizon and the output destination.  ``docs/scenarios.md``
documents every key with worked examples; the short version is::

    [experiment]
    kind = "grid"              # grid | figure6 | congested-moments | vesta
                               #   | periodic | analysis
    seed = 42
    max_time = 2000.0          # optional truncation horizon (seconds)

    [platform]
    preset = "intrepid"

    [[scenarios]]
    kind = "mix"               # mix | figure6 | congested | ior | apps
    small = 20
    large = 3
    io_ratio = 0.2

    [schedulers]
    names = ["FairShare", "MaxSysEff", "MinDilation"]

Determinism contract (asserted by ``tests/test_config_spec.py``): for a
``grid`` experiment with entries ``e_0 .. e_{n-1}``,

* every entry gets one child generator from
  ``spawn_rngs(experiment.seed, n)``, in declaration order;
* an entry with ``repetitions = R`` builds its scenarios from
  ``spawn_rngs(entry.seed, R)`` when the entry pins its own ``seed``
  (any value >= 0, including 0), else from ``spawn_rngs(child_i, R)`` —
  so inserting or reordering entries never perturbs a pinned entry.

A spec-driven grid is therefore cell-for-cell identical to the equivalent
hand-built :func:`repro.experiments.runner.run_grid` call.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional, Union

from repro.analysis.sensitivity import FIGURE7_SCHEDULERS
from repro.config.schema import Section, SpecError
from repro.core.platform import vesta as vesta_platform
from repro.experiments.comparison import (
    FIGURE6_SCENARIOS,
    FIGURE6_SCHEDULERS,
    TABLE_SCHEDULERS,
)
from repro.experiments.runner import DEFAULT_ENGINE, ENGINES
from repro.experiments.vesta import VESTA_CONFIGURATIONS
from repro.online.registry import make_scheduler
from repro.periodic.heuristics import InsertInScheduleCong, InsertInScheduleThrou
from repro.workload.ior import VESTA_SCENARIOS, parse_scenario

__all__ = [
    "SpecError",
    "check_scheduler_name",
    "EXPERIMENT_KINDS",
    "SCENARIO_KINDS",
    "PERIODIC_HEURISTICS",
    "ANALYSIS_FIGURES",
    "PlatformSpec",
    "BurstBufferTable",
    "AppSpec",
    "ScenarioEntry",
    "SchedulerCaseSpec",
    "OutputSpec",
    "FaultWindowSpec",
    "CrashSpec",
    "RandomWindowsSpec",
    "RandomCrashesSpec",
    "FaultsSpec",
    "GridSpec",
    "Figure6Spec",
    "CongestedMomentsSpec",
    "VestaSpec",
    "PeriodicSpec",
    "Figure1Spec",
    "Figure5Spec",
    "Figure7Spec",
    "AnalysisSpec",
    "ExperimentSpec",
    "parse_spec",
]

#: Experiment kinds understood by ``repro run``.
EXPERIMENT_KINDS: tuple[str, ...] = (
    "grid",
    "figure6",
    "congested-moments",
    "vesta",
    "periodic",
    "analysis",
)

#: Section 3.2.3 heuristics accepted by ``[periodic].heuristics``: name ->
#: (heuristic class, period-sweep objective).  Single source of truth — the
#: parser validates against its keys and the runner instantiates from it,
#: so a new heuristic cannot pass ``repro validate`` yet crash ``repro run``.
PERIODIC_HEURISTIC_TABLE: dict[str, tuple[type[object], str]] = {
    "throughput": (InsertInScheduleThrou, "system_efficiency"),
    "congestion": (InsertInScheduleCong, "dilation"),
}

#: The accepted ``[periodic].heuristics`` names, in canonical order.
PERIODIC_HEURISTICS: tuple[str, ...] = tuple(PERIODIC_HEURISTIC_TABLE)

#: Figure studies accepted by ``[analysis].figures``, in the fixed seed-slot
#: order of the determinism contract.
ANALYSIS_FIGURES: tuple[str, ...] = ("figure1", "figure5", "figure7")

#: Scenario-entry kinds accepted inside a ``grid`` experiment.
SCENARIO_KINDS: tuple[str, ...] = ("mix", "figure6", "congested", "ior", "apps")

_PLATFORM_PRESETS: tuple[str, ...] = ("intrepid", "mira", "vesta", "generic")


# ---------------------------------------------------------------------- #
# Platform
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class BurstBufferTable:
    """Explicit burst-buffer description for ``generic`` platforms.

    All three attributes are in the paper's units: ``capacity`` in bytes,
    the two bandwidths in bytes/s.
    """

    capacity: float
    ingest_bandwidth: float
    drain_bandwidth: float


@dataclass(frozen=True)
class PlatformSpec:
    """Declarative platform description.

    Either a named preset (``intrepid`` / ``mira`` / ``vesta`` — the
    machines of the paper's evaluation) or a fully ``generic`` platform with
    explicit ``processors`` / ``node_bandwidth`` (bytes/s) /
    ``system_bandwidth`` (bytes/s).  ``scale`` shrinks or grows the machine
    uniformly (see :meth:`repro.core.platform.Platform.scaled`), which is
    how truncated-depth specs keep full-machine physics at laptop cost.
    """

    preset: str = "intrepid"
    processors: Optional[int] = None
    node_bandwidth: Optional[float] = None
    system_bandwidth: Optional[float] = None
    name: Optional[str] = None
    scale: Optional[float] = None
    burst_buffer: Optional[BurstBufferTable] = None


def _parse_burst_buffer(section: Optional[Section]) -> Optional[BurstBufferTable]:
    if section is None:
        return None
    table = BurstBufferTable(
        capacity=section.get_float("capacity", required=True, positive=True),
        ingest_bandwidth=section.get_float(
            "ingest_bandwidth", required=True, positive=True
        ),
        drain_bandwidth=section.get_float(
            "drain_bandwidth", required=True, positive=True
        ),
    )
    section.finish()
    return table


def _parse_platform(section: Optional[Section]) -> Optional[PlatformSpec]:
    if section is None:
        return None
    # Without an explicit preset, the table means "the default machine
    # (Intrepid), tweaked" — unless it carries explicit sizes, which only a
    # generic platform accepts.  A scale-only table must not demand generic
    # keys.
    has_sizes = any(
        section.has_value(k)
        for k in ("processors", "node_bandwidth", "system_bandwidth")
    )
    preset = section.get_str(
        "preset",
        "generic" if has_sizes else "intrepid",
        choices=_PLATFORM_PRESETS,
    )
    spec = PlatformSpec(
        preset=preset,
        processors=section.get_int("processors", minimum=1),
        node_bandwidth=section.get_float("node_bandwidth", positive=True),
        system_bandwidth=section.get_float("system_bandwidth", positive=True),
        name=section.get_str("name"),
        scale=section.get_float("scale", positive=True),
        burst_buffer=_parse_burst_buffer(section.subsection("burst_buffer")),
    )
    if preset == "generic":
        for key in ("processors", "node_bandwidth", "system_bandwidth"):
            if getattr(spec, key) is None:
                raise SpecError(
                    f"{section.path(key)} is required for a 'generic' platform"
                )
    else:
        for key in ("processors", "node_bandwidth", "system_bandwidth"):
            if getattr(spec, key) is not None:
                raise SpecError(
                    f"{section.path(key)} cannot be combined with "
                    f"preset {preset!r}; use preset = 'generic' for custom sizes"
                )
    section.finish()
    return spec


# ---------------------------------------------------------------------- #
# Scenario entries (grid experiments)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class AppSpec:
    """One explicitly described periodic application (``kind = "apps"``).

    ``work`` is seconds of compute per instance; ``io_volume`` is bytes
    written per instance; ``release`` is the release time in seconds
    (staggered releases are a scenario shape the paper never explores).
    """

    name: str
    processors: int
    work: float
    io_volume: float
    instances: int = 1
    release: float = 0.0


@dataclass(frozen=True)
class ScenarioEntry:
    """One ``[[scenarios]]`` entry of a grid experiment.

    The ``kind`` selects the generator; only the fields relevant to that
    kind are set (the parser rejects the rest).  ``repetitions`` replicates
    the entry with independent random streams; ``seed`` pins the entry's
    randomness independently of its position in the spec.
    """

    kind: str
    label: Optional[str] = None
    seed: Optional[int] = None
    repetitions: int = 1
    platform: Optional[PlatformSpec] = None
    # kind == "mix" / "congested"
    small: int = 0
    large: int = 0
    very_large: int = 0
    io_ratio: float = 0.2
    fit_to_platform: bool = True
    # kind == "congested"
    congestion_factor: float = 1.5
    # kind == "figure6"
    panel: Optional[str] = None
    # kind == "ior"
    mix: Optional[str] = None
    iterations: Optional[int] = None
    compute_time: Optional[float] = None
    write_per_node: Optional[float] = None
    jitter: float = 0.0
    # kind == "apps"
    apps: tuple[AppSpec, ...] = ()


def _parse_app(section: Section) -> AppSpec:
    app = AppSpec(
        name=section.get_str("name", required=True),
        processors=section.get_int("processors", required=True, minimum=1),
        work=section.get_float("work", required=True, minimum=0.0),
        io_volume=section.get_float("io_volume", required=True, minimum=0.0),
        instances=section.get_int("instances", 1, minimum=1),
        release=section.get_float("release", 0.0, minimum=0.0),
    )
    section.finish()
    return app


def _parse_scenario_entry(section: Section) -> ScenarioEntry:
    kind = section.get_str("kind", required=True, choices=SCENARIO_KINDS)
    entry = ScenarioEntry(
        kind=kind,
        label=section.get_str("label"),
        seed=section.get_int("seed", minimum=0),
        repetitions=section.get_int("repetitions", 1, minimum=1),
        platform=_parse_platform(section.subsection("platform")),
    )
    if kind in ("mix", "congested"):
        entry = replace(
            entry,
            small=section.get_int("small", 0, minimum=0),
            large=section.get_int("large", 0, minimum=0),
            very_large=section.get_int("very_large", 0, minimum=0),
            io_ratio=section.get_float("io_ratio", 0.2, minimum=0.0, maximum=10.0),
        )
        if entry.small + entry.large + entry.very_large <= 0:
            raise section.error(
                "a mix needs at least one application: set small, large "
                "and/or very_large"
            )
        if kind == "mix":
            entry = replace(
                entry,
                fit_to_platform=section.get_bool("fit_to_platform", True),
            )
        else:
            entry = replace(
                entry,
                congestion_factor=section.get_float(
                    "congestion_factor", 1.5, positive=True
                ),
            )
    elif kind == "figure6":
        entry = replace(
            entry,
            panel=section.get_str("panel", required=True, choices=FIGURE6_SCENARIOS),
        )
    elif kind == "ior":
        mix = section.get_str("mix", required=True)
        try:
            parse_scenario(mix)
        except Exception as exc:
            raise SpecError(f"{section.path('mix')}: {exc}") from exc
        entry = replace(
            entry,
            mix=mix,
            iterations=section.get_int("iterations", minimum=1),
            compute_time=section.get_float("compute_time", positive=True),
            write_per_node=section.get_float("write_per_node", positive=True),
            jitter=section.get_float("jitter", 0.0, minimum=0.0, maximum=0.9),
        )
    elif kind == "apps":
        app_sections = section.sections("apps", required=True)
        if not app_sections:
            raise section.error("kind 'apps' needs at least one [[scenarios.apps]]")
        entry = replace(entry, apps=tuple(_parse_app(s) for s in app_sections))
    section.finish()
    return entry


# ---------------------------------------------------------------------- #
# Schedulers / output
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SchedulerCaseSpec:
    """One scheduler column of the grid.

    ``name`` is resolved through :func:`repro.online.registry.make_scheduler`
    (validated at parse time so a typo fails before anything runs).  With
    ``burst_buffer = true`` the case runs on the platform's burst-buffer
    configuration, which must exist.
    """

    name: str
    burst_buffer: bool = False
    label: Optional[str] = None


def check_scheduler_name(name: str, where: str) -> str:
    """Resolve ``name`` through the scheduler registry, or raise SpecError.

    ``where`` names the spec path (or CLI flag) carried by the error.
    KeyError means an unknown name (the registry message lists the valid
    ones); ValueError/ValidationError means a recognized pattern with bad
    parameters, e.g. ``MinMax-1.5`` (gamma must be <= 1).
    """
    try:
        make_scheduler(name)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        raise SpecError(f"{where}: {message}") from exc
    return name


def _parse_schedulers(section: Optional[Section], where: str) -> tuple[SchedulerCaseSpec, ...]:
    if section is None:
        raise SpecError(
            f"missing required table {where!r} (set {where}.names = [...] "
            "or add [[" + where + ".cases]] entries)"
        )
    cases: list[SchedulerCaseSpec] = []
    names = section.get_str_list("names", [])
    for i, name in enumerate(names):
        check_scheduler_name(name, f"{section.path('names')}[{i}]")
        cases.append(SchedulerCaseSpec(name=name))
    for case_section in section.sections("cases"):
        name = case_section.get_str("name", required=True)
        check_scheduler_name(name, case_section.path("name"))
        cases.append(
            SchedulerCaseSpec(
                name=name,
                burst_buffer=case_section.get_bool("burst_buffer", False),
                label=case_section.get_str("label"),
            )
        )
        case_section.finish()
    if not cases:
        raise section.error("at least one scheduler is required")
    section.finish()
    return tuple(cases)


@dataclass(frozen=True)
class OutputSpec:
    """Where and how to dump results (overridable from the CLI).

    ``format`` is ``"json"``, ``"csv"``, or ``None`` — meaning "infer from
    the path suffix" (``.csv`` selects CSV, anything else JSON).
    """

    path: str
    format: Optional[str] = None


def _parse_output(section: Optional[Section]) -> Optional[OutputSpec]:
    if section is None:
        return None
    path = section.get_str("path", required=True)
    if not path.strip():
        raise SpecError(f"{section.path('path')} must be a non-empty file path")
    out = OutputSpec(
        path=path,
        format=section.get_str("format", choices=("json", "csv")),
    )
    section.finish()
    return out


# ---------------------------------------------------------------------- #
# Fault injection ([faults] table, grid experiments only)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultWindowSpec:
    """One deterministic PFS degradation window (``[[faults.windows]]``).

    ``factor`` scales the aggregate PFS bandwidth over ``[start, end)``;
    0 is a full blackout.  ``end = None`` means the window never lifts.
    """

    start: float
    factor: float
    end: Optional[float] = None


@dataclass(frozen=True)
class CrashSpec:
    """One deterministic crash event (``[[faults.crashes]]``).

    ``app`` must name an application of every scenario the grid builds
    (checked at build time); ``checkpoint_io`` is the bytes of checkpoint
    re-read charged before the lost instance restarts.
    """

    app: str
    time: float
    checkpoint_io: float


@dataclass(frozen=True)
class RandomWindowsSpec:
    """Poisson brown-out process (``[faults.random_windows]``).

    Window starts arrive with exponential inter-arrival times of mean
    ``1 / rate`` seconds; each window lasts ``duration`` seconds at
    ``factor`` of nominal bandwidth.  Realized per scenario at build time
    from the fault seed, never inside the engines.
    """

    rate: float
    duration: float
    factor: float


@dataclass(frozen=True)
class RandomCrashesSpec:
    """Poisson crash process (``[faults.random_crashes]``).

    Each application draws its own exponential inter-arrival stream of mean
    ``1 / rate`` seconds; every crash charges ``checkpoint_io`` bytes of
    recovery I/O.
    """

    rate: float
    checkpoint_io: float


@dataclass(frozen=True)
class FaultsSpec:
    """The ``[faults]`` table: fault injection for a grid experiment.

    ``seed`` pins the stochastic processes independently of the experiment
    seed (default: the experiment seed).  With ``baseline = true`` (the
    default) every scenario also runs healthy, so resilience metrics can
    report throughput retained versus the fault-free twin.
    """

    seed: Optional[int] = None
    baseline: bool = True
    windows: tuple[FaultWindowSpec, ...] = ()
    crashes: tuple[CrashSpec, ...] = ()
    random_windows: Optional[RandomWindowsSpec] = None
    random_crashes: Optional[RandomCrashesSpec] = None

    @property
    def is_stochastic(self) -> bool:
        """True when any fault source needs random draws (and a horizon)."""
        return self.random_windows is not None or self.random_crashes is not None


def _parse_fault_factor(section: Section) -> float:
    factor = section.get_float("factor", required=True, minimum=0.0, maximum=1.0)
    if factor >= 1.0:
        raise SpecError(
            f"{section.path('factor')} must be < 1 (a factor of 1 is a "
            "healthy platform; use 0 for a full blackout)"
        )
    return factor


def _parse_faults(section: Optional[Section]) -> Optional[FaultsSpec]:
    if section is None:
        return None
    windows: list[FaultWindowSpec] = []
    for w in section.sections("windows"):
        start = w.get_float("start", required=True, minimum=0.0)
        end = w.get_float("end", positive=True)
        factor = _parse_fault_factor(w)
        if end is not None and end <= start:
            raise SpecError(
                f"{w.path('end')} must be > start ({start:g}), got {end:g}"
            )
        windows.append(FaultWindowSpec(start=start, factor=factor, end=end))
        w.finish()
    crashes: list[CrashSpec] = []
    for c in section.sections("crashes"):
        crashes.append(
            CrashSpec(
                app=c.get_str("app", required=True),
                time=c.get_float("time", required=True, minimum=0.0),
                checkpoint_io=c.get_float("checkpoint_io", required=True, minimum=0.0),
            )
        )
        c.finish()
    random_windows: Optional[RandomWindowsSpec] = None
    rw = section.subsection("random_windows")
    if rw is not None:
        random_windows = RandomWindowsSpec(
            rate=rw.get_float("rate", required=True, positive=True),
            duration=rw.get_float("duration", required=True, positive=True),
            factor=_parse_fault_factor(rw),
        )
        rw.finish()
    random_crashes: Optional[RandomCrashesSpec] = None
    rc = section.subsection("random_crashes")
    if rc is not None:
        random_crashes = RandomCrashesSpec(
            rate=rc.get_float("rate", required=True, positive=True),
            checkpoint_io=rc.get_float("checkpoint_io", required=True, minimum=0.0),
        )
        rc.finish()
    spec = FaultsSpec(
        seed=section.get_int("seed", minimum=0),
        baseline=section.get_bool("baseline", True),
        windows=tuple(windows),
        crashes=tuple(crashes),
        random_windows=random_windows,
        random_crashes=random_crashes,
    )
    if not (spec.windows or spec.crashes or spec.is_stochastic):
        raise section.error(
            "a [faults] table needs at least one fault source: "
            "[[faults.windows]], [[faults.crashes]], [faults.random_windows] "
            "or [faults.random_crashes]"
        )
    section.finish()
    return spec


# ---------------------------------------------------------------------- #
# Experiment bodies
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class GridSpec:
    """Body of a ``grid`` experiment: scenarios × scheduler cases."""

    platform: PlatformSpec
    scenarios: tuple[ScenarioEntry, ...]
    cases: tuple[SchedulerCaseSpec, ...]
    faults: Optional[FaultsSpec] = None


@dataclass(frozen=True)
class Figure6Spec:
    """Body of a ``figure6`` experiment (one or more panels)."""

    panels: tuple[str, ...]
    n_repetitions: int = 20
    schedulers: tuple[str, ...] = FIGURE6_SCHEDULERS
    platform: Optional[PlatformSpec] = None


@dataclass(frozen=True)
class CongestedMomentsSpec:
    """Body of a ``congested-moments`` experiment (Tables 1–2 campaigns)."""

    machine: str = "intrepid"
    n_moments: Optional[int] = None
    schedulers: tuple[str, ...] = TABLE_SCHEDULERS
    priority_only: bool = False


@dataclass(frozen=True)
class VestaSpec:
    """Body of a ``vesta`` experiment (the Figure 15 grid)."""

    scenarios: tuple[str, ...] = VESTA_SCENARIOS
    configurations: tuple[str, ...] = VESTA_CONFIGURATIONS


@dataclass(frozen=True)
class PeriodicSpec:
    """Body of a ``periodic`` experiment (Section 3.2).

    The application set comes either from explicit ``[[periodic.apps]]``
    tables or from a generated category mix (``small`` / ``large`` /
    ``very_large`` / ``io_ratio`` — the Figure 6 generator, seeded by the
    experiment seed).  Each selected heuristic runs the ``(1 + epsilon)``
    period sweep of :func:`repro.periodic.period_search.search_period` for
    its natural objective; ``online`` lists the online schedulers the same
    applications are simulated under for the steady-state-vs-online
    comparison (empty list: periodic only).
    """

    heuristics: tuple[str, ...] = PERIODIC_HEURISTICS
    online: tuple[str, ...] = ("MaxSysEff", "MinDilation")
    epsilon: float = 0.1
    max_period: Optional[float] = None
    max_period_factor: float = 10.0
    platform: Optional[PlatformSpec] = None
    apps: tuple[AppSpec, ...] = ()
    small: int = 0
    large: int = 0
    very_large: int = 0
    io_ratio: float = 0.2
    fit_to_platform: bool = True


@dataclass(frozen=True)
class Figure1Spec:
    """``[analysis.figure1]`` — the throughput-decrease replay."""

    n_applications: int = 400
    applications_per_batch: int = 6
    io_ratio: float = 0.15
    release_spread: float = 2.0
    bin_width: float = 10.0


@dataclass(frozen=True)
class Figure5Spec:
    """``[analysis.figure5]`` — the synthetic-Darshan characterization."""

    n_jobs: int = 400
    duration_days: float = 365.0
    coverage: float = 0.5


@dataclass(frozen=True)
class Figure7Spec:
    """``[analysis.figure7]`` — the sensibility (periodicity) sweep."""

    sensibilities: tuple[float, ...] = (0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0)
    schedulers: tuple[str, ...] = FIGURE7_SCHEDULERS
    scenario: str = "10large-20"
    n_repetitions: int = 5
    perturb_io: bool = False


@dataclass(frozen=True)
class AnalysisSpec:
    """Body of an ``analysis`` experiment (Figures 1, 5 and 7).

    ``figures`` selects which studies run; each study's random stream comes
    from a *fixed* slot of ``spawn_rngs(experiment.seed, 3)`` (figure1 = 0,
    figure5 = 1, figure7 = 2), so deselecting one figure never perturbs the
    others' results.
    """

    figures: tuple[str, ...] = ANALYSIS_FIGURES
    platform: Optional[PlatformSpec] = None
    figure1: Figure1Spec = Figure1Spec()
    figure5: Figure5Spec = Figure5Spec()
    figure7: Figure7Spec = Figure7Spec()


ExperimentBody = Union[
    GridSpec,
    Figure6Spec,
    CongestedMomentsSpec,
    VestaSpec,
    PeriodicSpec,
    AnalysisSpec,
]


@dataclass(frozen=True)
class ExperimentSpec:
    """A fully parsed experiment: common knobs plus a kind-specific body."""

    name: str
    kind: str
    body: ExperimentBody
    seed: int = 0
    workers: Optional[int] = None
    max_time: float = float("inf")
    output: Optional[OutputSpec] = None
    #: Simulation kernel every simulated cell of the spec runs on.  Both
    #: engines are pinned bit-identical, so this is purely a speed knob.
    engine: str = DEFAULT_ENGINE

    def with_overrides(
        self,
        *,
        seed: Optional[int] = None,
        workers: Optional[int] = None,
        max_time: Optional[float] = None,
        output: Optional[OutputSpec] = None,
        engine: Optional[str] = None,
    ) -> "ExperimentSpec":
        """Copy with CLI-level overrides applied (``None`` keeps the spec value).

        Overrides bypass :func:`parse_spec`, so its bounds are re-enforced
        here (raising :class:`SpecError`) — a ``--seed -1`` must fail the
        same way for every caller, not surface as a deep numpy error.
        """
        spec = self
        if seed is not None:
            if seed < 0:
                raise SpecError(f"seed must be >= 0, got {seed}")
            spec = replace(spec, seed=seed)
        if workers is not None:
            if workers < 0:
                raise SpecError(f"workers must be >= 0, got {workers}")
            spec = replace(spec, workers=workers)
        if max_time is not None:
            if max_time != max_time or max_time <= 0:
                raise SpecError(f"max_time must be > 0, got {max_time}")
            spec = replace(spec, max_time=max_time)
        if output is not None:
            spec = replace(spec, output=output)
        if engine is not None:
            if engine not in ENGINES:
                raise SpecError(
                    f"engine must be one of {sorted(ENGINES)}, got {engine!r}"
                )
            spec = replace(spec, engine=engine)
        return spec


# ---------------------------------------------------------------------- #
def _parse_grid_body(root: Section) -> GridSpec:
    platform = _parse_platform(root.subsection("platform")) or PlatformSpec(
        preset="intrepid"
    )
    scenario_sections = root.sections("scenarios", required=True)
    if not scenario_sections:
        raise SpecError(
            "a grid experiment needs at least one [[scenarios]] entry"
        )
    scenarios = tuple(_parse_scenario_entry(s) for s in scenario_sections)
    cases = _parse_schedulers(root.subsection("schedulers"), "schedulers")
    faults = _parse_faults(root.subsection("faults"))
    return GridSpec(platform=platform, scenarios=scenarios, cases=cases, faults=faults)


def _parse_figure6_body(root: Section) -> Figure6Spec:
    section = root.subsection("figure6") or Section({}, "figure6")
    panels = tuple(
        section.get_str_list("panels", list(FIGURE6_SCENARIOS), non_empty=True,
                             unique=True)
    )
    for i, panel in enumerate(panels):
        if panel not in FIGURE6_SCENARIOS:
            raise SpecError(
                f"{section.path('panels')}[{i}] must be one of "
                f"{sorted(FIGURE6_SCENARIOS)}, got {panel!r}"
            )
    schedulers = tuple(
        section.get_str_list("schedulers", list(FIGURE6_SCHEDULERS),
                             non_empty=True, unique=True)
    )
    for i, name in enumerate(schedulers):
        check_scheduler_name(name, f"{section.path('schedulers')}[{i}]")
    spec = Figure6Spec(
        panels=panels,
        n_repetitions=section.get_int("n_repetitions", 20, minimum=1),
        schedulers=schedulers,
        platform=_parse_platform(section.subsection("platform")),
    )
    section.finish()
    return spec


def _parse_congested_body(root: Section) -> CongestedMomentsSpec:
    section = root.subsection("congested_moments") or Section({}, "congested_moments")
    schedulers = tuple(
        section.get_str_list("schedulers", list(TABLE_SCHEDULERS),
                             non_empty=True, unique=True)
    )
    for i, name in enumerate(schedulers):
        check_scheduler_name(name, f"{section.path('schedulers')}[{i}]")
    spec = CongestedMomentsSpec(
        machine=section.get_str("machine", "intrepid", choices=("intrepid", "mira")),
        n_moments=section.get_int("n_moments", minimum=1),
        schedulers=schedulers,
        priority_only=section.get_bool("priority_only", False),
    )
    section.finish()
    return spec


def _parse_vesta_body(root: Section) -> VestaSpec:
    section = root.subsection("vesta") or Section({}, "vesta")
    scenarios = tuple(
        section.get_str_list("scenarios", list(VESTA_SCENARIOS), non_empty=True,
                             unique=True)
    )
    vesta_nodes = vesta_platform().total_processors
    for i, mix in enumerate(scenarios):
        try:
            counts = parse_scenario(mix)
        except Exception as exc:
            raise SpecError(f"{section.path('scenarios')}[{i}]: {exc}") from exc
        if sum(counts) > vesta_nodes:
            # The vesta experiment always runs on the Vesta machine; catch
            # oversized mixes here so `repro validate` means "will run".
            raise SpecError(
                f"{section.path('scenarios')}[{i}]: mix {mix!r} needs "
                f"{sum(counts)} nodes but Vesta has only {vesta_nodes}"
            )
    configurations = tuple(
        section.get_str_list(
            "configurations", list(VESTA_CONFIGURATIONS), non_empty=True,
            unique=True,
        )
    )
    for i, conf in enumerate(configurations):
        if conf not in VESTA_CONFIGURATIONS:
            raise SpecError(
                f"{section.path('configurations')}[{i}] must be one of "
                f"{sorted(VESTA_CONFIGURATIONS)}, got {conf!r}"
            )
    spec = VestaSpec(scenarios=scenarios, configurations=configurations)
    section.finish()
    return spec


def _parse_periodic_body(root: Section) -> PeriodicSpec:
    section = root.subsection("periodic", required=True)
    heuristics = tuple(
        section.get_str_list(
            "heuristics", list(PERIODIC_HEURISTICS), non_empty=True, unique=True
        )
    )
    for i, name in enumerate(heuristics):
        if name not in PERIODIC_HEURISTICS:
            raise SpecError(
                f"{section.path('heuristics')}[{i}] must be one of "
                f"{sorted(PERIODIC_HEURISTICS)}, got {name!r}"
            )
    online = tuple(
        section.get_str_list("online", ["MaxSysEff", "MinDilation"], unique=True)
    )
    for i, name in enumerate(online):
        check_scheduler_name(name, f"{section.path('online')}[{i}]")

    app_sections = section.sections("apps")
    apps = tuple(_parse_app(s) for s in app_sections)
    for i, app in enumerate(apps):
        if app.release != 0.0:
            raise SpecError(
                f"{section.path('apps')}[{i}].release must be 0 for a "
                "periodic experiment: a steady-state schedule has no "
                "release times"
            )
        if any(other.name == app.name for other in apps[:i]):
            raise SpecError(
                f"{section.path('apps')}[{i}].name duplicates {app.name!r}; "
                "periodic schedules need distinct application names"
            )
    spec = PeriodicSpec(
        heuristics=heuristics,
        online=online,
        epsilon=section.get_float("epsilon", 0.1, positive=True),
        max_period=section.get_float("max_period", positive=True),
        max_period_factor=section.get_float(
            "max_period_factor", 10.0, minimum=1.0
        ),
        platform=_parse_platform(section.subsection("platform")),
        apps=apps,
        small=section.get_int("small", 0, minimum=0),
        large=section.get_int("large", 0, minimum=0),
        very_large=section.get_int("very_large", 0, minimum=0),
        io_ratio=section.get_float("io_ratio", 0.2, minimum=0.0, maximum=10.0),
        fit_to_platform=section.get_bool("fit_to_platform", True),
    )
    n_mix = spec.small + spec.large + spec.very_large
    if apps and n_mix > 0:
        raise section.error(
            "give either explicit [[periodic.apps]] tables or a generated "
            "mix (small/large/very_large), not both"
        )
    if not apps and n_mix <= 0:
        raise section.error(
            "a periodic experiment needs applications: add [[periodic.apps]] "
            "tables or set small/large/very_large counts"
        )
    section.finish()
    return spec


def _parse_analysis_body(root: Section) -> AnalysisSpec:
    section = root.subsection("analysis") or Section({}, "analysis")
    figures = tuple(
        section.get_str_list(
            "figures", list(ANALYSIS_FIGURES), non_empty=True, unique=True
        )
    )
    for i, figure in enumerate(figures):
        if figure not in ANALYSIS_FIGURES:
            raise SpecError(
                f"{section.path('figures')}[{i}] must be one of "
                f"{sorted(ANALYSIS_FIGURES)}, got {figure!r}"
            )

    fig1_section = section.subsection("figure1")
    figure1 = Figure1Spec()
    if fig1_section is not None:
        figure1 = Figure1Spec(
            n_applications=fig1_section.get_int("n_applications", 400, minimum=1),
            applications_per_batch=fig1_section.get_int(
                "applications_per_batch", 6, minimum=2
            ),
            io_ratio=fig1_section.get_float(
                "io_ratio", 0.15, minimum=0.0, maximum=10.0
            ),
            release_spread=fig1_section.get_float(
                "release_spread", 2.0, minimum=0.0
            ),
            bin_width=fig1_section.get_float("bin_width", 10.0, positive=True),
        )
        fig1_section.finish()

    fig5_section = section.subsection("figure5")
    figure5 = Figure5Spec()
    if fig5_section is not None:
        figure5 = Figure5Spec(
            n_jobs=fig5_section.get_int("n_jobs", 400, minimum=1),
            duration_days=fig5_section.get_float(
                "duration_days", 365.0, positive=True
            ),
            coverage=fig5_section.get_float(
                "coverage", 0.5, minimum=0.0, maximum=1.0
            ),
        )
        fig5_section.finish()

    fig7_section = section.subsection("figure7")
    figure7 = Figure7Spec()
    if fig7_section is not None:
        schedulers = tuple(
            fig7_section.get_str_list(
                "schedulers", list(FIGURE7_SCHEDULERS), non_empty=True,
                unique=True,
            )
        )
        for i, name in enumerate(schedulers):
            check_scheduler_name(name, f"{fig7_section.path('schedulers')}[{i}]")
        figure7 = Figure7Spec(
            sensibilities=tuple(
                fig7_section.get_float_list(
                    "sensibilities",
                    list(Figure7Spec().sensibilities),
                    non_empty=True,
                    unique=True,
                    minimum=0.0,
                    maximum=99.0,
                )
            ),
            schedulers=schedulers,
            scenario=fig7_section.get_str(
                "scenario", "10large-20", choices=FIGURE6_SCENARIOS
            ),
            n_repetitions=fig7_section.get_int("n_repetitions", 5, minimum=1),
            perturb_io=fig7_section.get_bool("perturb_io", False),
        )
        fig7_section.finish()

    spec = AnalysisSpec(
        figures=figures,
        platform=_parse_platform(section.subsection("platform")),
        figure1=figure1,
        figure5=figure5,
        figure7=figure7,
    )
    section.finish()
    return spec


def parse_spec(data: Mapping[str, object], *, name: str = "experiment") -> ExperimentSpec:
    """Validate a raw spec mapping into an :class:`ExperimentSpec`.

    ``data`` is whatever ``tomllib.load`` / ``json.load`` produced (or a
    hand-built dict — the quickstart command builds one inline).  Raises
    :class:`SpecError` with the exact spec path on any malformed key.
    """
    root = Section(data, "")
    experiment = root.subsection("experiment", required=True)
    kind = experiment.get_str("kind", required=True, choices=EXPERIMENT_KINDS)
    spec_name = experiment.get_str("name", name)
    seed = experiment.get_int("seed", 0, minimum=0)
    workers = experiment.get_int("workers", minimum=0)
    max_time = experiment.get_float(
        "max_time", float("inf"), positive=True, allow_inf=True
    )
    engine = experiment.get_str("engine", DEFAULT_ENGINE, choices=ENGINES)
    if kind == "vesta" and max_time != float("inf"):
        # Vesta cells are overhead-scored on complete runs; truncating them
        # would produce misleading numbers (see repro.config.run).
        raise SpecError(
            "experiment.max_time is not supported for kind 'vesta' "
            "(cells are overhead-scored on complete runs)"
        )
    if kind == "periodic" and max_time != float("inf"):
        # A steady-state period has no horizon, so max_time could only
        # truncate the online half — the comparison table would silently
        # pit full periodic schedules against truncated online runs.
        raise SpecError(
            "experiment.max_time is not supported for kind 'periodic' "
            "(a steady-state schedule has no horizon; truncating only the "
            "online half would skew the periodic-vs-online comparison)"
        )
    experiment.finish()

    if kind != "grid" and root.has("faults"):
        raise SpecError(
            f"[faults] is only supported for kind 'grid', not {kind!r}"
        )

    body: ExperimentBody
    if kind == "grid":
        body = _parse_grid_body(root)
    elif kind == "figure6":
        body = _parse_figure6_body(root)
    elif kind == "congested-moments":
        body = _parse_congested_body(root)
    elif kind == "periodic":
        body = _parse_periodic_body(root)
    elif kind == "analysis":
        body = _parse_analysis_body(root)
    else:
        body = _parse_vesta_body(root)

    if kind == "grid":
        grid_body = body
        assert isinstance(grid_body, GridSpec)
        if (
            grid_body.faults is not None
            and grid_body.faults.is_stochastic
            and max_time == float("inf")
        ):
            raise SpecError(
                "stochastic fault processes ([faults.random_windows] / "
                "[faults.random_crashes]) need a finite experiment.max_time "
                "horizon to realize their events over"
            )

    output = _parse_output(root.subsection("output"))
    root.finish()
    return ExperimentSpec(
        name=spec_name,
        kind=kind,
        body=body,
        seed=seed,
        workers=workers,
        max_time=max_time,
        output=output,
        engine=engine,
    )

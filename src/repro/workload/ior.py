"""IOR-benchmark emulation for the Vesta experiments (Section 5).

For the real-machine validation, the authors modified the IOR benchmark:
its processes are split into groups running on disjoint node sets (one
group = one "application"), each group alternates a communication/compute
step with a collective write of a fixed volume, and one extra process acts
as the global scheduler, receiving an I/O request from every group before
each write and releasing groups according to the chosen heuristic.

We cannot run on Vesta, so this module provides the synthetic equivalent:

* :class:`IORGroup` — one group of the modified benchmark (node count,
  per-node write volume, number of iterations, compute time per iteration);
* :func:`parse_scenario` — parse the paper's scenario notation
  (``"512/256/256/32"`` = four applications on 512, 256, 256 and 32 nodes);
* :func:`ior_scenario` — turn a scenario string into a
  :class:`~repro.core.scenario.Scenario` on the Vesta platform, ready for
  the simulator;
* :data:`VESTA_SCENARIOS` — the eleven node mixes of Figures 14–15.

The scheduler-request overhead measured in Figure 14 is modelled separately
in :mod:`repro.experiments.overhead` so it can be switched on and off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.application import Application
from repro.core.platform import Platform, vesta
from repro.core.scenario import Scenario
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ValidationError, check_positive

__all__ = ["IORGroup", "parse_scenario", "ior_scenario", "VESTA_SCENARIOS"]

#: The node mixes evaluated on Vesta (horizontal axes of Figures 14 and 15).
VESTA_SCENARIOS: tuple[str, ...] = (
    "256",
    "512",
    "32/512",
    "256/256",
    "256/512",
    "256/256/256",
    "256/256/512",
    "512/256/32",
    "512/256/256/32",
    "256/256/256/256",
    "512/512/512/512",
)

#: Default IOR-like parameters: each iteration computes for a while and then
#: writes a fixed volume per node (checkpoint-style output).
DEFAULT_WRITE_PER_NODE = 4.0e9  # 4 GB per node per iteration
DEFAULT_COMPUTE_TIME = 120.0  # seconds of computation per iteration
DEFAULT_ITERATIONS = 8


@dataclass(frozen=True)
class IORGroup:
    """One group (application) of the modified IOR benchmark."""

    name: str
    nodes: int
    iterations: int = DEFAULT_ITERATIONS
    compute_time: float = DEFAULT_COMPUTE_TIME
    write_per_node: float = DEFAULT_WRITE_PER_NODE

    def __post_init__(self) -> None:
        if self.nodes <= 0 or int(self.nodes) != self.nodes:
            raise ValidationError("nodes must be a positive integer")
        if self.iterations <= 0 or int(self.iterations) != self.iterations:
            raise ValidationError("iterations must be a positive integer")
        check_positive("compute_time", self.compute_time)
        check_positive("write_per_node", self.write_per_node)

    def to_application(self) -> Application:
        """The group as a periodic application."""
        return Application.periodic(
            name=self.name,
            processors=self.nodes,
            work=self.compute_time,
            io_volume=self.write_per_node * self.nodes,
            n_instances=self.iterations,
            category="ior",
        )


def parse_scenario(scenario: str) -> list[int]:
    """Parse the paper's ``"x/y/z"`` node-mix notation into node counts."""
    if not scenario or not scenario.strip():
        raise ValidationError("empty IOR scenario string")
    counts: list[int] = []
    for part in scenario.split("/"):
        part = part.strip()
        if not part.isdigit():
            raise ValidationError(
                f"invalid IOR scenario {scenario!r}: {part!r} is not a node count"
            )
        value = int(part)
        if value <= 0:
            raise ValidationError(f"node counts must be positive, got {value}")
        counts.append(value)
    return counts


def ior_scenario(
    scenario: str,
    platform: Optional[Platform] = None,
    *,
    iterations: int = DEFAULT_ITERATIONS,
    compute_time: float = DEFAULT_COMPUTE_TIME,
    write_per_node: float = DEFAULT_WRITE_PER_NODE,
    jitter: float = 0.0,
    rng: RngLike = None,
) -> Scenario:
    """Build a Vesta scenario for one node mix.

    Parameters
    ----------
    scenario:
        Node-mix string, e.g. ``"512/256/256/32"``.
    platform:
        Defaults to :func:`repro.core.platform.vesta`.
    jitter:
        Optional relative jitter (uniform, ±``jitter``) applied to each
        group's compute time so that groups do not stay artificially phase-
        locked; the real benchmark exhibits the same drift because of
        network noise.
    """
    platform = platform or vesta()
    counts = parse_scenario(scenario)
    if sum(counts) > platform.total_processors:
        raise ValidationError(
            f"scenario {scenario!r} needs {sum(counts)} nodes but "
            f"{platform.name!r} has only {platform.total_processors}"
        )
    rng = as_rng(rng)
    apps: list[Application] = []
    for i, nodes in enumerate(counts):
        compute = compute_time
        if jitter > 0:
            compute = compute_time * float(rng.uniform(1.0 - jitter, 1.0 + jitter))
        group = IORGroup(
            name=f"ior-{i}-{nodes}n",
            nodes=nodes,
            iterations=iterations,
            compute_time=compute,
            write_per_node=write_per_node,
        )
        apps.append(group.to_application())
    return Scenario(
        platform=platform,
        applications=tuple(apps),
        label=scenario,
        metadata={"kind": "ior", "node_mix": counts},
    )

"""Workload substrates: synthetic Intrepid/Mira/Vesta application mixes.

The paper's evaluation is driven by three kinds of workloads, all available
here:

* **Random mixes** (Figure 6, Figure 7): :func:`~repro.workload.generator.generate_mix`
  and :func:`~repro.workload.generator.figure6_mix`, with
  :func:`~repro.workload.generator.apply_sensibility` for the quasi-periodic
  perturbation study.
* **Darshan-like traces** (Figure 5, and the raw material of the congested
  moments): :mod:`repro.workload.darshan` — synthetic records carrying the
  same fields the paper extracts from real Darshan logs.
* **Congested moments** (Tables 1–2, Figures 8–13):
  :func:`~repro.workload.congested.intrepid_congested_moments` and
  :func:`~repro.workload.congested.mira_congested_moments`.
* **IOR node mixes on Vesta** (Figures 14–16):
  :func:`~repro.workload.ior.ior_scenario` and
  :data:`~repro.workload.ior.VESTA_SCENARIOS`.
"""

from repro.workload.categories import (
    CATEGORY_PROFILES,
    Category,
    CategoryProfile,
    categorize,
)
from repro.workload.congested import (
    N_INTREPID_MOMENTS,
    N_MIRA_MOMENTS,
    CongestedMomentSpec,
    generate_congested_moment,
    intrepid_congested_moments,
    mira_congested_moments,
)
from repro.workload.darshan import (
    DarshanRecord,
    generate_records,
    load_records,
    record_to_application,
    replicate_uncovered,
    save_records,
)
from repro.workload.generator import (
    MixSpec,
    apply_sensibility,
    figure6_mix,
    generate_application,
    generate_mix,
)
from repro.workload.ior import VESTA_SCENARIOS, IORGroup, ior_scenario, parse_scenario

__all__ = [
    "Category",
    "CategoryProfile",
    "CATEGORY_PROFILES",
    "categorize",
    "MixSpec",
    "generate_application",
    "generate_mix",
    "figure6_mix",
    "apply_sensibility",
    "DarshanRecord",
    "generate_records",
    "save_records",
    "load_records",
    "record_to_application",
    "replicate_uncovered",
    "CongestedMomentSpec",
    "generate_congested_moment",
    "intrepid_congested_moments",
    "mira_congested_moments",
    "N_INTREPID_MOMENTS",
    "N_MIRA_MOMENTS",
    "IORGroup",
    "parse_scenario",
    "ior_scenario",
    "VESTA_SCENARIOS",
]

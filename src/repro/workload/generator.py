"""Synthetic application and scenario generators (Section 4.1 / 4.2).

The simulations of Section 4.2 are driven by randomly generated application
mixes "with similar properties to real applications that ran on the Intrepid
system".  Two mix shapes cover over 95% of what ran on Intrepid:

* a few large / very large applications owning the whole machine
  (Figure 6a: 10 large applications);
* many small applications plus a few large ones dividing the machine
  unevenly (Figure 6b/6c: 50 small and 5 large applications).

:func:`generate_mix` builds those mixes; the I/O pressure is controlled by
``io_ratio`` — the average ratio of dedicated-mode I/O time to compute time
(the paper uses 20% and 35%).  :func:`apply_sensibility` perturbs a periodic
application into a quasi-periodic one for the Figure 7 study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.application import Application
from repro.core.platform import Platform
from repro.core.scenario import Scenario
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ValidationError, check_in_range
from repro.workload.categories import CATEGORY_PROFILES, Category

__all__ = [
    "MixSpec",
    "generate_application",
    "generate_mix",
    "figure6_mix",
    "apply_sensibility",
]


@dataclass(frozen=True)
class MixSpec:
    """How many applications of each category a generated scenario contains."""

    n_small: int = 0
    n_large: int = 0
    n_very_large: int = 0

    def __post_init__(self) -> None:
        for field_name in ("n_small", "n_large", "n_very_large"):
            value = getattr(self, field_name)
            if value < 0 or int(value) != value:
                raise ValidationError(f"{field_name} must be a non-negative integer")
        if self.total == 0:
            raise ValidationError("a mix needs at least one application")

    @property
    def total(self) -> int:
        """Total number of applications."""
        return self.n_small + self.n_large + self.n_very_large

    def counts(self) -> dict[Category, int]:
        """Mapping category -> count."""
        return {
            Category.SMALL: self.n_small,
            Category.LARGE: self.n_large,
            Category.VERY_LARGE: self.n_very_large,
        }


def generate_application(
    name: str,
    category: Category,
    platform: Platform,
    io_ratio: float,
    rng: RngLike = None,
    *,
    processors: Optional[int] = None,
    n_instances: Optional[int] = None,
) -> Application:
    """Generate one periodic application of the given category.

    Parameters
    ----------
    io_ratio:
        Target ratio of dedicated-mode I/O time to compute time
        (``time_io / w``).  The actual ratio of each application is jittered
        by ±30% around the target so a mix is not perfectly homogeneous.
    processors, n_instances:
        Override the category defaults (used by the Vesta/IOR scenarios that
        prescribe exact node counts).
    """
    check_in_range("io_ratio", io_ratio, 0.0, 10.0)
    rng = as_rng(rng)
    profile = CATEGORY_PROFILES[category]
    if processors is None:
        processors = int(rng.choice(profile.typical_nodes))
    processors = min(processors, platform.total_processors)
    if n_instances is None:
        lo, hi = profile.instance_range
        n_instances = int(rng.integers(lo, hi + 1))
    work = float(rng.uniform(*profile.work_range))
    ratio = io_ratio * float(rng.uniform(0.7, 1.3))
    peak = platform.peak_application_bandwidth(processors)
    io_volume = ratio * work * peak
    return Application.periodic(
        name=name,
        processors=processors,
        work=work,
        io_volume=io_volume,
        n_instances=n_instances,
        category=category.value,
    )


def generate_mix(
    spec: MixSpec,
    platform: Platform,
    io_ratio: float,
    rng: RngLike = None,
    *,
    label: str = "mix",
    fit_to_platform: bool = True,
) -> Scenario:
    """Generate a full scenario following ``spec`` on ``platform``.

    With ``fit_to_platform`` (default) the node counts are rescaled so that
    the applications exactly partition the machine, mirroring the paper's
    setting where the scheduled applications own dedicated processors and
    jointly cover the platform.
    """
    rng = as_rng(rng)
    apps: list[Application] = []
    index = 0
    for category, count in spec.counts().items():
        for _ in range(count):
            apps.append(
                generate_application(
                    name=f"{category.value}-{index:03d}",
                    category=category,
                    platform=platform,
                    io_ratio=io_ratio,
                    rng=rng,
                )
            )
            index += 1
    if fit_to_platform:
        apps = _fit_processors(apps, platform)
    return Scenario(
        platform=platform,
        applications=tuple(apps),
        label=label,
        metadata={"io_ratio": io_ratio, "spec": spec.counts()},
    )


def figure6_mix(
    scenario: str,
    platform: Platform,
    rng: RngLike = None,
    *,
    label: Optional[str] = None,
) -> Scenario:
    """The three application mixes evaluated in Figure 6.

    ``scenario`` is one of:

    * ``"10large-20"`` — 10 large applications, average I/O ratio 20%;
    * ``"50small5large-20"`` — 50 small and 5 large applications, 20%;
    * ``"50small5large-35"`` — 50 small and 5 large applications, 35%.
    """
    table = {
        "10large-20": (MixSpec(n_large=10), 0.20),
        "50small5large-20": (MixSpec(n_small=50, n_large=5), 0.20),
        "50small5large-35": (MixSpec(n_small=50, n_large=5), 0.35),
    }
    if scenario not in table:
        raise KeyError(
            f"unknown Figure 6 scenario {scenario!r}; choose one of {sorted(table)}"
        )
    spec, ratio = table[scenario]
    return generate_mix(
        spec, platform, ratio, rng, label=label or f"figure6-{scenario}"
    )


def apply_sensibility(
    application: Application,
    sensibility_work: float = 0.0,
    sensibility_io: float = 0.0,
    rng: RngLike = None,
) -> Application:
    """Perturb a periodic application into a quasi-periodic one (Figure 7).

    The paper defines the sensibility of an application as
    ``(max_i w_i - min_i w_i) / max_i w_i``; to generate an application of
    sensibility ``x`` it draws each instance's compute time uniformly in
    ``[w_min, w_min * (1 + x)]`` (and likewise for the I/O volume).  This
    function applies that exact transformation, using the periodic
    application's parameters as the minimum values.
    """
    check_in_range("sensibility_work", sensibility_work, 0.0, 0.999)
    check_in_range("sensibility_io", sensibility_io, 0.0, 0.999)
    rng = as_rng(rng)
    if not application.is_periodic:
        raise ValidationError("apply_sensibility expects a periodic application")
    base = application.instances[0]
    n = application.n_instances

    def bounds(value: float, sensibility: float) -> tuple[float, float]:
        # Uniform draw in [lo, hi] with hi = lo / (1 - s), so the expected
        # sensibility (max - min)/max equals s, while the midpoint stays at
        # the periodic value — otherwise increasing the sensibility would also
        # increase the mean work and confound the Figure 7 sweep.
        if sensibility <= 0 or value <= 0:
            return value, value
        lo = value * 2.0 * (1.0 - sensibility) / (2.0 - sensibility)
        hi = lo / (1.0 - sensibility)
        return lo, hi

    w_lo, w_hi = bounds(base.work, sensibility_work)
    v_lo, v_hi = bounds(base.io_volume, sensibility_io)
    works = rng.uniform(w_lo, w_hi, size=n) if base.work > 0 else np.zeros(n)
    vols = (
        rng.uniform(v_lo, v_hi, size=n) if base.io_volume > 0 else np.zeros(n)
    )
    return Application.from_sequences(
        name=application.name,
        processors=application.processors,
        works=works.tolist(),
        io_volumes=vols.tolist(),
        release_time=application.release_time,
        category=application.category,
    )


# ---------------------------------------------------------------------- #
def _fit_processors(apps: list[Application], platform: Platform) -> list[Application]:
    """Rescale node counts so the applications exactly fill the platform."""
    total = sum(app.processors for app in apps)
    capacity = platform.total_processors
    if total <= 0:
        raise ValidationError("applications use no processors")
    scale = capacity / total
    fitted: list[Application] = []
    budget = capacity
    for i, app in enumerate(apps):
        remaining_apps = len(apps) - i
        target = max(1, int(math.floor(app.processors * scale)))
        # Keep at least one processor for every remaining application.
        target = min(target, budget - (remaining_apps - 1))
        target = max(target, 1)
        budget -= target
        fitted.append(
            Application(
                name=app.name,
                processors=target,
                instances=app.instances,
                release_time=app.release_time,
                category=app.category,
            )
        )
    return fitted

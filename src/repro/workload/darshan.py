"""Synthetic Darshan-like I/O characterization records (substitute substrate).

The paper uses Darshan logs collected on Intrepid between December 2012 and
December 2013 to characterize the workload (Figure 5) and to rebuild the
application mixes present during congested moments (Section 4.4).  Those
logs are not publicly redistributable, so this module provides the closest
synthetic equivalent: a :class:`DarshanRecord` carries exactly the fields the
paper extracts from real logs (job id, node count, start/end time, total
bytes of I/O, time spent in I/O), a generator produces a year's worth of
records following the category mix and I/O-time fractions reported in the
paper, and converters turn records into :class:`~repro.core.application.Application`
objects for the simulator.

Two known limitations of real Darshan data are modelled explicitly because
the paper discusses how they were handled:

* **Coverage** — Darshan only captured roughly half of the jobs; each record
  carries a ``covered`` flag and :func:`replicate_uncovered` replicates known
  applications to stand in for the invisible half, as the authors did.
* **Behaviour opacity** — the logs only contain totals (execution time,
  total I/O volume), not the phase-by-phase behaviour; conversion into
  applications therefore assumes periodicity with a configurable number of
  instances, which Section 4.3 shows does not bias the results.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.core.application import Application
from repro.core.platform import Platform
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ValidationError, check_in_range, check_positive
from repro.workload.categories import CATEGORY_PROFILES, Category, categorize

__all__ = [
    "DarshanRecord",
    "generate_records",
    "save_records",
    "load_records",
    "record_to_application",
    "replicate_uncovered",
]

_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class DarshanRecord:
    """One job as seen by the I/O characterization tool.

    Attributes
    ----------
    job_id:
        Unique identifier of the job.
    nodes:
        Number of compute nodes used.
    start_time, end_time:
        Job lifetime in seconds since the start of the observation window.
    io_time:
        Total seconds the job spent performing I/O.
    io_volume:
        Total bytes transferred.
    covered:
        Whether the characterization tool actually captured this job
        (Darshan covered only about half of Intrepid's workload).
    """

    job_id: str
    nodes: int
    start_time: float
    end_time: float
    io_time: float
    io_volume: float
    covered: bool = True

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValidationError("nodes must be positive")
        if self.end_time <= self.start_time:
            raise ValidationError("end_time must be after start_time")
        if self.io_time < 0 or self.io_volume < 0:
            raise ValidationError("io_time and io_volume must be >= 0")
        if self.io_time > self.runtime + 1e-9:
            raise ValidationError("io_time cannot exceed the job runtime")

    @property
    def runtime(self) -> float:
        """Wall-clock duration of the job."""
        return self.end_time - self.start_time

    @property
    def compute_time(self) -> float:
        """Runtime not spent in I/O."""
        return self.runtime - self.io_time

    @property
    def io_fraction(self) -> float:
        """Fraction of the runtime spent doing I/O."""
        return self.io_time / self.runtime if self.runtime > 0 else 0.0

    @property
    def category(self) -> Category:
        """Size category (paper thresholds)."""
        return categorize(self.nodes)

    @property
    def start_day(self) -> int:
        """Day index of the job start within the observation window."""
        return int(self.start_time // _SECONDS_PER_DAY)


# ---------------------------------------------------------------------- #
# Generation
# ---------------------------------------------------------------------- #
def generate_records(
    n_jobs: int,
    platform: Platform,
    rng: RngLike = None,
    *,
    duration_days: float = 365.0,
    category_weights: Optional[dict[Category, float]] = None,
    coverage: float = 0.5,
) -> list[DarshanRecord]:
    """Generate a synthetic observation window of Darshan-like records.

    ``category_weights`` defaults to the mix visible in Figure 5a: small
    applications dominate the job count, large ones are common, very large
    capability runs are rare.
    """
    if n_jobs <= 0:
        raise ValidationError("n_jobs must be positive")
    check_positive("duration_days", duration_days)
    check_in_range("coverage", coverage, 0.0, 1.0)
    rng = as_rng(rng)
    weights = category_weights or {
        Category.SMALL: 0.72,
        Category.LARGE: 0.22,
        Category.VERY_LARGE: 0.06,
    }
    categories = list(weights)
    probabilities = np.asarray([weights[c] for c in categories], dtype=float)
    probabilities = probabilities / probabilities.sum()

    records: list[DarshanRecord] = []
    horizon = duration_days * _SECONDS_PER_DAY
    for i in range(n_jobs):
        category = categories[int(rng.choice(len(categories), p=probabilities))]
        profile = CATEGORY_PROFILES[category]
        nodes = int(rng.choice(profile.typical_nodes))
        nodes = min(nodes, platform.total_processors)
        n_instances = int(rng.integers(*profile.instance_range))
        work = float(rng.uniform(*profile.work_range))
        io_fraction = float(rng.uniform(*profile.io_fraction_range))
        compute_time = work * n_instances
        io_time = compute_time * io_fraction / max(1e-9, 1.0 - io_fraction)
        peak = platform.peak_application_bandwidth(nodes)
        io_volume = io_time * peak
        start = float(rng.uniform(0.0, horizon))
        records.append(
            DarshanRecord(
                job_id=f"job-{i:06d}",
                nodes=nodes,
                start_time=start,
                end_time=start + compute_time + io_time,
                io_time=io_time,
                io_volume=io_volume,
                covered=bool(rng.random() < coverage),
            )
        )
    records.sort(key=lambda r: r.start_time)
    return records


# ---------------------------------------------------------------------- #
# Persistence (JSON lines, one record per line)
# ---------------------------------------------------------------------- #
def save_records(records: Sequence[DarshanRecord], path: str | Path) -> None:
    """Write records to a JSON-lines file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(asdict(record)) + "\n")  # reprolint: ignore[D004] — JSON-lines rows keep dataclass field order (deterministic) for readability


def load_records(path: str | Path) -> list[DarshanRecord]:
    """Read records from a JSON-lines file written by :func:`save_records`."""
    path = Path(path)
    records: list[DarshanRecord] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                records.append(DarshanRecord(**payload))
            except (json.JSONDecodeError, TypeError, ValidationError) as exc:
                raise ValidationError(
                    f"invalid Darshan record at {path}:{line_number}: {exc}"
                ) from exc
    return records


# ---------------------------------------------------------------------- #
# Conversion to simulator applications
# ---------------------------------------------------------------------- #
def record_to_application(
    record: DarshanRecord,
    platform: Platform,
    *,
    n_instances: int = 10,
    name: Optional[str] = None,
) -> Application:
    """Turn a Darshan record into a periodic application.

    The record only gives totals; following Section 4.4 we "enforce
    application periodicity by considering that these applications have a
    fixed number of iterations, each of a constant execution time and I/O
    volume".
    """
    if n_instances <= 0:
        raise ValidationError("n_instances must be positive")
    work = record.compute_time / n_instances
    volume = record.io_volume / n_instances
    if work <= 0 and volume <= 0:
        raise ValidationError(f"record {record.job_id} has no compute and no I/O")
    return Application.periodic(
        name=name or record.job_id,
        processors=min(record.nodes, platform.total_processors),
        work=max(work, 1e-6),
        io_volume=volume,
        n_instances=n_instances,
        category=record.category.value,
    )


def replicate_uncovered(
    records: Sequence[DarshanRecord], rng: RngLike = None
) -> list[DarshanRecord]:
    """Stand in for the jobs Darshan did not capture.

    For every uncovered record, a covered record of the same category is
    cloned (with a fresh job id), reproducing the paper's procedure of
    "replicating known applications in order to simulate similar conditions
    to the usage of the system at the moment of congestion".
    """
    rng = as_rng(rng)
    covered = [r for r in records if r.covered]
    uncovered = [r for r in records if not r.covered]
    if not uncovered:
        return list(records)
    if not covered:
        raise ValidationError("cannot replicate: no covered records available")
    by_category: dict[Category, list[DarshanRecord]] = {}
    for record in covered:
        by_category.setdefault(record.category, []).append(record)
    result = list(covered)
    for i, record in enumerate(uncovered):
        pool = by_category.get(record.category) or covered
        template = pool[int(rng.integers(0, len(pool)))]
        result.append(
            DarshanRecord(
                job_id=f"{template.job_id}-replica-{i:04d}",
                nodes=template.nodes,
                start_time=record.start_time,
                end_time=record.start_time + template.runtime,
                io_time=template.io_time,
                io_volume=template.io_volume,
                covered=True,
            )
        )
    result.sort(key=lambda r: r.start_time)
    return result

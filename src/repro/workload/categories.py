"""Application size categories used in the Intrepid workload analysis (Section 4.1).

The paper buckets the Darshan-captured applications by node count:

* *small* — fewer than 1,284 nodes;
* *large* — 1,285 nodes or more;
* *very large* — more than 4,584 nodes.

(The "large" and "very large" categories overlap in the paper's wording; we
treat them as disjoint: large = [1285, 4584], very large = (4584, ∞).)

Each category also carries the node-count range and the typical
I/O-time fraction used by the synthetic workload generator; the fractions
follow the shape of Figure 5b (small applications spend a larger share of
their time in I/O than the very large capability jobs, which are dominated
by computation but move enormous volumes when they do write).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.validation import ValidationError

__all__ = ["Category", "CategoryProfile", "CATEGORY_PROFILES", "categorize"]

#: Paper thresholds (nodes).
SMALL_MAX_NODES = 1_284
LARGE_MAX_NODES = 4_584


class Category(enum.Enum):
    """Workload category by node count."""

    SMALL = "small"
    LARGE = "large"
    VERY_LARGE = "very_large"


@dataclass(frozen=True)
class CategoryProfile:
    """Generation profile of one category.

    Attributes
    ----------
    category:
        The category being described.
    min_nodes, max_nodes:
        Node-count range (inclusive) for applications of this category.
    typical_nodes:
        Common allocation sizes (powers of two and rack multiples) used by
        the generator so node counts look like real job sizes.
    io_fraction_range:
        Range of the dedicated-mode I/O-time fraction
        ``time_io / (w + time_io)`` used when synthesizing applications.
    instance_range:
        Range of the number of compute/I-O instances per job.
    work_range:
        Range of the per-instance compute time in seconds.
    """

    category: Category
    min_nodes: int
    max_nodes: int
    typical_nodes: tuple[int, ...]
    io_fraction_range: tuple[float, float]
    instance_range: tuple[int, int]
    work_range: tuple[float, float]

    def __post_init__(self) -> None:
        if self.min_nodes <= 0 or self.max_nodes < self.min_nodes:
            raise ValidationError("invalid node range")
        lo, hi = self.io_fraction_range
        if not (0.0 <= lo <= hi < 1.0):
            raise ValidationError("io_fraction_range must satisfy 0 <= lo <= hi < 1")
        ilo, ihi = self.instance_range
        if ilo <= 0 or ihi < ilo:
            raise ValidationError("invalid instance_range")
        wlo, whi = self.work_range
        if wlo <= 0 or whi < wlo:
            raise ValidationError("invalid work_range")


CATEGORY_PROFILES: dict[Category, CategoryProfile] = {
    Category.SMALL: CategoryProfile(
        category=Category.SMALL,
        min_nodes=32,
        max_nodes=SMALL_MAX_NODES,
        typical_nodes=(32, 64, 128, 256, 512, 1024),
        io_fraction_range=(0.05, 0.45),
        instance_range=(5, 20),
        work_range=(100.0, 1_200.0),
    ),
    Category.LARGE: CategoryProfile(
        category=Category.LARGE,
        min_nodes=SMALL_MAX_NODES + 1,
        max_nodes=LARGE_MAX_NODES,
        typical_nodes=(2048, 4096),
        io_fraction_range=(0.05, 0.35),
        instance_range=(4, 15),
        work_range=(200.0, 2_400.0),
    ),
    Category.VERY_LARGE: CategoryProfile(
        category=Category.VERY_LARGE,
        min_nodes=LARGE_MAX_NODES + 1,
        max_nodes=40_960,
        typical_nodes=(8192, 16384, 32768),
        io_fraction_range=(0.03, 0.25),
        instance_range=(3, 10),
        work_range=(400.0, 3_600.0),
    ),
}


def categorize(nodes: int) -> Category:
    """Category of a job running on ``nodes`` nodes (paper thresholds)."""
    if nodes <= 0:
        raise ValidationError(f"nodes must be positive, got {nodes}")
    if nodes <= SMALL_MAX_NODES:
        return Category.SMALL
    if nodes <= LARGE_MAX_NODES:
        return Category.LARGE
    return Category.VERY_LARGE

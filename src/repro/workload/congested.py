"""Congested-moment scenarios for Intrepid and Mira (Section 4.4).

The paper replays 56 congested moments observed on Intrepid and 11 on Mira:
instants at which the applications present in the Darshan logs jointly
demanded more I/O bandwidth than the machine could deliver.  For each moment
the authors rebuilt the application mix from the logs (replicating known
applications to stand in for the ~50% the logs missed) and compared their
heuristics against the machine's native scheduler (with burst buffers) and
against the upper limit.

Without the original logs, this module generates congested moments with the
same defining property: a mix of applications — sampled from the Intrepid /
Mira category profiles — whose aggregate I/O demand exceeds the back-end
bandwidth by a controlled *congestion factor*.  The factor is drawn per
moment (the paper's moments range from mild to severe congestion, visible in
the spread of the "upper limit" curve of Figures 8–13), so the generated
series exhibits the same qualitative diversity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.application import Application
from repro.core.platform import Platform, intrepid, mira
from repro.core.scenario import Scenario
from repro.utils.rng import RngLike, as_rng, spawn_rngs
from repro.utils.validation import ValidationError, check_in_range, check_positive
from repro.workload.generator import MixSpec, generate_mix

__all__ = [
    "CongestedMomentSpec",
    "generate_congested_moment",
    "intrepid_congested_moments",
    "mira_congested_moments",
    "N_INTREPID_MOMENTS",
    "N_MIRA_MOMENTS",
]

#: Number of congested moments analysed in the paper.
N_INTREPID_MOMENTS = 56
N_MIRA_MOMENTS = 11


@dataclass(frozen=True)
class CongestedMomentSpec:
    """Parameters controlling one generated congested moment.

    Attributes
    ----------
    congestion_factor:
        Ratio of the aggregate steady-state I/O demand to the back-end
        bandwidth ``B``.  Values above 1 mean the moment is congested; the
        paper's moments span roughly 1.1x to 4x.
    n_small, n_large, n_very_large:
        Application mix present at the moment.
    io_ratio:
        Average dedicated-mode I/O-to-compute ratio of the applications.
    """

    congestion_factor: float
    n_small: int
    n_large: int
    n_very_large: int
    io_ratio: float

    def __post_init__(self) -> None:
        check_positive("congestion_factor", self.congestion_factor)
        check_in_range("io_ratio", self.io_ratio, 0.0, 10.0)
        if self.n_small + self.n_large + self.n_very_large <= 0:
            raise ValidationError("a congested moment needs at least one application")


def generate_congested_moment(
    spec: CongestedMomentSpec,
    platform: Platform,
    rng: RngLike = None,
    *,
    label: str = "congested-moment",
) -> Scenario:
    """Build one congested-moment scenario matching ``spec``.

    The mix is generated as usual, then every application's I/O volume is
    rescaled by a common factor so that the aggregate steady-state demand
    (total I/O bytes per second of steady-state execution) equals
    ``congestion_factor * B``.  This preserves the relative I/O intensities
    of the applications while pinning the overall severity of the moment.
    """
    rng = as_rng(rng)
    scenario = generate_mix(
        MixSpec(
            n_small=spec.n_small,
            n_large=spec.n_large,
            n_very_large=spec.n_very_large,
        ),
        platform,
        spec.io_ratio,
        rng,
        label=label,
    )
    scale = _demand_scale(scenario, spec.congestion_factor)
    apps = tuple(_scale_io(app, scale) for app in scenario.applications)
    return Scenario(
        platform=platform,
        applications=apps,
        label=label,
        metadata={
            "congestion_factor": spec.congestion_factor,
            "io_ratio": spec.io_ratio,
            "n_applications": len(apps),
        },
    )


def intrepid_congested_moments(
    n_moments: int = N_INTREPID_MOMENTS,
    rng: RngLike = None,
    *,
    platform: Optional[Platform] = None,
) -> list[Scenario]:
    """The Intrepid congested-moment series (Table 1, Figures 8–10).

    Moments alternate between the two dominant Intrepid mix shapes (a few
    large applications alone, or many small plus a few large) and span a
    range of congestion severities.
    """
    platform = platform or intrepid()
    return _moment_series(n_moments, platform, rng, machine="intrepid")


def mira_congested_moments(
    n_moments: int = N_MIRA_MOMENTS,
    rng: RngLike = None,
    *,
    platform: Optional[Platform] = None,
) -> list[Scenario]:
    """The Mira congested-moment series (Table 2, Figures 11–13)."""
    platform = platform or mira()
    return _moment_series(n_moments, platform, rng, machine="mira")


# ---------------------------------------------------------------------- #
def _moment_series(
    n_moments: int, platform: Platform, rng: RngLike, machine: str
) -> list[Scenario]:
    if n_moments <= 0:
        raise ValidationError("n_moments must be positive")
    rngs = spawn_rngs(rng if rng is not None else hash(machine) % (2**31), n_moments)
    scenarios: list[Scenario] = []
    for index, moment_rng in enumerate(rngs):
        # The observed moments range from mild over-subscription to roughly
        # twice the back-end bandwidth; harsher factors produce dilations far
        # beyond anything the paper reports.
        severity = float(moment_rng.uniform(1.05, 2.0))
        io_ratio = float(moment_rng.uniform(0.1, 0.3))
        if index % 2 == 0:
            spec = CongestedMomentSpec(
                congestion_factor=severity,
                n_small=0,
                n_large=int(moment_rng.integers(4, 10)),
                n_very_large=int(moment_rng.integers(1, 4)),
                io_ratio=io_ratio,
            )
        else:
            spec = CongestedMomentSpec(
                congestion_factor=severity,
                n_small=int(moment_rng.integers(10, 30)),
                n_large=int(moment_rng.integers(2, 8)),
                n_very_large=0,
                io_ratio=io_ratio,
            )
        scenarios.append(
            generate_congested_moment(
                spec,
                platform,
                moment_rng,
                label=f"{machine}-moment-{index + 1:02d}",
            )
        )
    return scenarios


def _demand_scale(scenario: Scenario, congestion_factor: float) -> float:
    """Rescaling factor applied to I/O volumes to hit the target congestion.

    The steady-state demand of an application is ``vol / (w + vol / peak)``;
    scaling the volume also lengthens the cycle, so the factor is found by a
    short fixed-point iteration (the map is monotone and converges quickly).
    The target may be unreachable when it exceeds the aggregate peak
    bandwidth of the applications; in that case the scale saturates, which
    simply yields the most congested moment the mix can express.
    """
    platform = scenario.platform
    target = congestion_factor * platform.system_bandwidth

    def demand(scale: float) -> float:
        total = 0.0
        for app in scenario.applications:
            inst = app.instances[0]
            peak = platform.peak_application_bandwidth(app.processors)
            volume = inst.io_volume * scale
            time_io = volume / peak if peak > 0 else 0.0
            cycle = inst.work + time_io
            if cycle > 0:
                total += volume / cycle
        return total

    if demand(1.0) <= 0:
        raise ValidationError("scenario has no I/O demand to scale")
    scale = 1.0
    for _ in range(25):
        current = demand(scale)
        if current <= 0:
            break
        new_scale = scale * target / current
        if abs(new_scale - scale) <= 1e-6 * scale:
            scale = new_scale
            break
        # Damp the update to avoid oscillation when the demand saturates.
        scale = 0.5 * (scale + new_scale)
    return scale


def _scale_io(app: Application, scale: float) -> Application:
    works = [inst.work for inst in app.instances]
    volumes = [inst.io_volume * scale for inst in app.instances]
    return Application.from_sequences(
        name=app.name,
        processors=app.processors,
        works=works,
        io_volumes=volumes,
        release_time=app.release_time,
        category=app.category,
    )

"""Small shared utilities: deterministic RNG handling, unit helpers, validation.

These helpers are deliberately dependency-free (numpy only) and are used by
every other subpackage.  Nothing in here encodes paper semantics; the paper
model lives in :mod:`repro.core`.
"""

from repro.utils.io import atomic_write_bytes, atomic_write_text
from repro.utils.rng import RngLike, as_rng, spawn_rngs
from repro.utils.units import (
    GB,
    GIB,
    KB,
    MB,
    MIB,
    TB,
    format_bandwidth,
    format_bytes,
    format_duration,
)
from repro.utils.validation import (
    ValidationError,
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "RngLike",
    "as_rng",
    "spawn_rngs",
    "KB",
    "MB",
    "GB",
    "TB",
    "MIB",
    "GIB",
    "format_bytes",
    "format_bandwidth",
    "format_duration",
    "ValidationError",
    "check_positive",
    "check_non_negative",
    "check_finite",
    "check_in_range",
]

"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (workload generators, congested
moment builders, sensibility perturbations) accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  Funnelling them all through
:func:`as_rng` guarantees that experiments are reproducible from a single
seed, which the benchmark harness relies on to regenerate the paper's tables
with stable values run-to-run.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Anything accepted where a random generator is expected.
RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh nondeterministic generator), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ValueError(f"seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {type(rng).__name__!r} as a random generator")


def spawn_rngs(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used when an experiment fans out into independent repetitions (e.g. the
    200 application mixes behind Figure 6): each repetition gets its own
    stream so results do not depend on evaluation order.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    base = as_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]

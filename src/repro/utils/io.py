"""Atomic file-writing helpers shared by the reporting and store layers.

POSIX ``rename(2)`` within one directory is atomic, so *write to a sibling
temp file, then* :func:`os.replace` guarantees a reader (or a crash, or a
``Ctrl-C`` mid-campaign) can only ever observe the old content or the new
content — never a truncated half-write.  Both the experiment artefacts
(``results/*.json`` / ``*.csv``) and every entry of the content-addressed
result store go through here.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_text", "atomic_write_bytes"]


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp sibling + ``os.replace``).

    The temp file lives in the target's directory so the final rename never
    crosses a filesystem boundary (which would silently fall back to a
    non-atomic copy).  On any failure the temp file is removed; the target
    is either absent/old or fully written, never truncated.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        # mkstemp creates 0600 files; artefacts must get the ordinary
        # umask-governed mode (0644 under umask 022) like plain open() would,
        # or shared results/ directories stop being group/world readable.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_name, 0o666 & ~umask)
        os.replace(tmp_name, path)
    except BaseException:
        # Best-effort cleanup; the original exception is what matters.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(
    path: Union[str, Path], text: str, *, encoding: str = "utf-8"
) -> Path:
    """Text-mode convenience wrapper around :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding))

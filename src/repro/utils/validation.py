"""Argument validation helpers shared across the library.

The simulator and schedulers enforce the paper's feasibility constraints
(``0 <= gamma <= b``, ``sum(beta * gamma) <= B``, volumes fully transferred).
Raising a dedicated :class:`ValidationError` keeps those failures easy to
distinguish from ordinary ``ValueError`` raised by user-facing constructors.
"""

from __future__ import annotations

import math
from typing import Optional


class ValidationError(ValueError):
    """Raised when a model object or schedule violates a structural invariant."""


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number strictly greater than zero."""
    check_finite(name, value)
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number greater than or equal to zero."""
    check_finite(name, value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_finite(name: str, value: float) -> float:
    """Return ``value`` if it is a finite real number."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(value) or math.isinf(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: Optional[float] = None,
    high: Optional[float] = None,
    *,
    inclusive: bool = True,
) -> float:
    """Return ``value`` if it lies in ``[low, high]`` (or the open interval)."""
    value = check_finite(name, value)
    if inclusive:
        if low is not None and value < low:
            raise ValidationError(f"{name} must be >= {low}, got {value}")
        if high is not None and value > high:
            raise ValidationError(f"{name} must be <= {high}, got {value}")
    else:
        if low is not None and value <= low:
            raise ValidationError(f"{name} must be > {low}, got {value}")
        if high is not None and value >= high:
            raise ValidationError(f"{name} must be < {high}, got {value}")
    return value

"""Byte / bandwidth / time unit constants and human-readable formatting.

The paper expresses per-node I/O card bandwidth in GB/s (e.g. 0.1 GB/s per
Intrepid node) and aggregate file-system bandwidth in GB/s (e.g. 64 GB/s on
Mira).  Internally the library works in plain bytes and seconds; these
constants keep platform definitions readable.
"""

from __future__ import annotations

#: Decimal byte units (storage vendors and the paper use decimal GB).
KB = 1_000.0
MB = 1_000_000.0
GB = 1_000_000_000.0
TB = 1_000_000_000_000.0

#: Binary byte units, occasionally useful when describing memory sizes.
KIB = 1024.0
MIB = 1024.0**2
GIB = 1024.0**3
TIB = 1024.0**4

_BYTE_STEPS = [(TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")]


def format_bytes(n: float) -> str:
    """Render a byte count with a sensible decimal unit (``1.50 GB``)."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for factor, suffix in _BYTE_STEPS:
        if n >= factor:
            return f"{sign}{n / factor:.2f} {suffix}"
    return f"{sign}{n:.0f} B"


def format_bandwidth(bytes_per_second: float) -> str:
    """Render a bandwidth (``12.80 GB/s``)."""
    return f"{format_bytes(bytes_per_second)}/s"


def format_duration(seconds: float) -> str:
    """Render a duration in the largest unit that keeps 2 significant parts."""
    seconds = float(seconds)
    sign = "-" if seconds < 0 else ""
    seconds = abs(seconds)
    if seconds < 1e-3:
        return f"{sign}{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{sign}{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{sign}{seconds:.2f} s"
    minutes, rem = divmod(seconds, 60.0)
    if minutes < 120:
        return f"{sign}{int(minutes)} min {rem:.0f} s"
    hours, rem_min = divmod(minutes, 60.0)
    return f"{sign}{int(hours)} h {int(rem_min)} min"

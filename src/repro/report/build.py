"""Assemble the ``repro report`` artifact from (cached) spec runs.

:func:`build_report` is the engine behind the ``repro report`` subcommand:

1. every requested spec is executed through
   :func:`repro.config.run.run_spec` **with the result store attached** —
   a campaign that already ran is served entirely from cache, so building
   a report over cached results performs zero simulation work;
2. each payload is turned into figures (:mod:`repro.report.figures`) and
   rendered with the best available backend (:mod:`repro.report.charts`):
   PNG files when matplotlib is installed, deterministic text charts
   otherwise;
3. everything lands in one **self-contained** ``report.html`` (PNGs
   embedded as base64 data URIs — the file has no external references) and
   optionally a ``report.md`` twin, both written atomically, with run
   metadata, per-spec store statistics and per-figure tables.
"""

from __future__ import annotations

import base64
import html
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro import __version__
from repro.config import load_spec, run_spec
from repro.config.run import ProgressCallback, SpecRunResult
from repro.report.charts import matplotlib_available, render_png, render_text
from repro.report.figures import FigureData, extract_figures
from repro.store import ResultStore
from repro.utils.io import atomic_write_text
from repro.utils.validation import ValidationError

__all__ = ["RenderedFigure", "SpecSection", "ReportResult", "build_report"]

#: Report flavours accepted by ``build_report(formats=...)``.
REPORT_FORMATS: tuple[str, ...] = ("html", "markdown")


@dataclass
class RenderedFigure:
    """One figure plus whatever the chosen backend produced for it."""

    data: FigureData
    image_path: Optional[Path] = None
    text: Optional[str] = None


@dataclass
class SpecSection:
    """One spec's slice of the report."""

    spec_path: str
    result: SpecRunResult
    figures: list[RenderedFigure] = field(default_factory=list)


@dataclass
class ReportResult:
    """Everything :func:`build_report` wrote."""

    out_dir: Path
    report_paths: list[Path]
    figure_paths: list[Path]
    sections: list[SpecSection]
    used_matplotlib: bool


# ---------------------------------------------------------------------- #
def build_report(
    spec_paths: Sequence[Union[str, Path]],
    *,
    store: Optional[ResultStore] = None,
    out_dir: Union[str, Path] = "reports",
    formats: Sequence[str] = ("html",),
    force_text: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> ReportResult:
    """Run the specs (through the store) and write the artifact report.

    ``store`` is consulted and populated exactly as in ``repro run`` — pass
    the same store a campaign used and the report renders from cache;
    ``None`` recomputes everything.  ``formats`` selects ``"html"`` and/or
    ``"markdown"``.  ``force_text`` renders text charts even when
    matplotlib is available (the mpl-free path, also forced by the
    ``REPRO_FORCE_TEXT_CHARTS`` environment variable).  The spec's own
    ``[output]`` table is deliberately **not** written — a report build has
    no side effects beyond ``out_dir`` and the store.
    """
    if not spec_paths:
        raise ValidationError("build_report needs at least one spec path")
    formats = list(formats)
    for fmt in formats:
        if fmt not in REPORT_FORMATS:
            raise ValidationError(
                f"unknown report format {fmt!r}; choose from {REPORT_FORMATS}"
            )
    out_dir = Path(out_dir)
    use_mpl = matplotlib_available() and not force_text

    sections: list[SpecSection] = []
    figure_paths: list[Path] = []
    for index, spec_path in enumerate(spec_paths):
        spec = load_spec(spec_path)
        if progress is not None:
            progress(f"report: running {spec_path} (kind {spec.kind})")
        result = run_spec(spec, progress=progress, store=store)
        section = SpecSection(spec_path=str(spec_path), result=result)
        # The section index disambiguates specs that share a file stem
        # (v1/figure6.toml vs v2/figure6.toml must not overwrite each other).
        stem = f"{index:02d}-{Path(spec_path).stem}"
        for figure in extract_figures(result.payload):
            rendered = RenderedFigure(data=figure)
            if use_mpl:
                image = out_dir / "figures" / f"{stem}-{figure.slug}.png"
                rendered.image_path = render_png(figure, image)
                figure_paths.append(image)
            else:
                rendered.text = render_text(figure)
            section.figures.append(rendered)
        sections.append(section)
        if progress is not None:
            progress(
                f"report: {spec.name} — {len(section.figures)} figure(s) "
                f"rendered ({'png' if use_mpl else 'text'})"
            )

    out_dir.mkdir(parents=True, exist_ok=True)
    report_paths: list[Path] = []
    if "html" in formats:
        path = out_dir / "report.html"
        atomic_write_text(path, _render_html(sections, store, use_mpl))
        report_paths.append(path)
    if "markdown" in formats:
        path = out_dir / "report.md"
        atomic_write_text(path, _render_markdown(sections, store, use_mpl))
        report_paths.append(path)
    return ReportResult(
        out_dir=out_dir,
        report_paths=report_paths,
        figure_paths=figure_paths,
        sections=sections,
        used_matplotlib=use_mpl,
    )


# ---------------------------------------------------------------------- #
# Shared metadata
# ---------------------------------------------------------------------- #
def _spec_metadata(section: SpecSection) -> list[tuple[str, str]]:
    spec = section.result.spec
    rows = [
        ("spec file", section.spec_path),
        ("experiment", spec.name),
        ("kind", spec.kind),
        ("seed", str(spec.seed)),
        ("max_time", "∞" if spec.max_time == float("inf") else f"{spec.max_time:g} s"),
    ]
    stats = section.result.store_stats
    if stats is not None:
        rows.append(
            (
                "result store",
                f"{stats['hits']} hits, {stats['misses']} misses, "
                f"{stats['writes']} writes "
                f"(hit rate {100.0 * stats['hit_rate']:.1f}%)",
            )
        )
    return rows


def _store_summary(store: Optional[ResultStore]) -> Optional[str]:
    if store is None:
        return None
    info = store.info()
    return (
        f"{info['path']} — {info['entries']} entries, "
        f"{info['total_bytes']} bytes on disk"
    )


def _generated_line() -> str:
    return (
        f"generated {time.strftime('%Y-%m-%d %H:%M:%S %Z')} by "
        f"repro {__version__}"
    )


# ---------------------------------------------------------------------- #
# HTML
# ---------------------------------------------------------------------- #
_HTML_STYLE = """
body { font-family: Georgia, 'Times New Roman', serif; margin: 2rem auto;
       max-width: 60rem; padding: 0 1rem; color: #1a1a1a; }
h1 { border-bottom: 2px solid #1a1a1a; padding-bottom: .3rem; }
h2 { margin-top: 2.5rem; border-bottom: 1px solid #999; }
table { border-collapse: collapse; margin: .8rem 0; font-size: .9rem;
        font-family: 'DejaVu Sans', Verdana, sans-serif; }
th, td { border: 1px solid #bbb; padding: .25rem .6rem; text-align: left; }
th { background: #f0f0f0; }
figure { margin: 1.2rem 0; }
figcaption { font-size: .85rem; color: #555; margin-top: .3rem; }
img { max-width: 100%; border: 1px solid #ddd; }
pre.chart { background: #fafafa; border: 1px solid #ddd; padding: .8rem;
            overflow-x: auto; font-size: .8rem; line-height: 1.25; }
p.meta { color: #555; font-size: .85rem; }
"""


def _html_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(str(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _html_figure(rendered: RenderedFigure) -> str:
    data = rendered.data
    parts = [f"<h3>{html.escape(data.title)}</h3>", "<figure>"]
    if rendered.image_path is not None:
        encoded = base64.b64encode(rendered.image_path.read_bytes()).decode("ascii")
        parts.append(
            f'<img src="data:image/png;base64,{encoded}" '
            f'alt="{html.escape(data.title)}">'
        )
    if rendered.text is not None:
        parts.append(f'<pre class="chart">{html.escape(rendered.text)}</pre>')
    if data.caption:
        parts.append(f"<figcaption>{html.escape(data.caption)}</figcaption>")
    parts.append("</figure>")
    if data.table_headers:
        parts.append(_html_table(data.table_headers, data.table_rows))
    return "\n".join(parts)


def _render_html(
    sections: Sequence[SpecSection],
    store: Optional[ResultStore],
    used_matplotlib: bool,
) -> str:
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>repro artifact report</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        "<h1>repro artifact report</h1>",
        f'<p class="meta">{html.escape(_generated_line())} — figures: '
        f"{'matplotlib' if used_matplotlib else 'text fallback'}</p>",
    ]
    summary = _store_summary(store)
    if summary is not None:
        parts.append(f'<p class="meta">result store: {html.escape(summary)}</p>')
    for section in sections:
        spec = section.result.spec
        parts.append(f"<h2>{html.escape(spec.name)}</h2>")
        parts.append(
            _html_table(
                ["", ""], [[k, v] for k, v in _spec_metadata(section)]
            )
        )
        for rendered in section.figures:
            parts.append(_html_figure(rendered))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


# ---------------------------------------------------------------------- #
# Markdown
# ---------------------------------------------------------------------- #
def _md_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _render_markdown(
    sections: Sequence[SpecSection],
    store: Optional[ResultStore],
    used_matplotlib: bool,
) -> str:
    parts = [
        "# repro artifact report",
        "",
        f"_{_generated_line()} — figures: "
        f"{'matplotlib' if used_matplotlib else 'text fallback'}_",
    ]
    summary = _store_summary(store)
    if summary is not None:
        parts.append(f"_result store: {summary}_")
    for section in sections:
        spec = section.result.spec
        parts.extend(["", f"## {spec.name}", ""])
        parts.append(_md_table(["key", "value"], _spec_metadata(section)))
        for rendered in section.figures:
            data = rendered.data
            parts.extend(["", f"### {data.title}", ""])
            if rendered.image_path is not None:
                relative = rendered.image_path.name
                parts.append(f"![{data.title}](figures/{relative})")
            if rendered.text is not None:
                parts.extend(["```text", rendered.text.rstrip("\n"), "```"])
            if data.caption:
                parts.extend(["", f"_{data.caption}_"])
            if data.table_headers:
                parts.extend(["", _md_table(data.table_headers, data.table_rows)])
    return "\n".join(parts) + "\n"

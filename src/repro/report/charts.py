"""Figure rendering backends: matplotlib PNGs with a plain-text fallback.

matplotlib is an **optional extra** (``pip install .[plots]``).  When it is
importable (and not disabled), figures render as PNG files; otherwise every
figure degrades to a deterministic Unicode chart — horizontal bars for
``bars`` figures, sparkline + value table for ``lines`` — so ``repro
report`` always produces a complete artifact.  Set ``REPRO_FORCE_TEXT_CHARTS``
(or pass ``repro report --text``) to force the fallback even with
matplotlib installed; the tests use it to pin both paths.
"""

from __future__ import annotations

import math
import os
from pathlib import Path

from repro.report.figures import FigureData

__all__ = ["matplotlib_available", "render_png", "render_text"]

#: Width (characters) of the text-chart bar area.
_BAR_WIDTH = 40

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def matplotlib_available() -> bool:
    """Is the matplotlib backend usable (installed and not disabled)?"""
    if os.environ.get("REPRO_FORCE_TEXT_CHARTS", "").strip():
        return False
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


# ---------------------------------------------------------------------- #
# matplotlib backend
# ---------------------------------------------------------------------- #
def render_png(figure: FigureData, path: Path) -> Path:
    """Render one figure to a PNG file (requires matplotlib)."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(7.2, 4.2), dpi=120)
    try:
        if figure.chart == "bars":
            n_series = max(len(figure.series), 1)
            width = 0.8 / n_series
            positions = range(len(figure.categories))
            for k, (name, values) in enumerate(figure.series.items()):
                offsets = [i + (k - (n_series - 1) / 2) * width
                           for i in positions]
                ax.bar(offsets, values, width=width, label=name)
            ax.set_xticks(list(positions))
            ax.set_xticklabels(figure.categories, rotation=30, ha="right",
                               fontsize=8)
        else:
            for name, values in figure.series.items():
                ax.plot(figure.x, values, marker="o", label=name)
        ax.set_title(figure.title, fontsize=11)
        if figure.x_label:
            ax.set_xlabel(figure.x_label)
        if figure.y_label:
            ax.set_ylabel(figure.y_label)
        if len(figure.series) > 1 or figure.chart == "lines":
            ax.legend(fontsize=8)
        ax.grid(True, axis="y", alpha=0.3)
        fig.tight_layout()
        path.parent.mkdir(parents=True, exist_ok=True)
        fig.savefig(path)
    finally:
        plt.close(fig)
    return path


# ---------------------------------------------------------------------- #
# text backend
# ---------------------------------------------------------------------- #
def _finite(values: list[float]) -> list[float]:
    return [v for v in values if math.isfinite(v)]


def _format_value(value: float) -> str:
    if not math.isfinite(value):
        return "-" if math.isnan(value) else ("inf" if value > 0 else "-inf")
    return f"{value:.2f}"


def _bar(value: float, limit: float) -> str:
    if not math.isfinite(value) or limit <= 0:
        return ""
    filled = int(round(_BAR_WIDTH * max(value, 0.0) / limit))
    return "█" * min(filled, _BAR_WIDTH)


def _sparkline(values: list[float]) -> str:
    finite = _finite(values)
    if not finite:
        return "·" * len(values)
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in values:
        if not math.isfinite(value):
            chars.append("·")
        elif span <= 0:
            chars.append(_SPARK_LEVELS[-1])
        else:
            index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
            chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def render_text(figure: FigureData) -> str:
    """Deterministic Unicode rendering of one figure (the mpl-free path)."""
    lines = [figure.title, "=" * len(figure.title)]
    if figure.caption:
        lines.append(figure.caption)
    if figure.chart == "bars":
        limit = max(
            (v for values in figure.series.values() for v in _finite(values)),
            default=0.0,
        )
        label_width = max((len(c) for c in figure.categories), default=0)
        for name, values in figure.series.items():
            lines.append("")
            header = name if not figure.y_label else f"{name} [{figure.y_label}]"
            lines.append(header)
            for category, value in zip(figure.categories, values):
                lines.append(
                    f"  {category.ljust(label_width)}  "
                    f"{_format_value(value).rjust(8)}  {_bar(value, limit)}"
                )
    else:
        x_text = ", ".join(f"{x:g}" for x in figure.x)
        lines.append("")
        lines.append(f"x ({figure.x_label or 'x'}): [{x_text}]")
        name_width = max((len(n) for n in figure.series), default=0)
        for name, values in figure.series.items():
            rendered = ", ".join(_format_value(v) for v in values)
            lines.append(
                f"  {name.ljust(name_width)}  {_sparkline(values)}  [{rendered}]"
            )
    return "\n".join(lines) + "\n"

"""Paper-figure rendering and the self-contained artifact report.

``repro report`` turns (cached) spec runs into the paper's figures plus one
self-contained HTML/Markdown artifact.  Three layers:

* :mod:`repro.report.figures` — payload → :class:`FigureData` (chart type,
  axes, series, companion table), one extractor per experiment kind;
* :mod:`repro.report.charts` — rendering backends: matplotlib PNGs when
  installed (``pip install .[plots]``), deterministic Unicode text charts
  otherwise;
* :mod:`repro.report.build` — :func:`build_report`, which runs the specs
  through the result store (zero simulation work for cached campaigns) and
  assembles ``report.html`` / ``report.md``.
"""

from repro.report.build import (
    RenderedFigure,
    ReportResult,
    SpecSection,
    build_report,
)
from repro.report.charts import matplotlib_available, render_png, render_text
from repro.report.figures import FigureData, extract_figures

__all__ = [
    "FigureData",
    "extract_figures",
    "matplotlib_available",
    "render_png",
    "render_text",
    "RenderedFigure",
    "SpecSection",
    "ReportResult",
    "build_report",
]

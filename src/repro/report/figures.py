"""Turn spec-run payloads into figure descriptions.

Every experiment kind produced by :func:`repro.config.run.run_spec` maps to
one or more :class:`FigureData` — a backend-neutral description of a paper
figure (chart type, axes, ordered series, and the companion table).  The
rendering backends in :mod:`repro.report.charts` consume these, so the
mapping from payload to figure is testable without matplotlib installed.

The extraction is *payload-driven*: it reads the same JSON dict that
``repro run`` writes (and the result store serves), so a report can be
rebuilt from cached results without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.experiments.reporting import percent, ratio
from repro.utils.validation import ValidationError

__all__ = ["FigureData", "extract_figures"]


@dataclass
class FigureData:
    """Backend-neutral description of one report figure.

    ``chart`` is ``"bars"`` (categorical x = ``categories``) or ``"lines"``
    (numeric x = ``x``).  ``series`` maps series name to one value per
    category / x position (insertion order is display order); non-finite
    values are legal and rendered as gaps.  ``table`` is the companion
    (headers, rows-of-strings) pair shown next to the figure.
    """

    slug: str
    title: str
    chart: str
    series: dict[str, list[float]]
    categories: list[str] = field(default_factory=list)
    x: list[float] = field(default_factory=list)
    x_label: str = ""
    y_label: str = ""
    caption: str = ""
    table_headers: list[str] = field(default_factory=list)
    table_rows: list[list[str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.chart not in ("bars", "lines"):
            raise ValidationError(
                f"unknown chart type {self.chart!r}; use 'bars' or 'lines'"
            )
        expected = len(self.categories) if self.chart == "bars" else len(self.x)
        for name, values in self.series.items():
            if len(values) != expected:
                raise ValidationError(
                    f"figure {self.slug!r}: series {name!r} has "
                    f"{len(values)} values, expected {expected}"
                )


def _averages_figures(
    slug_prefix: str,
    title_prefix: str,
    averages: Mapping[str, Mapping[str, float]],
    caption: str = "",
) -> list[FigureData]:
    """The standard pair of figures for a {scheduler: metrics} table."""
    schedulers = list(averages)
    table_headers = ["Scheduler", "SysEfficiency (%)", "Dilation",
                     "Upper limit (%)"]
    table_rows = [
        [
            s,
            percent(averages[s]["system_efficiency"]),
            ratio(averages[s]["dilation"]),
            percent(averages[s]["upper_limit"]),
        ]
        for s in schedulers
    ]
    efficiency = FigureData(
        slug=f"{slug_prefix}-efficiency",
        title=f"{title_prefix} — SysEfficiency",
        chart="bars",
        categories=schedulers,
        series={
            "SysEfficiency (%)": [
                averages[s]["system_efficiency"] for s in schedulers
            ],
            "Upper limit (%)": [averages[s]["upper_limit"] for s in schedulers],
        },
        y_label="SysEfficiency (%)",
        caption=caption,
        table_headers=table_headers,
        table_rows=table_rows,
    )
    dilation = FigureData(
        slug=f"{slug_prefix}-dilation",
        title=f"{title_prefix} — Dilation",
        chart="bars",
        categories=schedulers,
        series={"Dilation": [averages[s]["dilation"] for s in schedulers]},
        y_label="Dilation (ratio)",
        caption=caption,
    )
    return [efficiency, dilation]


# ---------------------------------------------------------------------- #
def _num(value: object) -> float:
    """Payload number → float, tolerating the JSON round trip.

    :func:`repro.experiments.reporting.write_json` rewrites NaN to ``null``
    and infinities to ``"inf"`` / ``"-inf"``; a report rebuilt from a loaded
    artefact must read them back the same way a live payload does.
    """
    if value is None:
        return float("nan")
    if isinstance(value, str):
        return float(value)  # "inf" / "-inf" parse natively
    return float(value)


def _resilience_figures(payload: Mapping) -> list[FigureData]:
    """Degradation figures for grids run under fault injection.

    Keyed off the ``resilience`` payload section that
    :func:`repro.config.run._run_grid_spec` emits only for faulted grids, so
    healthy reports are unchanged.
    """
    resilience = payload.get("resilience")
    if not resilience:
        return []
    schedulers = [str(row["scheduler"]) for row in resilience]
    retained = [_num(row["throughput_retained"]) for row in resilience]
    brownout = [_num(row["mean_brownout_time"]) for row in resilience]
    stall = [_num(row["mean_stall_time"]) for row in resilience]
    table_headers = [
        "Scheduler", "Retained (%)", "Crashes", "Brown-out (s)", "Stall (s)",
        "Recovery I/O",
    ]
    table_rows = [
        [
            str(row["scheduler"]),
            percent(_num(row["throughput_retained"])),
            str(row["total_crashes"]),
            ratio(_num(row["mean_brownout_time"])),
            ratio(_num(row["mean_stall_time"])),
            ratio(_num(row["mean_recovery_io"])),
        ]
        for row in resilience
    ]
    n_cells = resilience[0]["n_faulted_cells"]
    degradation = FigureData(
        slug="faults-retained",
        title="Fault injection — throughput retained",
        chart="bars",
        categories=schedulers,
        series={"Throughput retained (%)": retained},
        y_label="SysEfficiency vs healthy twin (%)",
        caption=(
            f"Faulted SysEfficiency as a share of the healthy baseline, "
            f"averaged over {n_cells} faulted scenario(s) per scheduler."
        ),
        table_headers=table_headers,
        table_rows=table_rows,
    )
    stalls = FigureData(
        slug="faults-stall",
        title="Fault injection — brown-out exposure",
        chart="bars",
        categories=schedulers,
        series={
            "Brown-out time (s)": brownout,
            "Stall time (s)": stall,
        },
        y_label="Seconds per faulted scenario",
        caption=(
            "Mean seconds of degraded PFS bandwidth, and the subset spent "
            "while at least one application wanted I/O."
        ),
    )
    return [degradation, stalls]


def _grid_figures(payload: Mapping) -> list[FigureData]:
    figures = _averages_figures(
        "averages",
        "Scheduler averages",
        payload["averages"],
        caption=f"Averaged over {payload['n_scenarios']} scenario(s).",
    )
    figures.extend(_resilience_figures(payload))
    return figures


def _figure6_figures(payload: Mapping) -> list[FigureData]:
    figures: list[FigureData] = []
    for panel, averages in payload["panels"].items():
        figures.extend(
            _averages_figures(
                f"panel-{panel}",
                f"Figure 6 — {panel}",
                averages,
                caption=f"{payload['n_repetitions']} random mixes per panel.",
            )
        )
    return figures


def _congested_figures(payload: Mapping) -> list[FigureData]:
    cells = payload["cells"]
    moments: list[str] = []
    schedulers: list[str] = []
    values: dict[tuple[str, str], float] = {}
    for cell in cells:
        if cell["scenario"] not in moments:
            moments.append(cell["scenario"])
        if cell["scheduler"] not in schedulers:
            schedulers.append(cell["scheduler"])
        values[(cell["scenario"], cell["scheduler"])] = cell["system_efficiency"]
    series = {
        scheduler: [
            values.get((moment, scheduler), float("nan")) for moment in moments
        ]
        for scheduler in schedulers
    }
    per_moment = FigureData(
        slug="moments",
        title=f"Congested moments on {payload['machine']} — per-moment SysEfficiency",
        chart="lines",
        x=list(range(1, len(moments) + 1)),
        series=series,
        x_label="congested moment",
        y_label="SysEfficiency (%)",
        caption=(
            f"Baseline {payload['baseline']} runs with burst buffers; the "
            "heuristics run without (Figures 8–13 shape)."
        ),
    )
    return [per_moment] + _averages_figures(
        "table",
        f"Tables 1–2 averages ({payload['machine']})",
        payload["averages"],
    )


def _vesta_figures(payload: Mapping) -> list[FigureData]:
    cells = payload["cells"]
    scenarios = list(payload["scenarios"])
    configurations = list(payload["configurations"])
    eff: dict[tuple[str, str], float] = {}
    dil: dict[tuple[str, str], float] = {}
    for cell in cells:
        coord = (cell["scenario"], cell["configuration"])
        eff[coord] = cell["system_efficiency"]
        dil[coord] = cell["dilation"]
    table_rows = [
        [
            s,
            c,
            percent(eff.get((s, c), float("nan"))),
            ratio(dil.get((s, c), float("nan"))),
        ]
        for s in scenarios
        for c in configurations
    ]
    return [
        FigureData(
            slug="vesta-efficiency",
            title="Figure 15 — Vesta SysEfficiency per node mix",
            chart="bars",
            categories=scenarios,
            series={
                c: [eff.get((s, c), float("nan")) for s in scenarios]
                for c in configurations
            },
            x_label="node mix",
            y_label="SysEfficiency (%)",
            table_headers=["Node mix", "Configuration", "SysEfficiency (%)",
                           "Dilation"],
            table_rows=table_rows,
        ),
        FigureData(
            slug="vesta-dilation",
            title="Figure 15 — Vesta Dilation per node mix",
            chart="bars",
            categories=scenarios,
            series={
                c: [dil.get((s, c), float("nan")) for s in scenarios]
                for c in configurations
            },
            x_label="node mix",
            y_label="Dilation (ratio)",
        ),
    ]


def _periodic_figures(payload: Mapping) -> list[FigureData]:
    figures: list[FigureData] = []
    comparison: dict[str, float] = {}
    comparison_rows: list[list[str]] = []
    for key, fragment in payload["periodic"].items():
        sweep = fragment["sweep"]
        figures.append(
            FigureData(
                slug=f"sweep-{key}",
                title=(
                    f"Period sweep — {fragment['heuristic']} "
                    f"(objective: {fragment['objective']})"
                ),
                chart="lines",
                x=[point["period"] for point in sweep],
                series={
                    "SysEfficiency (%)": [
                        point["system_efficiency"] for point in sweep
                    ],
                },
                x_label="period T (s)",
                y_label="SysEfficiency (%)",
                caption=(
                    f"Best period T = {fragment['best_period']:.6g} s over "
                    f"{len(sweep)} sweep points ((1+ε) sweep)."
                ),
            )
        )
        label = f"{fragment['heuristic']} (periodic)"
        comparison[label] = fragment["system_efficiency"]
        comparison_rows.append(
            [label, percent(fragment["system_efficiency"]),
             ratio(fragment["dilation"]), ratio(fragment["best_period"])]
        )
    for name, metrics in payload.get("online", {}).items():
        label = f"{name} (online)"
        comparison[label] = metrics["system_efficiency"]
        comparison_rows.append(
            [label, percent(metrics["system_efficiency"]),
             ratio(metrics["dilation"]), "-"]
        )
    labels = list(comparison)
    figures.append(
        FigureData(
            slug="periodic-vs-online",
            title="Periodic heuristics vs online schedulers",
            chart="bars",
            categories=labels,
            series={"SysEfficiency (%)": [comparison[label] for label in labels]},
            y_label="SysEfficiency (%)",
            caption=(
                f"{payload['n_applications']} applications on "
                f"{payload['platform']}."
            ),
            table_headers=["Case", "SysEfficiency (%)", "Dilation",
                           "Best period T (s)"],
            table_rows=comparison_rows,
        )
    )
    return figures


def _analysis_figures(payload: Mapping) -> list[FigureData]:
    figures: list[FigureData] = []
    fragments = payload["figures"]
    if "figure1" in fragments:
        f1 = fragments["figure1"]
        edges = f1["bin_edges"]
        bins = [f"{lo:g}–{hi:g}" for lo, hi in zip(edges[:-1], edges[1:])]
        figures.append(
            FigureData(
                slug="figure1",
                title="Figure 1 — I/O throughput decrease under congestion",
                chart="bars",
                categories=bins,
                series={"Applications": [float(c) for c in f1["histogram"]]},
                x_label="throughput decrease (%)",
                y_label="applications",
                caption=(
                    f"{f1['n_applications']} applications; mean decrease "
                    f"{f1['mean_decrease']:.1f}%, max {f1['max_decrease']:.1f}%."
                ),
                table_headers=["Decrease bin (%)", "Applications"],
                table_rows=[
                    [label, str(count)]
                    for label, count in zip(bins, f1["histogram"])
                ],
            )
        )
    if "figure5" in fragments:
        f5 = fragments["figure5"]
        categories = list(f5["daily_node_hours"])
        figures.append(
            FigureData(
                slug="figure5-usage",
                title="Figure 5 — daily node-hours per workload category",
                chart="bars",
                categories=categories,
                series={
                    "Node-hours/day": [
                        f5["daily_node_hours"][c] for c in categories
                    ],
                },
                y_label="node-hours/day",
                caption=(
                    f"{f5['n_jobs']} synthetic Darshan jobs over "
                    f"{f5['duration_days']:g} days; dominant category "
                    f"{f5['dominant_category']}."
                ),
                table_headers=["Category", "Node-hours/day", "I/O time (%)",
                               "Jobs"],
                table_rows=[
                    [
                        c,
                        ratio(f5["daily_node_hours"][c]),
                        percent(f5["io_time_percent"][c]),
                        str(f5["job_counts"][c]),
                    ]
                    for c in categories
                ],
            )
        )
        figures.append(
            FigureData(
                slug="figure5-io-share",
                title="Figure 5 — I/O time share per workload category",
                chart="bars",
                categories=categories,
                series={
                    "I/O time (%)": [
                        f5["io_time_percent"][c] for c in categories
                    ]
                },
                y_label="I/O time (%)",
            )
        )
    if "figure7" in fragments:
        f7 = fragments["figure7"]
        levels = f7["sensibilities_percent"]
        figures.append(
            FigureData(
                slug="figure7",
                title="Figure 7 — sensibility sweep",
                chart="lines",
                x=[float(level) for level in levels],
                series={
                    scheduler: list(series["system_efficiency"])
                    for scheduler, series in f7["series"].items()
                },
                x_label="sensibility (%)",
                y_label="SysEfficiency (%)",
                caption=(
                    f"Scenario {f7['scenario']}, {f7['n_repetitions']} mixes "
                    "per level; flat curves reproduce the "
                    "periodicity-insensitivity claim."
                ),
                table_headers=["Scheduler", "max relative variation"],
                table_rows=[
                    [scheduler, ratio(value)]
                    for scheduler, value in f7["max_relative_variation"].items()
                ],
            )
        )
    return figures


_EXTRACTORS = {
    "grid": _grid_figures,
    "figure6": _figure6_figures,
    "congested-moments": _congested_figures,
    "vesta": _vesta_figures,
    "periodic": _periodic_figures,
    "analysis": _analysis_figures,
}


def extract_figures(payload: Mapping) -> list[FigureData]:
    """The report figures of one spec-run payload.

    ``payload`` is the JSON dict produced by
    :func:`repro.config.run.run_spec` (``SpecRunResult.payload`` or a loaded
    ``results/*.json`` artifact).  Raises
    :class:`~repro.utils.validation.ValidationError` for payloads without a
    recognizable ``experiment.kind``.
    """
    try:
        kind = payload["experiment"]["kind"]
    except (KeyError, TypeError) as exc:
        raise ValidationError(
            "payload has no experiment.kind header; pass the JSON produced "
            "by 'repro run' (or SpecRunResult.payload)"
        ) from exc
    extractor = _EXTRACTORS.get(kind)
    if extractor is None:
        raise ValidationError(
            f"no figure extractor for experiment kind {kind!r}; "
            f"known kinds: {sorted(_EXTRACTORS)}"
        )
    return extractor(payload)

"""Per-file determinism rules ``D001``–``D005``.

Each rule targets one concrete way a change can silently poison the
determinism contract (see ``docs/determinism.md``): hidden global RNG
state, ambient wall-clock/entropy reads, unordered set iteration feeding
order-sensitive sinks, non-canonical JSON, and mutable default arguments.
All rules are pure :mod:`ast` visitors — no imports of the code under
analysis, so the linter can scan broken or dependency-missing trees.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Optional, Union

from .framework import Rule, register_rule

__all__ = [
    "UnseededRngRule",
    "WallClockRule",
    "UnorderedSetIterationRule",
    "UnsortedJsonRule",
    "MutableDefaultRule",
]


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class _ImportAwareRule(Rule):
    """Rule base that tracks import aliases so ``np.random`` and
    ``numpy.random`` (or ``from numpy import random as npr``) resolve to
    the same canonical dotted name."""

    def __init__(self, context):  # noqa: ANN001 - see framework.Rule
        super().__init__(context)
        #: local alias -> canonical module path (``np`` -> ``numpy``).
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    def canonical(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a call target, alias-resolved."""
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = self.aliases.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved


#: ``random`` module functions that consume the hidden global Mersenne
#: Twister state (anything on the module is suspect; these are the common
#: entry points, and the rule also flags any other ``random.*`` call).
_NUMPY_LEGACY_GLOBAL = (
    "numpy.random.seed",
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.randint",
    "numpy.random.random",
    "numpy.random.random_sample",
    "numpy.random.choice",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.uniform",
    "numpy.random.normal",
    "numpy.random.exponential",
    "numpy.random.poisson",
    "numpy.random.binomial",
    "numpy.random.standard_normal",
    "numpy.random.get_state",
    "numpy.random.set_state",
)


@register_rule
class UnseededRngRule(_ImportAwareRule):
    """D001 — unseeded or global-state RNG use.

    The determinism contract allows exactly one RNG pattern in the
    simulation packages: ``numpy.random.Generator`` objects spawned from
    a seed that is part of the experiment identity (``spawn_rngs`` /
    ``SeedSequence.spawn``).  Everything else is flagged:

    * any ``random.*`` module function — hidden global Mersenne state;
    * the legacy ``numpy.random.*`` global-state API (``seed``, ``rand``,
      ``randint``, ...) — process-wide state that parallel workers share;
    * ``numpy.random.default_rng()`` / ``Generator(...)`` / ``RandomState()``
      *without a seed argument* inside the strict-scope packages — OS
      entropy, different on every call.

    Seeded ``default_rng(seed)`` is allowed everywhere: the seed may be an
    arbitrary expression (the linter cannot prove it derived from the
    experiment seed — that is what ``docs/determinism.md`` review is for).
    """

    id: ClassVar[str] = "D001"
    title: ClassVar[str] = "unseeded or global-state RNG use"
    #: Unseeded-constructor strictness applies here; global-state APIs are
    #: flagged everywhere the rule runs (all files).
    strict_scopes: ClassVar[tuple[str, ...]] = (
        "simulator/",
        "faults/",
        "analysis/",
        "workload/",
    )

    def _in_strict_scope(self) -> bool:
        scoped = self.context.scope_path
        return any(scoped.startswith(prefix) for prefix in self.strict_scopes)

    def visit_Call(self, node: ast.Call) -> None:
        target = self.canonical(node.func)
        if target is not None:
            if target.startswith("random."):
                self.report(
                    node,
                    f"call to `{target}` uses the hidden global Mersenne "
                    "state; derive a `numpy.random.Generator` from the "
                    "experiment seed instead (see utils/rng.py)",
                )
            elif target in _NUMPY_LEGACY_GLOBAL:
                self.report(
                    node,
                    f"legacy numpy global-state RNG `{target}`; spawn a "
                    "`Generator` from the experiment seed instead "
                    "(process-wide state breaks parallel determinism)",
                )
            elif (
                target in ("numpy.random.default_rng", "numpy.random.RandomState")
                and not node.args
                and not node.keywords
                and self._in_strict_scope()
            ):
                self.report(
                    node,
                    f"`{target}()` without a seed draws OS entropy; pass a "
                    "seed derived from the experiment seed",
                )
        self.generic_visit(node)


@register_rule
class WallClockRule(_ImportAwareRule):
    """D002 — wall-clock / entropy reads in simulation, store or periodic
    code.

    Simulated time is the only clock those packages may consult: a
    ``time.time()`` or ``datetime.now()`` that leaks into a payload, a
    store key, or a scheduling decision makes reruns non-identical.
    ``os.urandom`` and ``uuid.uuid4`` are entropy reads with the same
    effect.  Timing *instrumentation* (``perf_counter`` for bench output
    that never enters a payload) is expected — waive it with a
    justification.
    """

    id: ClassVar[str] = "D002"
    title: ClassVar[str] = "wall-clock or entropy read in deterministic code"
    scopes: ClassVar[tuple[str, ...]] = (
        "simulator/",
        "store/",
        "periodic/",
        "core/",
        "faults/",
    )

    _FORBIDDEN: ClassVar[dict[str, str]] = {
        "time.time": "wall-clock read",
        "time.time_ns": "wall-clock read",
        "time.monotonic": "wall-clock read",
        "time.perf_counter": "wall-clock read (timing instrumentation "
        "must be waived, never enter payloads)",
        "datetime.datetime.now": "wall-clock read",
        "datetime.datetime.utcnow": "wall-clock read",
        "datetime.datetime.today": "wall-clock read",
        "datetime.date.today": "wall-clock read",
        "os.urandom": "OS entropy read",
        "uuid.uuid4": "random UUID (OS entropy)",
        "uuid.uuid1": "host/time-derived UUID",
        "secrets.token_bytes": "OS entropy read",
        "secrets.token_hex": "OS entropy read",
    }

    def visit_Call(self, node: ast.Call) -> None:
        target = self.canonical(node.func)
        if target is not None:
            # `from datetime import datetime` makes the canonical path
            # `datetime.datetime.now` already; a bare `datetime.now` from
            # that import style resolves the same way via the alias map.
            reason = self._FORBIDDEN.get(target)
            if reason is not None:
                self.report(
                    node,
                    f"`{target}` is a {reason}; simulation/store code must "
                    "be a pure function of its inputs",
                )
        self.generic_visit(node)


#: Call targets that neutralize set ordering before it matters.
_ORDER_SAFE_CONSUMERS = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "frozenset", "set"}
)


@register_rule
class UnorderedSetIterationRule(Rule):
    """D003 — iteration over a set/frozenset without ``sorted()``.

    Set iteration order depends on insertion history and hash seeds; a
    float accumulation or output record built by iterating a raw set can
    differ between engines or runs even when the set contents are equal.
    The rule flags ``for``-loops, comprehensions and ``list()``/``tuple()``
    conversions whose iterable is *syntactically* a set: a set literal, a
    set comprehension, a ``set(...)``/``frozenset(...)`` call, or a local
    name last bound to one of those.  Wrapping the iterable in ``sorted()``
    (or reducing with an order-insensitive consumer such as ``len``/``min``/
    ``max``/``any``/``all``) is the fix; ``sum()`` over floats is still
    order-sensitive, but the rule treats the explicit reducers as safe and
    leaves ``sum`` to review, flagging only raw iteration.
    """

    id: ClassVar[str] = "D003"
    title: ClassVar[str] = "unordered set iteration feeding ordered output"

    def __init__(self, context):  # noqa: ANN001 - see framework.Rule
        super().__init__(context)
        #: Names last bound to a syntactic set in the enclosing scope.
        self._set_names: set[str] = set()

    # -- inference ----------------------------------------------------- #
    def _is_setlike(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id in ("set", "frozenset"):
                return True
            # set-returning methods: `a.union(b)`, `a.intersection(b)`, ...
            if isinstance(callee, ast.Attribute) and callee.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_setlike(callee.value) or isinstance(
                    callee.value, ast.Name
                ) and callee.value.id in self._set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_setlike(node.left) or self._is_setlike(node.right)
        if isinstance(node, ast.Name):
            return node.id in self._set_names
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if self._is_setlike(node.value):
                    self._set_names.add(target.id)
                else:
                    self._set_names.discard(target.id)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name):
            annotation = ast.unparse(node.annotation) if node.annotation else ""
            setlike_ann = annotation.startswith(("set[", "Set[", "frozenset[", "FrozenSet["))
            if (node.value is not None and self._is_setlike(node.value)) or (
                node.value is None and setlike_ann
            ):
                self._set_names.add(node.target.id)
            elif node.value is not None:
                self._set_names.discard(node.target.id)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # `names |= {...}` keeps a set a set; any other aug-op on a known
        # set name leaves our inference unchanged (still a set).
        self.generic_visit(node)

    # -- sinks --------------------------------------------------------- #
    def _flag(self, iterable: ast.AST, what: str) -> None:
        self.report(
            iterable,
            f"{what} iterates a set/frozenset whose order is not defined; "
            "wrap the iterable in `sorted(...)` so downstream accumulation "
            "and payloads are order-stable",
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_setlike(node.iter):
            self._flag(node.iter, "for-loop")
        self.generic_visit(node)

    def _check_comprehensions(
        self,
        node: Union[ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp],
    ) -> None:
        for gen in node.generators:
            if self._is_setlike(gen.iter):
                # building *another* set from a set is order-free
                if isinstance(node, ast.SetComp):
                    continue
                self._flag(gen.iter, "comprehension")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehensions(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehensions(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehensions(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # `list({...})` / `tuple(names)` materialize the unstable order;
        # `sorted({...})`, `len(names)`, `min(...)` are the sanctioned forms.
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if (
                name in ("list", "tuple")
                and node.args
                and self._is_setlike(node.args[0])
            ):
                self._flag(node.args[0], f"`{name}(...)` conversion")
            elif name in _ORDER_SAFE_CONSUMERS:
                # do not descend into the first argument: sorted({...})
                # is exactly the sanctioned pattern.
                for arg in node.args[1:]:
                    self.visit(arg)
                for kw in node.keywords:
                    self.visit(kw.value)
                return
        self.generic_visit(node)


@register_rule
class UnsortedJsonRule(_ImportAwareRule):
    """D004 — ``json.dumps`` without ``sort_keys=True``.

    Store keys and cached payloads must serialize canonically;
    ``store/canonical.py`` is the sanctioned home of canonical JSON and
    the one file exempt from this rule.  Anywhere else, an unsorted dump
    whose output reaches a digest or a stored artifact makes byte-identity
    depend on dict insertion history across code versions.  Dumps that are
    deliberately insertion-ordered (display output, line-oriented logs)
    take a waiver with the justification inline.
    """

    id: ClassVar[str] = "D004"
    title: ClassVar[str] = "json.dumps without sort_keys=True"
    exempt_files: ClassVar[tuple[str, ...]] = ("store/canonical.py",)

    def visit_Call(self, node: ast.Call) -> None:
        target = self.canonical(node.func)
        if target in ("json.dumps", "json.dump"):
            sort_keys = None
            for keyword in node.keywords:
                if keyword.arg == "sort_keys":
                    sort_keys = keyword.value
            is_true = isinstance(sort_keys, ast.Constant) and sort_keys.value is True
            if not is_true:
                detail = (
                    "sort_keys is not the literal True"
                    if sort_keys is not None
                    else "sort_keys missing"
                )
                self.report(
                    node,
                    f"`{target}` without `sort_keys=True` ({detail}); "
                    "byte-identity then depends on dict insertion order — "
                    "use store/canonical.canonical_json or pass "
                    "sort_keys=True",
                )
        self.generic_visit(node)


@register_rule
class MutableDefaultRule(Rule):
    """D005 — mutable default argument.

    A ``def f(x, acc=[])`` default is evaluated once and shared across
    calls — classic cross-call state leakage, and in this codebase a
    cross-*scenario* leak if the function sits in a harness loop.  Flags
    list/dict/set literals and ``list()``/``dict()``/``set()``/comprehension
    defaults on functions, async functions and lambdas.
    """

    id: ClassVar[str] = "D005"
    title: ClassVar[str] = "mutable default argument"

    _MUTABLE_CALLS: ClassVar[frozenset[str]] = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id in self._MUTABLE_CALLS:
                return True
            if isinstance(callee, ast.Attribute) and callee.attr in self._MUTABLE_CALLS:
                return True
        return False

    def _check_args(self, node: ast.AST, args: ast.arguments) -> None:
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if self._is_mutable(default):
                self.report(
                    default,
                    "mutable default argument is evaluated once and shared "
                    "across calls; default to None and construct inside the "
                    "function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_args(node, node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_args(node, node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_args(node, node.args)
        self.generic_visit(node)

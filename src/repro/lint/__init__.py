"""``reprolint`` — static determinism/contract linter for this repo.

An AST-based analysis pass (stdlib only) that rejects determinism hazards
at review time instead of waiting for a fuzzer or a cache miss to expose
them.  See ``docs/determinism.md`` for the contract and the rule catalogue:

==== =========================================================
D001 unseeded or global-state RNG use
D002 wall-clock/entropy reads in simulation, store, periodic code
D003 unordered set iteration feeding ordered output
D004 ``json.dumps`` without ``sort_keys=True``
D005 mutable default arguments
C001 store-key dataclass fields must serialize canonically
O001 telemetry must stay invisible to store-key construction
==== =========================================================

Entry points: ``repro lint`` (CLI) and :func:`repro.lint.run_lint`.

This package is deliberately **not** part of the store code fingerprint
(``store/fingerprint.PRODUCING_PACKAGES``): the linter analyses producing
code, it never produces results, so editing a rule must not invalidate
caches.
"""

from .baseline import Baseline, BaselineError, load_baseline, write_baseline
from .framework import (
    PROJECT_RULE_REGISTRY,
    PROTECTED_PREFIXES,
    RULE_REGISTRY,
    Finding,
    all_rule_ids,
)
from .runner import LintResult, collect_files, format_json, format_text, run_lint

__all__ = [
    "Baseline",
    "BaselineError",
    "Finding",
    "LintResult",
    "PROJECT_RULE_REGISTRY",
    "PROTECTED_PREFIXES",
    "RULE_REGISTRY",
    "all_rule_ids",
    "collect_files",
    "format_json",
    "format_text",
    "load_baseline",
    "run_lint",
    "write_baseline",
]

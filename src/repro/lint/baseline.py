"""Baseline file support: grandfather old findings, never new ones.

A baseline is a committed JSON file listing findings that predate the
linter and are accepted for now.  Matching findings are suppressed;
anything not listed fails as usual, and baseline entries under the
protected package prefixes (``simulator/``, ``store/`` — see
:data:`repro.lint.framework.PROTECTED_PREFIXES`) are themselves an error:
the determinism core may not accumulate debt.  The shipped baseline
(``reprolint-baseline.json``) is empty — every finding in the tree was
fixed or waived in source — and the CI lint job keeps it that way.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .framework import PROTECTED_PREFIXES, Finding, package_path

__all__ = ["Baseline", "BaselineError", "load_baseline", "write_baseline"]

_BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Raised for malformed baseline files or protected-prefix entries."""


class Baseline:
    """An allow-list of finding identities ``(path, rule, line)``."""

    def __init__(self, entries: Iterable[tuple[str, str, int]] = ()):
        self.entries: set[tuple[str, str, int]] = set(entries)

    def __contains__(self, finding: Finding) -> bool:
        return finding.key() in self.entries

    def protected_entries(self) -> list[tuple[str, str, int]]:
        """Entries under the protected prefixes (each one is an error)."""
        return sorted(
            entry
            for entry in self.entries
            if package_path(entry[0]).startswith(PROTECTED_PREFIXES)
        )

    def filter(self, findings: list[Finding]) -> tuple[list[Finding], int]:
        """Split off baselined findings; returns (kept, n_suppressed)."""
        kept = [finding for finding in findings if finding not in self]
        return kept, len(findings) - len(kept)


def load_baseline(path: Path) -> Baseline:
    """Parse a baseline file, rejecting protected-prefix entries."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} must be an object with version={_BASELINE_VERSION}"
        )
    raw = payload.get("findings", [])
    if not isinstance(raw, list):
        raise BaselineError(f"baseline {path}: 'findings' must be a list")
    entries: list[tuple[str, str, int]] = []
    for item in raw:
        if (
            not isinstance(item, dict)
            or not isinstance(item.get("path"), str)
            or not isinstance(item.get("rule"), str)
            or not isinstance(item.get("line"), int)
        ):
            raise BaselineError(
                f"baseline {path}: each finding needs string 'path'/'rule' "
                "and integer 'line'"
            )
        entries.append((item["path"], item["rule"], item["line"]))
    baseline = Baseline(entries)
    protected = baseline.protected_entries()
    if protected:
        listing = ", ".join(f"{p}:{line} [{rule}]" for p, rule, line in protected)
        raise BaselineError(
            f"baseline {path} grandfathers findings under the protected "
            f"prefixes {PROTECTED_PREFIXES} — fix or waive them in source: "
            f"{listing}"
        )
    return baseline


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Serialize ``findings`` as a fresh baseline (``--write-baseline``)."""
    payload = {
        "version": _BASELINE_VERSION,
        "findings": [
            {"path": f.path, "rule": f.rule, "line": f.line}
            for f in sorted(findings, key=lambda f: f.key())
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

"""The ``reprolint`` scan driver: collect files, run rules, format output.

:func:`run_lint` is the single entry point used by the CLI, the tests and
CI.  It walks the requested paths, parses every ``.py`` file once, runs the
per-file rules (scope- and waiver-aware), runs the project rules over the
whole set, applies severity config and the optional baseline, and returns
a :class:`LintResult` whose :meth:`~LintResult.exit_code` encodes the
contract: ``0`` clean, ``1`` error findings present, ``2`` usage/baseline
problems (raised as exceptions by the callers).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence

# Import the rule modules for their registration side effects.
from . import contracts as _contracts  # noqa: F401
from . import obs_rules as _obs_rules  # noqa: F401
from . import rules as _rules  # noqa: F401
from .baseline import Baseline
from .framework import (
    PROJECT_RULE_REGISTRY,
    RULE_REGISTRY,
    FileContext,
    Finding,
    parse_waivers,
    severity_for,
)

__all__ = ["LintResult", "run_lint", "collect_files", "format_text", "format_json"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".repro-store"})


@dataclass
class LintResult:
    """Outcome of one scan."""

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0
    n_baselined: int = 0
    #: Files that failed to parse: (path, message). Reported, and an error.
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def exit_code(self) -> int:
        return 1 if (self.errors or self.parse_errors) else 0


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    out: set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    out.add(candidate)
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")
    return sorted(out)


def _relativize(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence[Path],
    baseline: Optional[Baseline] = None,
    severity_overrides: Optional[Mapping[str, str]] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Scan ``paths`` and return the aggregated result.

    ``root`` anchors the reported relative paths (defaults to the current
    working directory, which is what the CLI and CI want); baseline entries
    match against those reported paths.
    """
    root = root or Path.cwd()
    result = LintResult()
    contexts: list[FileContext] = []

    for file_path in collect_files(paths):
        rel = _relativize(file_path, root)
        source = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            result.parse_errors.append((rel, f"line {exc.lineno}: {exc.msg}"))
            continue
        contexts.append(
            FileContext(
                rel_path=rel,
                source=source,
                tree=tree,
                waivers=parse_waivers(source),
            )
        )
    result.n_files = len(contexts)

    findings: list[Finding] = []
    for context in contexts:
        for rule_id in sorted(RULE_REGISTRY):
            rule_cls = RULE_REGISTRY[rule_id]
            if not rule_cls.applies_to(context.rel_path):
                continue
            findings.extend(rule_cls(context).run())

    waivers_by_path = {context.rel_path: context.waivers for context in contexts}
    for rule_id in sorted(PROJECT_RULE_REGISTRY):
        for finding in PROJECT_RULE_REGISTRY[rule_id]().check(contexts):
            waived = waivers_by_path.get(finding.path, {}).get(finding.line, set())
            if finding.rule not in waived:
                findings.append(finding)

    if severity_overrides:
        findings = [
            Finding(
                rule=f.rule,
                path=f.path,
                line=f.line,
                message=f.message,
                severity=severity_for(f.rule, f.path, severity_overrides),
            )
            for f in findings
        ]

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    if baseline is not None:
        findings, result.n_baselined = baseline.filter(findings)
    result.findings = findings
    return result


def format_text(result: LintResult) -> str:
    """Human-oriented report, one finding per line, stable order."""
    lines: list[str] = []
    for rel, message in result.parse_errors:
        lines.append(f"{rel}: PARSE ERROR: {message}")
    for f in result.findings:
        lines.append(f"{f.path}:{f.line}: {f.rule} [{f.severity}] {f.message}")
    summary = (
        f"{len(result.errors)} error(s), {len(result.warnings)} warning(s) "
        f"in {result.n_files} file(s)"
    )
    if result.n_baselined:
        summary += f"; {result.n_baselined} baselined finding(s) suppressed"
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult) -> dict[str, object]:
    """Machine-oriented report — the schema ``--format json`` commits to.

    Top level: ``version`` (schema version), ``findings`` (sorted list of
    finding objects), ``counts`` (errors/warnings/files/baselined), and
    ``parse_errors``.  Additive changes bump nothing; removals or renames
    bump ``version``.
    """
    return {
        "version": 1,
        "findings": [f.as_dict() for f in result.findings],
        "counts": {
            "errors": len(result.errors),
            "warnings": len(result.warnings),
            "files": result.n_files,
            "baselined": result.n_baselined,
        },
        "parse_errors": [
            {"path": rel, "message": message}
            for rel, message in result.parse_errors
        ],
    }

"""Cross-module contract rule ``C001``: store-key serializability.

The content-addressed store keys every cell by the canonical JSON of the
model dataclasses that describe it (``store/canonical.py``).  That encoder
fails loudly on values with no stable form — but only at run time, on the
first campaign that touches the offending field.  ``C001`` moves the check
to lint time: it indexes every dataclass in the scanned tree, takes the
ones defined in ``config/spec.py`` and under ``experiments/`` as roots
(these are what key construction canonicalizes), walks the field-annotation
closure, and flags any field whose declared type the canonical encoder
cannot represent (``Callable``, ``Any``, ``bytes``, ``Path``, classes that
are neither dataclasses nor enums, unresolvable names).

The walk is purely static — annotations only, no imports of the code under
analysis — so a field annotated ``object`` passes (the encoder handles it
by raising loudly at runtime, which is the documented contract for
escape-hatch fields), while a field annotated with a concrete
non-serializable type fails here, before it ships.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import ClassVar, Optional

from .framework import FileContext, Finding, ProjectRule, register_project_rule

__all__ = ["StoreKeyContractRule"]

#: Leaf annotation names the canonical encoder represents directly.
_ALLOWED_LEAVES = frozenset(
    {
        "str",
        "int",
        "float",
        "bool",
        "None",
        "NoneType",
        "object",
    }
)

#: Generic heads whose arguments we recurse into.
_ALLOWED_CONTAINERS = frozenset(
    {
        "list",
        "tuple",
        "dict",
        "set",
        "frozenset",
        "List",
        "Tuple",
        "Dict",
        "Set",
        "FrozenSet",
        "Sequence",
        "Mapping",
        "MutableMapping",
        "Optional",
        "Union",
        "Literal",
        "Final",
    }
)

#: Leaf names with a concrete reason in the message (everything else
#: unresolvable gets the generic "cannot prove serializable" text).
_FORBIDDEN_LEAVES = {
    "Any": "erases the type entirely — the encoder cannot be checked",
    "Callable": "functions have no canonical form",
    "bytes": "the canonical encoder has no bytes representation",
    "bytearray": "the canonical encoder has no bytes representation",
    "complex": "the canonical encoder has no complex representation",
    "Path": "paths are machine-local state, not experiment identity",
}

#: Module roots whose attribute types we accept wholesale: numpy scalars
#: and arrays collapse via item()/tolist() in the encoder.
_ALLOWED_MODULE_ROOTS = frozenset({"np", "numpy"})


@dataclass
class _ClassInfo:
    """One class definition found during indexing."""

    name: str
    node: ast.ClassDef
    context: FileContext
    is_dataclass: bool
    is_enum: bool


def _decorator_name(node: ast.expr) -> Optional[str]:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return None


_ENUM_BASES = frozenset({"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"})


def _index_classes(files: list[FileContext]) -> dict[str, _ClassInfo]:
    """Name -> class info over the whole scanned tree.

    Resolution is by bare class name — this codebase keeps model class
    names unique, and a duplicate would shadow arbitrarily; the first
    definition (stable file order) wins.
    """
    index: dict[str, _ClassInfo] = {}
    for context in files:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            is_dc = any(
                _decorator_name(dec) == "dataclass" for dec in node.decorator_list
            )
            base_names = {
                base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
                for base in node.bases
            }
            is_enum = bool(base_names & _ENUM_BASES)
            if node.name not in index:
                index[node.name] = _ClassInfo(
                    name=node.name,
                    node=node,
                    context=context,
                    is_dataclass=is_dc,
                    is_enum=is_enum,
                )
    return index


def _index_aliases(files: list[FileContext]) -> dict[str, ast.expr]:
    """Module-level type aliases (``Body = Union[A, B]``, ``X = A | B``).

    Only shapes that are recognizably type expressions are recorded — a
    ``Subscript`` (``Union[...]``, ``Optional[...]``, ``list[...]``) or a
    ``|``-union — so ordinary value assignments never masquerade as types.
    """
    aliases: dict[str, ast.expr] = {}
    for context in files:
        for stmt in context.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(
                    stmt.value,
                    (ast.Subscript, ast.BinOp),
                )
            ):
                name = stmt.targets[0].id
                if name not in aliases:
                    aliases[name] = stmt.value
    return aliases


def _is_classvar(annotation: ast.expr) -> bool:
    head = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    name = head.attr if isinstance(head, ast.Attribute) else getattr(head, "id", "")
    return name == "ClassVar"


@register_project_rule
class StoreKeyContractRule(ProjectRule):
    """C001 — dataclasses reachable from store keys must serialize
    canonically (see module docstring)."""

    id: ClassVar[str] = "C001"
    title: ClassVar[str] = "store-key dataclass field not canonically serializable"

    #: Package-relative locations whose dataclasses seed the walk: the
    #: declarative spec layer and the experiment models are exactly what
    #:  grid/study key construction canonicalizes.
    ROOT_LOCATIONS: ClassVar[tuple[str, ...]] = ("config/spec.py", "experiments/")

    def _roots(self, index: dict[str, _ClassInfo]) -> list[_ClassInfo]:
        roots = []
        for info in index.values():
            if not info.is_dataclass:
                continue
            scoped = info.context.scope_path
            if scoped == self.ROOT_LOCATIONS[0] or scoped.startswith(
                self.ROOT_LOCATIONS[1:]
            ):
                roots.append(info)
        return sorted(roots, key=lambda info: (info.context.rel_path, info.node.lineno))

    # ------------------------------------------------------------------ #
    def _check_annotation(
        self,
        annotation: ast.expr,
        index: dict[str, _ClassInfo],
        queue: list[_ClassInfo],
        problems: list[str],
        _alias_depth: int = 0,
    ) -> None:
        """Validate one annotation expression, collecting problems and
        enqueueing referenced dataclasses for their own walk."""

        def recurse(node: ast.expr) -> None:
            self._check_annotation(node, index, queue, problems, _alias_depth)

        if isinstance(annotation, ast.Constant):
            if annotation.value is None or annotation.value is Ellipsis:
                return
            if isinstance(annotation.value, str):
                # string (forward-reference) annotation: parse and recurse
                try:
                    parsed = ast.parse(annotation.value, mode="eval").body
                except SyntaxError:
                    problems.append(f"unparseable annotation {annotation.value!r}")
                    return
                recurse(parsed)
                return
            return
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            recurse(annotation.left)
            recurse(annotation.right)
            return
        if isinstance(annotation, ast.Subscript):
            head = annotation.value
            head_name = (
                head.attr if isinstance(head, ast.Attribute) else getattr(head, "id", "")
            )
            if head_name in _ALLOWED_CONTAINERS:
                if head_name == "Literal":
                    return  # literal values are primitives by construction
                inner = annotation.slice
                elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
                for element in elements:
                    recurse(element)
                return
            # subscripted non-container (a generic dataclass, Callable[...])
            recurse(head)
            return
        if isinstance(annotation, ast.Tuple):
            for element in annotation.elts:
                recurse(element)
            return
        if isinstance(annotation, ast.Attribute):
            root = annotation
            while isinstance(root, ast.Attribute):
                root = root.value
            root_name = getattr(root, "id", "")
            if root_name in _ALLOWED_MODULE_ROOTS:
                return
            name = annotation.attr
        elif isinstance(annotation, ast.Name):
            name = annotation.id
        else:
            problems.append(
                f"annotation shape `{ast.unparse(annotation)}` not analyzable"
            )
            return

        if name in _ALLOWED_LEAVES or name in _ALLOWED_CONTAINERS:
            return
        if name in _FORBIDDEN_LEAVES:
            problems.append(f"`{name}`: {_FORBIDDEN_LEAVES[name]}")
            return
        info = index.get(name)
        if info is None:
            alias = self._aliases.get(name)
            if alias is not None and _alias_depth < 8:
                self._check_annotation(
                    alias, index, queue, problems, _alias_depth + 1
                )
                return
            problems.append(
                f"`{name}` is not resolvable to a dataclass or enum in the "
                "scanned tree — cannot prove it serializes canonically"
            )
            return
        if info.is_enum:
            return
        if info.is_dataclass:
            queue.append(info)
            return
        problems.append(
            f"`{name}` is a plain class (neither dataclass nor enum); "
            "store/canonical.canonicalize raises on it"
        )

    # ------------------------------------------------------------------ #
    def check(self, files: list[FileContext]) -> list[Finding]:
        index = _index_classes(files)
        self._aliases = _index_aliases(files)
        findings: list[Finding] = []
        queue = self._roots(index)
        seen: set[str] = set()
        while queue:
            info = queue.pop(0)
            if info.name in seen:
                continue
            seen.add(info.name)
            for stmt in info.node.body:
                if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                    stmt.target, ast.Name
                ):
                    continue
                if _is_classvar(stmt.annotation):
                    continue
                problems: list[str] = []
                self._check_annotation(stmt.annotation, index, queue, problems)
                for problem in problems:
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=info.context.rel_path,
                            line=stmt.lineno,
                            message=(
                                f"field `{stmt.target.id}` of store-key "
                                f"dataclass `{info.name}`: {problem}"
                            ),
                        )
                    )
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return findings

"""Cross-module contract rule ``O001``: telemetry isolation.

The observability layer (:mod:`repro.obs`) must be a pure *observer* of
the pipeline: enabling ``--trace``/``--metrics`` may never change a
payload, a store key or a cached artefact.  The dynamic half of that
contract is ``tests/test_obs_isolation.py`` (byte-identity of payloads
with telemetry on vs off); ``O001`` is the static half, rejecting the two
ways telemetry could leak into experiment identity before they ship:

1. **Key-construction imports** — ``store/canonical.py`` and
   ``store/fingerprint.py`` define what a store key *is* (the canonical
   JSON encoder and the producing-code fingerprint).  An import of
   ``repro.obs`` there would let recorder state or the obs source tree
   influence keys, so any such import is flagged.  (The store *handle*
   in ``store/store.py`` may observe its own latencies — wrappers around
   ``get``/``put`` never touch key bytes.)

2. **Type reachability** — a telemetry type (anything defined under
   ``obs/``) appearing in the field-annotation closure of the store-key
   dataclasses (the same roots C001 walks: ``config/spec.py`` and
   ``experiments/``) would make recorder state part of experiment
   identity.  The walk is purely static, like C001's: annotations only,
   no imports of the code under analysis.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from .contracts import StoreKeyContractRule, _index_classes
from .framework import FileContext, Finding, ProjectRule, register_project_rule

__all__ = ["TelemetryIsolationRule"]

#: Package-relative modules that define store-key identity; no ``repro.obs``
#: import may appear in them.
_KEY_MODULES = ("store/canonical.py", "store/fingerprint.py")


def _imports_obs(node: ast.AST) -> bool:
    """Does this import statement pull in ``repro.obs`` (any spelling)?"""
    if isinstance(node, ast.Import):
        return any(
            alias.name == "repro.obs" or alias.name.startswith("repro.obs.")
            for alias in node.names
        )
    if isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if module == "repro.obs" or module.startswith("repro.obs."):
            return True
        if module == "repro" and any(alias.name == "obs" for alias in node.names):
            return True
        # Relative spellings from inside the package (`from ..obs import x`).
        if node.level and (module == "obs" or module.startswith("obs.")):
            return True
    return False


@register_project_rule
class TelemetryIsolationRule(ProjectRule):
    """O001 — telemetry must stay invisible to store-key construction
    (see module docstring)."""

    id: ClassVar[str] = "O001"
    title: ClassVar[str] = "telemetry reachable from store-key construction"

    def check(self, files: list[FileContext]) -> list[Finding]:
        findings: list[Finding] = []

        # 1. No repro.obs import in the key-defining store modules.
        for context in files:
            if context.scope_path not in _KEY_MODULES:
                continue
            for node in ast.walk(context.tree):
                if isinstance(node, (ast.Import, ast.ImportFrom)) and _imports_obs(node):
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=context.rel_path,
                            line=node.lineno,
                            message=(
                                f"`{context.scope_path}` defines store-key "
                                "identity and must not import repro.obs — "
                                "telemetry state could leak into keys"
                            ),
                        )
                    )

        # 2. No obs-defined type in the store-key dataclass closure.  The
        # walk mirrors C001's: same roots, same index, following dataclass
        # field annotations — but the only offence here is resolving to a
        # class defined under obs/ (C001 already polices everything else).
        index = _index_classes(files)
        queue = StoreKeyContractRule()._roots(index)
        seen: set[str] = set()
        while queue:
            info = queue.pop(0)
            if info.name in seen:
                continue
            seen.add(info.name)
            for stmt in info.node.body:
                if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                    stmt.target, ast.Name
                ):
                    continue
                for node in ast.walk(stmt.annotation):
                    name = None
                    if isinstance(node, ast.Name):
                        name = node.id
                    elif isinstance(node, ast.Attribute):
                        name = node.attr
                    elif isinstance(node, ast.Constant) and isinstance(
                        node.value, str
                    ):
                        # Forward reference: a bare class name resolves too.
                        name = node.value
                    if name is None:
                        continue
                    referenced = index.get(name)
                    if referenced is None:
                        continue
                    if referenced.context.scope_path.startswith("obs/"):
                        findings.append(
                            Finding(
                                rule=self.id,
                                path=info.context.rel_path,
                                line=stmt.lineno,
                                message=(
                                    f"field `{stmt.target.id}` of store-key "
                                    f"dataclass `{info.name}` references "
                                    f"telemetry type `{name}` (defined in "
                                    f"{referenced.context.scope_path}) — "
                                    "recorder state must never be part of "
                                    "experiment identity"
                                ),
                            )
                        )
                    elif referenced.is_dataclass:
                        queue.append(referenced)

        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return findings

"""Rule framework of ``reprolint``: findings, registry, waivers, severity.

Every determinism guarantee of this reproduction (three bit-identical
engines, byte-identical parallel campaigns, stable store keys) is enforced
*dynamically* by equivalence tests — after a hazard has already shipped.
``reprolint`` is the static half of that contract: an AST pass (stdlib
:mod:`ast`, no dependencies) that rejects determinism hazards at review
time.  This module is the machinery; the rules themselves live in
:mod:`repro.lint.rules` (per-file AST rules ``D0xx``) and
:mod:`repro.lint.contracts` (cross-module contract rules ``C0xx``).

Three mechanisms keep the gate workable on a living tree:

* **inline waivers** — ``# reprolint: ignore[D001]`` (optionally with a
  justification after a dash) suppresses named rules on that line;
* **a committed baseline** (:mod:`repro.lint.baseline`) grandfathers
  pre-existing findings without blessing new ones — except under the
  :data:`PROTECTED_PREFIXES`, where baselining is itself an error;
* **per-path severity config** — :func:`severity_for` downgrades rules to
  ``warning`` under configured path prefixes (warnings are reported but do
  not fail the run).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Mapping, Optional

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "ProjectRule",
    "RULE_REGISTRY",
    "PROJECT_RULE_REGISTRY",
    "register_rule",
    "register_project_rule",
    "all_rule_ids",
    "package_path",
    "parse_waivers",
    "severity_for",
    "PROTECTED_PREFIXES",
    "SEVERITIES",
]

#: Accepted severity levels, in increasing order of consequence.  ``error``
#: findings fail the run; ``warning`` findings are reported only.
SEVERITIES = ("warning", "error")

#: Package-relative path prefixes whose findings may never be baselined:
#: the simulator engines and the content-addressed store are the two layers
#: whose determinism every other guarantee rests on, so a hazard there must
#: be fixed or explicitly waived in the source, never grandfathered.
PROTECTED_PREFIXES = ("simulator/", "store/")

_RULE_ID_RE = re.compile(r"^[DCO][0-9]{3}$")

#: ``# reprolint: ignore[D001]`` or ``# reprolint: ignore[D001,D003] — why``.
_WAIVER_RE = re.compile(r"#\s*reprolint:\s*ignore\[([A-Z0-9,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the path as reported to the user (relative to the scanned
    root); ``line`` is 1-based.  The triple ``(path, rule, line)`` is the
    baseline identity of a finding (see :mod:`repro.lint.baseline`).
    """

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"

    def key(self) -> tuple[str, str, int]:
        """Baseline identity of this finding."""
        return (self.path, self.rule, self.line)

    def as_dict(self) -> dict[str, object]:
        """JSON form — the schema the ``--format json`` output commits to."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
        }


def package_path(rel_path: str) -> str:
    """The package-relative portion of a reported path.

    Rule scopes are phrased against the ``repro`` package layout
    (``simulator/engine.py``), while scans may start anywhere
    (``src/repro/...``, a test fixture tree, an installed checkout).  The
    portion after the last ``repro/`` segment is the scope key; paths with
    no ``repro/`` segment (fixture trees) are used as-is.
    """
    normalized = rel_path.replace("\\", "/")
    marker = "repro/"
    index = normalized.rfind(marker)
    if index >= 0:
        return normalized[index + len(marker):]
    return normalized


def parse_waivers(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule IDs waived on that line.

    A waiver names the rules it silences — ``# reprolint: ignore[D001]`` —
    and may carry a justification after the bracket.  Several IDs separate
    with commas.  Waivers are line-scoped: they apply to findings anchored
    on the same physical line.
    """
    waivers: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _WAIVER_RE.search(line)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        waivers.setdefault(lineno, set()).update(ids)
    return waivers


def severity_for(
    rule_id: str,
    rel_path: str,
    overrides: Optional[Mapping[str, str]] = None,
    default: str = "error",
) -> str:
    """Severity of ``rule_id`` findings at ``rel_path``.

    ``overrides`` maps path prefixes (against :func:`package_path`) or
    ``"prefix:RULE"`` pairs to severities; the longest matching prefix wins,
    and a rule-specific entry beats a path-wide one at the same prefix.
    Everything defaults to ``error`` — this reproduction's core packages
    earn no leniency — but e.g. ``{"report/": "warning"}`` relaxes a
    presentation layer wholesale.
    """
    if overrides:
        scoped = package_path(rel_path)
        best: Optional[tuple[int, int, str]] = None
        for pattern, severity in overrides.items():
            if severity not in SEVERITIES:
                raise ValueError(
                    f"unknown severity {severity!r} for {pattern!r}; "
                    f"choose one of {SEVERITIES}"
                )
            prefix, _, rule = pattern.partition(":")
            if rule and rule != rule_id:
                continue
            if not scoped.startswith(prefix):
                continue
            candidate = (len(prefix), 1 if rule else 0, severity)
            if best is None or candidate[:2] > best[:2]:
                best = candidate
        if best is not None:
            return best[2]
    return default


@dataclass
class FileContext:
    """Everything a per-file rule may look at for one source file."""

    #: Path as reported in findings (relative to the scanned root).
    rel_path: str
    #: Raw source text (rules occasionally need the physical lines).
    source: str
    #: Parsed module body.
    tree: ast.Module
    #: Line number -> waived rule IDs (see :func:`parse_waivers`).
    waivers: dict[int, set[str]] = field(default_factory=dict)

    @property
    def scope_path(self) -> str:
        """Package-relative path used for rule scoping."""
        return package_path(self.rel_path)


class Rule(ast.NodeVisitor):
    """Base class of per-file AST rules.

    Subclasses set the class attributes, implement ``visit_*`` methods and
    call :meth:`report` for each violation.  Registration is explicit via
    :func:`register_rule` so a rule cannot exist without a stable ID — and
    the self-check test asserts every shipped ID is present, so deleting a
    rule fails CI loudly.
    """

    #: Stable identifier (``D0xx`` determinism, ``C0xx`` contract).
    id: ClassVar[str] = ""
    #: One-line summary shown by ``repro lint --list-rules`` and the docs.
    title: ClassVar[str] = ""
    #: Package-relative path prefixes the rule applies to; empty = all files.
    scopes: ClassVar[tuple[str, ...]] = ()
    #: Package-relative paths the rule never applies to (exact file matches).
    exempt_files: ClassVar[tuple[str, ...]] = ()

    def __init__(self, context: FileContext):
        self.context = context
        self.findings: list[Finding] = []

    # ------------------------------------------------------------------ #
    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        """Whether this rule runs on ``rel_path`` at all."""
        scoped = package_path(rel_path)
        if scoped in cls.exempt_files:
            return False
        if not cls.scopes:
            return True
        return any(scoped.startswith(prefix) for prefix in cls.scopes)

    def report(self, node: ast.AST, message: str) -> None:
        """Record one finding anchored at ``node`` (waivers apply here)."""
        line = getattr(node, "lineno", 1)
        waived = self.context.waivers.get(line, set())
        if self.id in waived:
            return
        self.findings.append(
            Finding(
                rule=self.id,
                path=self.context.rel_path,
                line=line,
                message=message,
            )
        )

    def run(self) -> list[Finding]:
        """Visit the whole module and return the findings."""
        self.visit(self.context.tree)
        return self.findings


class ProjectRule:
    """Base class of cross-module rules (one run per scan, not per file).

    Subclasses implement :meth:`check` over the full set of parsed files —
    the shape needed by contract rules that walk a graph spanning modules
    (e.g. the dataclass-serializability closure of C001).  Waivers still
    apply: findings anchored on a waived line are dropped by the runner.
    """

    id: ClassVar[str] = ""
    title: ClassVar[str] = ""

    def check(self, files: list[FileContext]) -> list[Finding]:
        """Return the findings over the whole scanned tree."""
        raise NotImplementedError


RULE_REGISTRY: dict[str, type[Rule]] = {}
PROJECT_RULE_REGISTRY: dict[str, type[ProjectRule]] = {}


def _check_id(rule_id: str) -> None:
    if not _RULE_ID_RE.match(rule_id):
        raise ValueError(
            f"rule id {rule_id!r} must match D0xx/C0xx/O0xx "
            "(stable, grep-able IDs)"
        )


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a per-file rule to the registry."""
    _check_id(cls.id)
    if cls.id in RULE_REGISTRY or cls.id in PROJECT_RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def register_project_rule(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a cross-module rule to the registry."""
    _check_id(cls.id)
    if cls.id in RULE_REGISTRY or cls.id in PROJECT_RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    PROJECT_RULE_REGISTRY[cls.id] = cls
    return cls


def all_rule_ids() -> list[str]:
    """Every registered rule ID, sorted (the CI no-deleted-rules check)."""
    return sorted(RULE_REGISTRY) + sorted(PROJECT_RULE_REGISTRY)


def iter_rule_classes() -> Iterable[type[Rule]]:
    """Registered per-file rule classes in stable ID order."""
    for rule_id in sorted(RULE_REGISTRY):
        yield RULE_REGISTRY[rule_id]

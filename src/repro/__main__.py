"""``python -m repro`` — module entry point for the :mod:`repro.cli` command.

Lets the CLI run without installation::

    PYTHONPATH=src python -m repro quickstart
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())

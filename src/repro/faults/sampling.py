"""Seeded stochastic fault processes, realized into concrete timelines.

Fault *processes* (``[faults.random_windows]`` / ``[faults.random_crashes]``
in a spec) are Poisson processes: exponential inter-arrival times over a
finite horizon.  They are sampled **at build time** through the same
``spawn_rngs`` determinism contract as every other stochastic component, so
the engines only ever see concrete :class:`~repro.faults.model.FaultModel`
timelines — a faulted campaign is byte-reproducible under any ``workers=N``
and its store keys cover the exact sampled timeline.
"""

from __future__ import annotations

from typing import Sequence

from repro.faults.model import BandwidthWindow, CrashEvent
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_in_range, check_positive

__all__ = ["sample_windows", "sample_crashes"]


def sample_windows(
    *,
    rate: float,
    duration: float,
    factor: float,
    horizon: float,
    rng: RngLike,
) -> tuple[BandwidthWindow, ...]:
    """Sample brown-out windows from a Poisson arrival process.

    Window starts arrive with exponential inter-arrival times of mean
    ``1 / rate`` over ``[0, horizon)``; each window degrades the PFS to
    ``factor`` of nominal for ``duration`` seconds.  Windows may overlap —
    the timeline applies the worst factor where they do.
    """
    check_positive("random_windows rate", rate)
    check_positive("random_windows duration", duration)
    # factor itself is validated by BandwidthWindow ([0, 1)).
    check_positive("random_windows horizon", horizon)
    generator = as_rng(rng)
    windows: list[BandwidthWindow] = []
    t = float(generator.exponential(1.0 / rate))
    while t < horizon:
        windows.append(BandwidthWindow(start=t, end=t + duration, factor=factor))
        t += float(generator.exponential(1.0 / rate))
    return tuple(windows)


def sample_crashes(
    app_names: Sequence[str],
    *,
    rate: float,
    checkpoint_io: float,
    horizon: float,
    rng: RngLike,
) -> tuple[CrashEvent, ...]:
    """Sample per-application crash times from independent Poisson processes.

    Each application (in declaration order — the order fixes which stream
    it consumes) crashes with exponential inter-arrival times of mean
    ``1 / rate`` over ``[0, horizon)``; every crash re-reads
    ``checkpoint_io`` bytes of recovery I/O.
    """
    check_positive("random_crashes rate", rate)
    check_in_range("random_crashes checkpoint_io", checkpoint_io, low=0.0)
    check_positive("random_crashes horizon", horizon)
    generator = as_rng(rng)
    crashes: list[CrashEvent] = []
    for name in app_names:
        t = float(generator.exponential(1.0 / rate))
        while t < horizon:
            crashes.append(
                CrashEvent(app_name=name, time=t, checkpoint_io=checkpoint_io)
            )
            t += float(generator.exponential(1.0 / rate))
    return tuple(crashes)

"""Deterministic fault models: PFS brown-outs and application crash/restart.

The paper's platform model is perfectly healthy — the parallel file system
delivers its nominal aggregate bandwidth ``B`` forever and no application
ever dies.  This module adds the two fault families the related failure
literature models (limplocked storage running at a fraction of nominal
speed, crash/restart with recovery traffic) as *data*, not behaviour:

* :class:`BandwidthWindow` — over ``[start, end)`` the effective aggregate
  PFS bandwidth is ``factor * B`` (``factor == 0`` is a full blackout;
  ``end`` may be ``inf`` for a permanent degradation).  Only the shared
  PFS is affected: per-node caps and burst-buffer ingest are fault-free.
* :class:`CrashEvent` — at ``time`` the named application loses its
  in-flight instance, re-reads its last checkpoint (``checkpoint_io``
  bytes of recovery I/O that competes for bandwidth like any transfer)
  and restarts the instance from scratch.

A :class:`FaultModel` is a frozen aggregate of fully *realized* timelines:
stochastic fault processes are sampled into concrete windows and crashes at
build time (:mod:`repro.faults.sampling`), never inside the engines, so a
faulted run is byte-reproducible regardless of worker count.  Being plain
frozen dataclasses, fault models canonicalize like every other spec object
and therefore participate in content-addressed store keys automatically —
changing any fault parameter re-keys every affected cell.

:class:`FaultTimeline` is the single shared interpreter of a model: a
forward-only cursor that both engines (:mod:`repro.simulator.engine` and
:mod:`repro.simulator.reference`) drive identically, so the fault
arithmetic cannot diverge between them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.utils.validation import ValidationError, check_non_negative

__all__ = [
    "BandwidthWindow",
    "CrashEvent",
    "FaultModel",
    "FaultTimeline",
]

#: Same time slack as the engines: boundaries reached within 1e-9 s count
#: as crossed, so a float shortfall never re-arms a past window.
_TIME_EPS = 1e-9


@dataclass(frozen=True)
class BandwidthWindow:
    """Effective PFS bandwidth is ``factor * B`` over ``[start, end)``.

    ``factor`` must lie in ``[0, 1)`` — a window at factor 1 would be a
    no-op, and anything above nominal is not a fault.  ``end`` may be
    ``math.inf`` (the degradation never lifts).  Overlapping windows are
    allowed; where they overlap the *worst* (smallest) factor applies.
    """

    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        check_non_negative("fault window start", self.start)
        if not self.end > self.start:
            raise ValidationError(
                f"fault window end must be > start, got [{self.start}, {self.end})"
            )
        if math.isnan(self.end):
            raise ValidationError("fault window end must not be NaN")
        if not 0.0 <= self.factor < 1.0:
            raise ValidationError(
                "fault window factor must lie in [0, 1) — 0 is a blackout, "
                f"1 would be a no-op — got {self.factor!r}"
            )
        object.__setattr__(self, "start", float(self.start))
        object.__setattr__(self, "end", float(self.end))
        object.__setattr__(self, "factor", float(self.factor))


@dataclass(frozen=True)
class CrashEvent:
    """Application ``app_name`` crashes at ``time`` and re-reads its checkpoint.

    The crash discards the in-flight instance (partial compute progress and
    any unfinished transfer), charges ``checkpoint_io`` bytes of recovery
    I/O, then restarts the same instance from scratch.  A crash aimed at an
    application that has not been released yet, or that already finished,
    is a no-op.
    """

    app_name: str
    time: float
    checkpoint_io: float = 0.0

    def __post_init__(self) -> None:
        if not self.app_name:
            raise ValidationError("crash event needs a non-empty application name")
        check_non_negative("crash time", self.time)
        check_non_negative("crash checkpoint_io", self.checkpoint_io)
        object.__setattr__(self, "time", float(self.time))
        object.__setattr__(self, "checkpoint_io", float(self.checkpoint_io))


@dataclass(frozen=True)
class FaultModel:
    """A fully realized fault timeline for one scenario.

    Windows and crashes are stored in the order they were declared/sampled
    (the canonical store key preserves that order); :class:`FaultTimeline`
    sorts its own working copies, so declaration order never changes the
    simulated timeline.
    """

    windows: tuple[BandwidthWindow, ...] = ()
    crashes: tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "windows", tuple(self.windows))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        for window in self.windows:
            if not isinstance(window, BandwidthWindow):
                raise ValidationError(
                    f"FaultModel.windows must hold BandwidthWindow, "
                    f"got {type(window).__name__}"
                )
        for crash in self.crashes:
            if not isinstance(crash, CrashEvent):
                raise ValidationError(
                    f"FaultModel.crashes must hold CrashEvent, "
                    f"got {type(crash).__name__}"
                )

    @property
    def is_empty(self) -> bool:
        """True when the model injects nothing at all."""
        return not self.windows and not self.crashes

    def crash_app_names(self) -> set[str]:
        """Names of every application the crash timeline touches."""
        return {crash.app_name for crash in self.crashes}


def _degradation_segments(
    windows: tuple[BandwidthWindow, ...],
) -> list[tuple[float, float, float]]:
    """Normalize possibly-overlapping windows into disjoint segments.

    Returns ``(start, end, factor)`` triples sorted by start, covering only
    degraded time (factor < 1), with the minimum factor where windows
    overlap.  Segment arithmetic runs once per simulation, so the O(W²)
    cover test over the handful of windows a model carries is irrelevant.
    """
    if not windows:
        return []
    boundaries: set[float] = set()
    for w in windows:
        boundaries.add(w.start)
        if math.isfinite(w.end):
            boundaries.add(w.end)
    cuts = sorted(boundaries)
    edges = list(zip(cuts, cuts[1:])) + [(cuts[-1], math.inf)]
    segments: list[tuple[float, float, float]] = []
    for lo, hi in edges:
        factor = 1.0
        for w in windows:
            if w.start <= lo < w.end:
                factor = min(factor, w.factor)
        if factor < 1.0:
            if segments and segments[-1][1] == lo and segments[-1][2] == factor:
                segments[-1] = (segments[-1][0], hi, factor)
            else:
                segments.append((lo, hi, factor))
    return segments


@dataclass
class FaultTimeline:
    """Forward-only cursor over a realized :class:`FaultModel`.

    One timeline serves one simulation run: the cursor methods assume times
    are queried in non-decreasing order (simulation time only advances).
    Both engines share this class, so degradation factors, breakpoints and
    crash ordering are identical by construction.
    """

    model: FaultModel
    _segments: list[tuple[float, float, float]] = field(init=False)
    _seg_idx: int = field(init=False, default=0)
    _crashes: list[CrashEvent] = field(init=False)
    _crash_idx: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._segments = _degradation_segments(self.model.windows)
        # Simultaneous crashes fire in name order (deterministic regardless
        # of declaration/sampling order).
        self._crashes = sorted(
            self.model.crashes, key=lambda c: (c.time, c.app_name)
        )

    # ------------------------------------------------------------------ #
    # Bandwidth degradation
    # ------------------------------------------------------------------ #
    def factor_at(self, time: float) -> float:
        """Effective bandwidth factor for the interval starting at ``time``."""
        segments = self._segments
        i = self._seg_idx
        while i < len(segments) and time >= segments[i][1] - _TIME_EPS:
            i += 1
        self._seg_idx = i
        if i < len(segments) and time >= segments[i][0] - _TIME_EPS:
            return segments[i][2]
        return 1.0

    def next_boundary(self, time: float) -> float | None:
        """Next instant (strictly after ``time``) at which the factor changes."""
        for start, end, _factor in self._segments[self._seg_idx :]:
            if start > time + _TIME_EPS:
                return start
            if end > time + _TIME_EPS:
                return end if math.isfinite(end) else None
        return None

    def active_windows(self, time: float) -> list[BandwidthWindow]:
        """The declared windows covering ``time`` (for diagnostics)."""
        return [
            w
            for w in self.model.windows
            if w.start - _TIME_EPS <= time < w.end - _TIME_EPS
        ]

    # ------------------------------------------------------------------ #
    # Crash events
    # ------------------------------------------------------------------ #
    def peek_crash_time(self) -> float | None:
        """Time of the next unfired crash, or ``None``."""
        if self._crash_idx < len(self._crashes):
            return self._crashes[self._crash_idx].time
        return None

    def pop_due_crashes(self, time: float) -> list[CrashEvent]:
        """Pop every crash due at or before ``time`` (plus the usual slack)."""
        due: list[CrashEvent] = []
        crashes = self._crashes
        i = self._crash_idx
        while i < len(crashes) and crashes[i].time <= time + _TIME_EPS:
            due.append(crashes[i])
            i += 1
        self._crash_idx = i
        return due

"""Deterministic fault injection: PFS brown-outs and crash/restart.

See :mod:`repro.faults.model` for the fault vocabulary and
:mod:`repro.faults.sampling` for the seeded stochastic processes.
``docs/faults.md`` documents the semantics and the determinism contract.
"""

from repro.faults.model import (
    BandwidthWindow,
    CrashEvent,
    FaultModel,
    FaultTimeline,
)
from repro.faults.sampling import sample_crashes, sample_windows

__all__ = [
    "BandwidthWindow",
    "CrashEvent",
    "FaultModel",
    "FaultTimeline",
    "sample_crashes",
    "sample_windows",
]

"""Metrics snapshot sinks: JSONL stream + Prometheus text exposition.

``--metrics FILE`` appends one ``repro-metrics/1`` JSON object per line —
a full registry snapshot stamped with a sequence number, the monotonic
elapsed time, and the reason the snapshot was taken (stage end, campaign
tick, final) — and writes the final snapshot a second time as Prometheus
text exposition format next to it (``FILE`` + ``.prom``) so a scrape-based
stack can ingest the same numbers without a converter.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Dict, List, Mapping, Union

from repro.obs.telemetry import Recorder

__all__ = ["MetricsWriter", "prometheus_text", "write_prometheus"]

METRICS_SCHEMA = "repro-metrics/1"


class MetricsWriter:
    """Appends registry snapshots to a JSONL file, one object per line."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Truncate: each enabled run owns its metrics file from the start.
        self.path.write_text("", encoding="utf-8")
        self._seq = 0
        self._lock = threading.Lock()

    def write_snapshot(self, recorder: Recorder, reason: str) -> None:
        snap = recorder.snapshot()
        with self._lock:
            line: Dict[str, object] = {
                "schema": METRICS_SCHEMA,
                "seq": self._seq,
                "reason": reason,
            }
            line.update(snap)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(line, sort_keys=True) + "\n")
            self._seq += 1


def _labels_text(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _num(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(recorder: Recorder) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    registry = recorder.registry
    lines: List[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in registry.counters():
        type_line(counter.name, "counter")
        lines.append(
            f"{counter.name}{_labels_text(dict(counter.labels))} "
            f"{_num(counter.value)}"
        )
    for gauge in registry.gauges():
        type_line(gauge.name, "gauge")
        lines.append(
            f"{gauge.name}{_labels_text(dict(gauge.labels))} {_num(gauge.value)}"
        )
    for histogram in registry.histograms():
        type_line(histogram.name, "histogram")
        base: Dict[str, object] = dict(histogram.labels)
        for le, cumulative in histogram.cumulative_buckets():
            labels = dict(base)
            labels["le"] = _num(le)
            lines.append(
                f"{histogram.name}_bucket{_labels_text(labels)} {cumulative}"
            )
        lines.append(
            f"{histogram.name}_sum{_labels_text(base)} {_num(histogram.sum)}"
        )
        lines.append(
            f"{histogram.name}_count{_labels_text(base)} {histogram.count}"
        )
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(path: Union[str, Path], recorder: Recorder) -> Path:
    """Write the final Prometheus text snapshot to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(prometheus_text(recorder), encoding="utf-8")
    return target

"""Chrome trace-event JSON emitter.

Converts recorded :class:`~repro.obs.telemetry.SpanRecord` intervals into
the Trace Event Format's *complete* (``"ph": "X"``) events, wrapped in the
JSON-object envelope that ``chrome://tracing`` and https://ui.perfetto.dev
load directly.  Timestamps/durations are integer microseconds relative to
the recorder epoch; per-thread ``M`` metadata events name the process and
threads so the timeline renders with readable lanes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.obs.telemetry import Recorder, SpanRecord

__all__ = ["trace_events", "trace_document", "write_trace"]

TRACE_SCHEMA = "repro-trace/1"


def trace_events(
    spans: Sequence[SpanRecord], *, pid: int | None = None,
    process_name: str = "repro",
) -> List[Dict[str, object]]:
    """Spans → Trace Event Format dicts (metadata events first)."""
    if pid is None:
        pid = os.getpid()
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    seen_tids: set[int] = set()
    for record in spans:
        if record.tid not in seen_tids:
            seen_tids.add(record.tid)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": record.tid,
                    "args": {"name": f"thread-{len(seen_tids)}"},
                }
            )
        args: Dict[str, object] = dict(record.args)
        if record.parent is not None:
            args["parent"] = record.parent
        events.append(
            {
                "name": record.name,
                "cat": record.category,
                "ph": "X",
                "ts": record.start_us,
                "dur": record.dur_us,
                "pid": pid,
                "tid": record.tid,
                "args": args,
            }
        )
    return events


def trace_document(recorder: Recorder, *, process_name: str = "repro") -> Dict[str, object]:
    """The full JSON-object envelope for one recorder's spans."""
    spans = recorder.span_snapshot()
    return {
        "traceEvents": trace_events(spans, process_name=process_name),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "schema": TRACE_SCHEMA,
            "spans_dropped": recorder.spans_dropped,
        },
    }


def write_trace(
    path: Union[str, Path], recorder: Recorder, *, process_name: str = "repro"
) -> Path:
    """Write the Chrome-trace JSON document for ``recorder`` to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = trace_document(recorder, process_name=process_name)
    target.write_text(
        json.dumps(document, sort_keys=True, indent=None, separators=(",", ":"))
        + "\n",
        encoding="utf-8",
    )
    return target

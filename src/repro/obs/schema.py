"""JSON schemas + a tiny dependency-free validator for the obs artefacts.

Three artefact shapes are pinned here: the Chrome trace document written
by :mod:`repro.obs.trace`, the ``repro-metrics/1`` JSONL lines written by
:mod:`repro.obs.metrics`, and the ``repro-progress/1`` webhook events
from :mod:`repro.obs.log`.  The validator implements the small JSON
Schema subset the schemas use (``type``, ``required``, ``properties``,
``items``, ``enum``, ``minimum``) so CI can gate the files without a
``jsonschema`` dependency:

    python -m repro.obs.schema trace out/trace.json
    python -m repro.obs.schema metrics out/metrics.jsonl
    python -m repro.obs.schema webhook out/progress.jsonl
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Union

__all__ = [
    "TRACE_DOCUMENT_SCHEMA",
    "METRICS_LINE_SCHEMA",
    "WEBHOOK_EVENT_SCHEMA",
    "validate",
    "validate_trace_file",
    "validate_metrics_file",
    "validate_webhook_file",
]

Schema = Dict[str, object]

_METRIC_POINT: Schema = {
    "type": "object",
    "required": ["name", "labels", "value"],
    "properties": {
        "name": {"type": "string"},
        "labels": {"type": "object"},
        "value": {"type": "number"},
    },
}

TRACE_DOCUMENT_SCHEMA: Schema = {
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit"],
    "properties": {
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "ph": {"type": "string", "enum": ["X", "M", "B", "E", "i"]},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "cat": {"type": "string"},
                    "args": {"type": "object"},
                },
            },
        },
    },
}

METRICS_LINE_SCHEMA: Schema = {
    "type": "object",
    "required": ["schema", "seq", "reason", "elapsed_seconds",
                 "counters", "gauges", "histograms"],
    "properties": {
        "schema": {"type": "string", "enum": ["repro-metrics/1"]},
        "seq": {"type": "integer", "minimum": 0},
        "reason": {"type": "string"},
        "elapsed_seconds": {"type": "number", "minimum": 0},
        "pid": {"type": "integer"},
        "n_spans": {"type": "integer", "minimum": 0},
        "spans_dropped": {"type": "integer", "minimum": 0},
        "counters": {"type": "array", "items": _METRIC_POINT},
        "gauges": {"type": "array", "items": _METRIC_POINT},
        "histograms": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "labels", "count", "sum", "buckets"],
                "properties": {
                    "name": {"type": "string"},
                    "labels": {"type": "object"},
                    "count": {"type": "integer", "minimum": 0},
                    "sum": {"type": "number"},
                    "buckets": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["le", "count"],
                            "properties": {
                                "le": {"type": "number"},
                                "count": {"type": "integer", "minimum": 0},
                            },
                        },
                    },
                },
            },
        },
    },
}

WEBHOOK_EVENT_SCHEMA: Schema = {
    "type": "object",
    "required": ["schema", "seq", "event"],
    "properties": {
        "schema": {"type": "string", "enum": ["repro-progress/1"]},
        "seq": {"type": "integer", "minimum": 0},
        "event": {"type": "string"},
        "elapsed_seconds": {"type": "number", "minimum": 0},
    },
}

_TYPES: Dict[str, Union[type, tuple[type, ...]]] = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def validate(value: object, schema: Schema, path: str = "$") -> List[str]:
    """Validate ``value`` against the schema subset; returns error strings."""
    errors: List[str] = []
    expected = schema.get("type")
    if isinstance(expected, str):
        python_type = _TYPES[expected]
        if isinstance(value, bool) and expected in ("integer", "number"):
            errors.append(f"{path}: expected {expected}, got bool")
            return errors
        if not isinstance(value, python_type):
            errors.append(
                f"{path}: expected {expected}, got {type(value).__name__}"
            )
            return errors
    enum = schema.get("enum")
    if isinstance(enum, list) and value not in enum:
        errors.append(f"{path}: {value!r} not one of {enum!r}")
    minimum = schema.get("minimum")
    if isinstance(minimum, (int, float)) and isinstance(value, (int, float)):
        if value < minimum:
            errors.append(f"{path}: {value!r} below minimum {minimum!r}")
    if isinstance(value, dict):
        required = schema.get("required")
        if isinstance(required, list):
            for key in required:
                if key not in value:
                    errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties")
        if isinstance(properties, dict):
            for key, sub in properties.items():
                if key in value and isinstance(sub, dict):
                    errors.extend(validate(value[key], sub, f"{path}.{key}"))
    if isinstance(value, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, element in enumerate(value):
                errors.extend(validate(element, items, f"{path}[{i}]"))
    return errors


def validate_trace_file(path: Union[str, Path]) -> List[str]:
    """Validate one Chrome trace JSON document."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable trace document: {exc}"]
    return validate(document, TRACE_DOCUMENT_SCHEMA)


def _validate_jsonl(path: Union[str, Path], schema: Schema) -> List[str]:
    errors: List[str] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return [f"{path}: no snapshot lines"]
    for i, line in enumerate(lines):
        try:
            value = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{path}:{i + 1}: invalid JSON: {exc}")
            continue
        errors.extend(
            f"{path}:{i + 1}: {err}" for err in validate(value, schema)
        )
    return errors


def validate_metrics_file(path: Union[str, Path]) -> List[str]:
    """Validate a ``repro-metrics/1`` JSONL snapshot stream."""
    return _validate_jsonl(path, METRICS_LINE_SCHEMA)


def validate_webhook_file(path: Union[str, Path]) -> List[str]:
    """Validate a ``repro-progress/1`` webhook JSONL stream."""
    return _validate_jsonl(path, WEBHOOK_EVENT_SCHEMA)


_VALIDATORS = {
    "trace": validate_trace_file,
    "metrics": validate_metrics_file,
    "webhook": validate_webhook_file,
}


def main(argv: List[str]) -> int:
    if len(argv) != 2 or argv[0] not in _VALIDATORS:
        sys.stderr.write(
            "usage: python -m repro.obs.schema {trace|metrics|webhook} FILE\n"
        )
        return 2
    errors = _VALIDATORS[argv[0]](argv[1])
    for error in errors:
        sys.stderr.write(error + "\n")
    if not errors:
        print(f"{argv[1]}: valid {argv[0]} artefact")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""Determinism-safe observability: metrics, spans, traces, live progress.

``repro.obs`` is the one place in the tree that is allowed to read wall
clocks: everything else observes *through* it, and the whole package is a
no-op unless a process explicitly enables the recorder (``repro run
--trace/--metrics/--profile`` or a campaign coordinator/worker).  The
package is deliberately excluded from
:data:`repro.store.fingerprint.PRODUCING_PACKAGES` and reprolint rule
O001 statically guarantees telemetry can never reach store canonicalizers
or store-key dataclasses — enabling observability must never change a
result payload or a store key (see ``docs/observability.md``).
"""

from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Recorder,
    SpanRecord,
    recorder,
    span,
    stage,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Recorder",
    "SpanRecord",
    "recorder",
    "span",
    "stage",
]

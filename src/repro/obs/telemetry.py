"""Thread-safe metrics registry + monotonic-clock spans.

The process-wide :class:`Recorder` is the single funnel for all
telemetry.  Instrumentation sites call the module-level helpers
(:func:`count`, :func:`observe`, :func:`span`, :func:`stage`, …) which
are cheap no-ops until :meth:`Recorder.enable` runs — one attribute read
and a branch — so the call sites can stay always-on in hot paths without
a measurable cost and, crucially, without ever influencing simulation
results (the isolation contract is tested dynamically in
``tests/test_obs_isolation.py`` and enforced statically by reprolint rule
O001).

Clock discipline: this module is the only sanctioned home for
``time.perf_counter``/``time.monotonic`` reads outside the benchmarks —
spans carry *relative* microseconds since :meth:`Recorder.enable`, so no
wall-clock value can leak into anything derived from telemetry.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import AbstractContextManager, contextmanager
from dataclasses import dataclass, field
from typing import Callable, ContextManager, Dict, Iterator, List, Mapping, Optional, Protocol, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Recorder",
    "SpanRecord",
    "count",
    "gauge_set",
    "observe",
    "recorder",
    "span",
    "stage",
]

LabelValue = Union[str, int, float, bool]
LabelKey = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelKey]

#: Default latency buckets (seconds): microseconds through a minute.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)

#: Hard cap on retained spans — a runaway campaign must not hoard memory.
#: Overflow is counted (``obs_spans_dropped``) rather than silently eaten.
MAX_SPANS = 200_000


def _label_key(labels: Mapping[str, LabelValue]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing (well — adjustable) float counter."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount


class Gauge:
    """A point-in-time value (queue depth, workers alive, …)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount


class Histogram:
    """A cumulative-bucket histogram (Prometheus ``le`` semantics)."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``(inf, count)``."""
        out: List[Tuple[float, int]] = []
        running = 0
        with self._lock:
            for bound, n in zip(self.bounds, self.bucket_counts):
                running += n
                out.append((bound, running))
            out.append((float("inf"), self.count))
        return out


@dataclass
class SpanRecord:
    """One closed span: relative-microsecond interval plus static args."""

    name: str
    start_us: int
    dur_us: int
    tid: int
    depth: int
    parent: Optional[str]
    category: str = "repro"
    args: Dict[str, LabelValue] = field(default_factory=dict)


class MetricsRegistry:
    """Thread-safe home of every counter/gauge/histogram in a process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = Counter(name, key[1])
                self._counters[key] = metric
        return metric

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = Gauge(name, key[1])
                self._gauges[key] = metric
        return metric

    def histogram(
        self,
        name: str,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: LabelValue,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = Histogram(name, key[1], bounds)
                self._histograms[key] = metric
        return metric

    def counters(self) -> List[Counter]:
        with self._lock:
            return sorted(self._counters.values(), key=lambda m: (m.name, m.labels))

    def gauges(self) -> List[Gauge]:
        with self._lock:
            return sorted(self._gauges.values(), key=lambda m: (m.name, m.labels))

    def histograms(self) -> List[Histogram]:
        with self._lock:
            return sorted(self._histograms.values(), key=lambda m: (m.name, m.labels))

    def snapshot(self) -> Dict[str, object]:
        """A plain-JSON view of every metric (see ``repro-metrics/1``)."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in sorted(counters, key=lambda m: (m.name, m.labels))
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in sorted(gauges, key=lambda m: (m.name, m.labels))
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "count": h.count,
                    "sum": h.sum,
                    "buckets": [
                        {"le": le, "count": n}
                        for le, n in h.cumulative_buckets()
                    ],
                }
                for h in sorted(histograms, key=lambda m: (m.name, m.labels))
            ],
        }


class StageProfilerLike(Protocol):
    """What :func:`stage` needs from an installed profiler."""

    def stage(self, name: str) -> ContextManager[None]: ...


class _SpanStack(threading.local):
    def __init__(self) -> None:
        self.names: List[str] = []


class Recorder:
    """Process-wide telemetry funnel; disabled (and ~free) by default."""

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.spans: List[SpanRecord] = []
        self._spans_dropped = 0
        self._epoch = 0.0
        self._lock = threading.Lock()
        self._stack = _SpanStack()
        self._profiler: Optional[StageProfilerLike] = None
        self._stage_hook: Optional[Callable[[str], None]] = None
        self._log_hook: Optional[Callable[[str, Dict[str, LabelValue]], None]] = None

    # -- lifecycle ----------------------------------------------------- #
    def enable(self) -> None:
        """Start recording.  Idempotent; the epoch is set on first call."""
        if not self.enabled:
            self._epoch = time.perf_counter()
            self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded state (tests and campaign workers)."""
        with self._lock:
            self.enabled = False
            self.registry = MetricsRegistry()
            self.spans = []
            self._spans_dropped = 0
            self._profiler = None
            self._stage_hook = None
            self._log_hook = None

    def install_profiler(self, profiler: Optional[StageProfilerLike]) -> None:
        self._profiler = profiler

    def install_stage_hook(self, hook: Optional[Callable[[str], None]]) -> None:
        """``hook(stage_name)`` fires after each closed stage (metrics sinks)."""
        self._stage_hook = hook

    def install_log_hook(
        self, hook: Optional[Callable[[str, Dict[str, LabelValue]], None]]
    ) -> None:
        """``hook(event, fields)`` receives every :meth:`event` call."""
        self._log_hook = hook

    # -- timebase ------------------------------------------------------ #
    def elapsed_seconds(self) -> float:
        """Monotonic seconds since :meth:`enable` (0.0 while disabled)."""
        if not self.enabled:
            return 0.0
        return time.perf_counter() - self._epoch

    @property
    def spans_dropped(self) -> int:
        return self._spans_dropped

    # -- metric funnels ------------------------------------------------ #
    def count(self, name: str, amount: float = 1.0, **labels: LabelValue) -> None:
        if not self.enabled:
            return
        self.registry.counter(name, **labels).add(amount)

    def gauge_set(self, name: str, value: float, **labels: LabelValue) -> None:
        if not self.enabled:
            return
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: LabelValue) -> None:
        if not self.enabled:
            return
        self.registry.histogram(name, **labels).observe(value)

    def event(self, event: str, **fields: LabelValue) -> None:
        """Emit a structured log event (no-op without an installed sink)."""
        if not self.enabled:
            return
        hook = self._log_hook
        if hook is not None:
            hook(event, dict(fields))

    # -- spans --------------------------------------------------------- #
    def span(
        self,
        name: str,
        category: str = "repro",
        observe: Optional[str] = None,
        **args: LabelValue,
    ) -> ContextManager[None]:
        """A timed span; ``observe`` also feeds the duration (seconds) into
        the named histogram, so latency distributions come for free."""
        if not self.enabled:
            return _NOOP_SPAN
        return self._live_span(name, category, args, observe)

    @contextmanager
    def _live_span(
        self,
        name: str,
        category: str,
        args: Dict[str, LabelValue],
        observe: Optional[str] = None,
    ) -> Iterator[None]:
        stack = self._stack.names
        parent = stack[-1] if stack else None
        depth = len(stack)
        stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            stack.pop()
            if observe is not None:
                self.registry.histogram(observe).observe(end - start)
            record = SpanRecord(
                name=name,
                start_us=int((start - self._epoch) * 1e6),
                dur_us=max(0, int((end - start) * 1e6)),
                tid=threading.get_ident() & 0xFFFFFFFF,
                depth=depth,
                parent=parent,
                category=category,
                args=args,
            )
            with self._lock:
                if len(self.spans) < MAX_SPANS:
                    self.spans.append(record)
                else:
                    self._spans_dropped += 1

    @contextmanager
    def stage(self, name: str, **args: LabelValue) -> Iterator[None]:
        """A top-level pipeline stage: span + optional cProfile + snapshot.

        Stages (``build`` / ``run`` / ``report``) are the units the
        ``--profile DIR`` flag profiles and the ``--metrics`` sink
        snapshots after; they must not nest with each other.
        """
        if not self.enabled:
            yield
            return
        profiler = self._profiler
        with self._live_span(name, "stage", dict(args)):
            if profiler is None:
                yield
            else:
                with profiler.stage(name):
                    yield
        hook = self._stage_hook
        if hook is not None:
            hook(name)

    def span_snapshot(self) -> List[SpanRecord]:
        """A consistent copy of the closed spans recorded so far."""
        with self._lock:
            return list(self.spans)

    def snapshot(self) -> Dict[str, object]:
        """Registry snapshot plus recorder meta (spans kept separate)."""
        snap = self.registry.snapshot()
        snap["elapsed_seconds"] = self.elapsed_seconds()
        snap["n_spans"] = len(self.spans)
        snap["spans_dropped"] = self._spans_dropped
        snap["pid"] = os.getpid()
        return snap


class _NoopSpan(AbstractContextManager[None]):
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()

_RECORDER = Recorder()


def recorder() -> Recorder:
    """The process-wide recorder (one per interpreter, fork-inherited)."""
    return _RECORDER


# Module-level conveniences: the instrumentation call sites. ------------ #
def count(name: str, amount: float = 1.0, **labels: LabelValue) -> None:
    _RECORDER.count(name, amount, **labels)


def gauge_set(name: str, value: float, **labels: LabelValue) -> None:
    _RECORDER.gauge_set(name, value, **labels)


def observe(name: str, value: float, **labels: LabelValue) -> None:
    _RECORDER.observe(name, value, **labels)


def span(
    name: str,
    category: str = "repro",
    observe: Optional[str] = None,
    **args: LabelValue,
) -> ContextManager[None]:
    return _RECORDER.span(name, category, observe, **args)


def stage(name: str, **args: LabelValue) -> ContextManager[None]:
    return _RECORDER.stage(name, **args)

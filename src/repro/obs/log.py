"""Structured JSON-lines logging and the progress webhook.

:class:`JsonLogger` turns :meth:`Recorder.event` calls into one JSON
object per line on any text stream/file (campaign coordinators log their
lifecycle this way).  :class:`ProgressWebhook` is the external-watcher
hook behind ``--webhook TARGET``: events are appended as JSONL when
``TARGET`` is a path, or POSTed as JSON when it is an ``http(s)://`` URL.
Webhook delivery is strictly fire-and-forget — a dead listener increments
a counter and never fails (or slows) the run it is watching.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, Optional, TextIO, Union

from repro.obs.telemetry import LabelValue, Recorder

__all__ = ["JsonLogger", "ProgressWebhook", "WEBHOOK_SCHEMA"]

WEBHOOK_SCHEMA = "repro-progress/1"

#: Seconds an HTTP webhook POST may take before being abandoned.
_WEBHOOK_TIMEOUT = 2.0


class JsonLogger:
    """One JSON object per line, ``{"event": ..., "elapsed_seconds": ...}``."""

    def __init__(
        self,
        recorder: Recorder,
        stream: Optional[TextIO] = None,
        path: Optional[Union[str, Path]] = None,
    ) -> None:
        if (stream is None) == (path is None):
            raise ValueError("JsonLogger needs exactly one of stream/path")
        self._recorder = recorder
        self._stream = stream
        self._path = Path(path) if path is not None else None
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._path.write_text("", encoding="utf-8")
        self._lock = threading.Lock()

    def log(self, event: str, fields: Dict[str, LabelValue]) -> None:
        line: Dict[str, object] = {
            "event": event,
            "elapsed_seconds": round(self._recorder.elapsed_seconds(), 6),
        }
        line.update(fields)
        text = json.dumps(line, sort_keys=True) + "\n"
        with self._lock:
            if self._stream is not None:
                self._stream.write(text)
                self._stream.flush()
            elif self._path is not None:
                with self._path.open("a", encoding="utf-8") as handle:
                    handle.write(text)

    def install(self) -> None:
        """Route ``recorder.event(...)`` calls into this logger."""
        self._recorder.install_log_hook(self.log)


class ProgressWebhook:
    """Fire-and-forget progress events for external watchers.

    ``target`` is either a filesystem path (events are appended as JSON
    lines — the ``repro-progress/1`` schema in ``docs/observability.md``)
    or an ``http(s)://`` URL (each event is POSTed as a JSON body with
    ``Content-Type: application/json``).  Delivery failures are counted
    (``errors`` / the ``obs_webhook_errors`` counter) but never raised.
    """

    def __init__(self, target: str, recorder: Optional[Recorder] = None) -> None:
        self.target = target
        self.is_http = target.startswith("http://") or target.startswith("https://")
        self.sent = 0
        self.errors = 0
        self._recorder = recorder
        self._seq = 0
        self._lock = threading.Lock()
        if not self.is_http:
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text("", encoding="utf-8")

    def emit(self, event: str, **fields: object) -> None:
        with self._lock:
            seq = self._seq
            self._seq += 1
        body: Dict[str, object] = {
            "schema": WEBHOOK_SCHEMA,
            "seq": seq,
            "event": event,
        }
        if self._recorder is not None:
            body["elapsed_seconds"] = round(self._recorder.elapsed_seconds(), 6)
        body.update(fields)
        text = json.dumps(body, sort_keys=True)
        try:
            if self.is_http:
                self._post(text)
            else:
                with self._lock:
                    with Path(self.target).open("a", encoding="utf-8") as handle:
                        handle.write(text + "\n")
            self.sent += 1
            if self._recorder is not None:
                self._recorder.count("obs_webhook_events")
        except Exception:
            self.errors += 1
            if self._recorder is not None:
                self._recorder.count("obs_webhook_errors")

    def _post(self, body: str) -> None:
        import urllib.request

        request = urllib.request.Request(
            self.target,
            data=body.encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=_WEBHOOK_TIMEOUT):
            pass

"""Per-stage cProfile wrapper behind ``--profile DIR``.

Each pipeline stage (``build`` / ``run`` / ``report`` — the units marked
with :meth:`repro.obs.telemetry.Recorder.stage`) is profiled into its own
``NN-stage.prof`` file under the output directory, loadable with
``python -m pstats`` or snakeviz.  Stages are sequential and disjoint by
construction, which is exactly the constraint cProfile imposes (profilers
cannot nest), so installing the profiler on the recorder is safe.
"""

from __future__ import annotations

import cProfile
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

__all__ = ["StageProfiler"]


class StageProfiler:
    """Dumps one ``pstats``-loadable profile per pipeline stage."""

    def __init__(self, out_dir: Union[str, Path]) -> None:
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self._seq = 0
        self._lock = threading.Lock()
        self._active = False

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        with self._lock:
            nested = self._active
            if not nested:
                self._active = True
                seq = self._seq
                self._seq += 1
        if nested:
            # A nested stage (defensive: stages should be disjoint) —
            # profile only the outermost one.
            yield
            return
        profile = cProfile.Profile()
        try:
            profile.enable()
            try:
                yield
            finally:
                profile.disable()
                safe = "".join(
                    ch if ch.isalnum() or ch in "-_" else "-" for ch in name
                )
                profile.dump_stats(str(self.out_dir / f"{seq:02d}-{safe}.prof"))
        finally:
            with self._lock:
                self._active = False

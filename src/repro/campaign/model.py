"""Campaign data model: tuning knobs, the retry/backoff policy, results.

A campaign is a sharded, fault-tolerant execution of one grid spec's cell
set (see :mod:`repro.campaign`).  This module holds the pieces every other
campaign module shares:

* :class:`CampaignConfig` — the coordinator's tuning knobs (worker count,
  lease/heartbeat periods, retry budget, backoff shape, timeout policy),
  validated up front so a bad knob fails before any worker spawns;
* :func:`backoff_seconds` — seeded exponential backoff with jitter.  The
  jitter RNG is seeded from ``(campaign id, cell, attempt)``, so retry
  schedules are deterministic per campaign — reproducible chaos tests —
  while still de-synchronizing cells that fail together;
* :class:`QuarantinedCell` / :class:`CampaignResult` — what a campaign
  reports back, including the loud per-cell failure report that degraded
  completion prints instead of burying failures in an exit code.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping, Optional

import numpy as np

from repro.store.canonical import digest
from repro.utils.validation import ValidationError

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "QuarantinedCell",
    "backoff_seconds",
]


@dataclass(frozen=True)
class CampaignConfig:
    """Coordinator tuning knobs (everything lands in the journal header).

    Attributes
    ----------
    workers:
        Worker processes the coordinator shards cells over.
    worker_stores:
        Give every worker its own result store under the campaign
        directory (``stores/<worker>/``) instead of sharing the main
        store — the multi-host mode, joined later by ``repro store
        merge``.
    lease_seconds:
        A worker silent for longer than this forfeits its lease: the cell
        is re-queued and the worker replaced.  This is the price of a
        ``kill -9``'d (or wedged) worker — one lease period, not the
        campaign.
    heartbeat_seconds:
        Worker heartbeat period; must be well under ``lease_seconds``.
    poll_seconds:
        Coordinator/worker mailbox polling period.
    retry_budget:
        Attempts a cell gets before quarantine (1 = no retries).
    backoff_base_seconds / backoff_factor / backoff_max_seconds /
    backoff_jitter:
        Shape of :func:`backoff_seconds` between attempts.
    cell_timeout_seconds:
        Hard per-cell wall-clock timeout.  ``None`` derives one per cell
        from the executor's cost estimate:
        ``max(cell_timeout_floor_seconds, cell_timeout_factor * estimate)``.
    max_respawns:
        Replacement workers the coordinator may spawn campaign-wide before
        it stops replacing casualties (it then degrades rather than
        forking forever against a machine-level problem).
    halt_after_landed:
        Testing knob: halt the coordinator (journal intact, no completion
        record) after this many worker-computed cells land — a
        deterministic stand-in for a coordinator crash, exercised by the
        resume tests.
    """

    workers: int = 2
    worker_stores: bool = False
    lease_seconds: float = 30.0
    heartbeat_seconds: float = 0.25
    poll_seconds: float = 0.05
    retry_budget: int = 3
    backoff_base_seconds: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 30.0
    backoff_jitter: float = 0.25
    cell_timeout_seconds: Optional[float] = None
    cell_timeout_factor: float = 500.0
    cell_timeout_floor_seconds: float = 30.0
    max_respawns: int = 8
    halt_after_landed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValidationError(f"campaign workers must be >= 1, got {self.workers}")
        for name in ("lease_seconds", "heartbeat_seconds", "poll_seconds"):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0:
                raise ValidationError(f"campaign {name} must be finite and > 0, got {value}")
        if self.heartbeat_seconds >= self.lease_seconds:
            raise ValidationError(
                f"heartbeat_seconds ({self.heartbeat_seconds:g}) must be smaller than "
                f"lease_seconds ({self.lease_seconds:g}) or every worker looks dead"
            )
        if self.retry_budget < 1:
            raise ValidationError(f"retry_budget must be >= 1, got {self.retry_budget}")
        if self.backoff_base_seconds < 0:
            raise ValidationError(
                f"backoff_base_seconds must be >= 0, got {self.backoff_base_seconds}"
            )
        if self.backoff_factor < 1:
            raise ValidationError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_max_seconds < self.backoff_base_seconds:
            raise ValidationError(
                f"backoff_max_seconds ({self.backoff_max_seconds:g}) must be >= "
                f"backoff_base_seconds ({self.backoff_base_seconds:g})"
            )
        if self.backoff_jitter < 0:
            raise ValidationError(f"backoff_jitter must be >= 0, got {self.backoff_jitter}")
        if self.cell_timeout_seconds is not None and self.cell_timeout_seconds <= 0:
            raise ValidationError(
                f"cell_timeout_seconds must be > 0, got {self.cell_timeout_seconds}"
            )
        if self.cell_timeout_factor <= 0 or self.cell_timeout_floor_seconds <= 0:
            raise ValidationError("cell timeout factor and floor must be > 0")
        if self.max_respawns < 0:
            raise ValidationError(f"max_respawns must be >= 0, got {self.max_respawns}")
        if self.halt_after_landed is not None and self.halt_after_landed < 1:
            raise ValidationError(
                f"halt_after_landed must be >= 1, got {self.halt_after_landed}"
            )

    def cell_timeout(self, estimate_seconds: float) -> float:
        """Wall-clock watchdog for one cell with the given cost estimate."""
        if self.cell_timeout_seconds is not None:
            return self.cell_timeout_seconds
        return max(
            self.cell_timeout_floor_seconds,
            self.cell_timeout_factor * estimate_seconds,
        )

    def as_dict(self) -> dict:
        """Plain-dict view (stored verbatim in the journal header)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignConfig":
        """Rebuild from a journal header (unknown keys are ignored)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def backoff_seconds(
    config: CampaignConfig, campaign_id: str, cell_index: int, attempt: int
) -> float:
    """Delay before retrying ``cell_index`` after its ``attempt``-th failure.

    Exponential in the attempt number, capped at ``backoff_max_seconds``,
    then stretched by up to ``backoff_jitter`` of itself.  The jitter draw
    is seeded from ``digest(campaign_id, cell, attempt)``, so a campaign's
    retry schedule is a pure function of its identity — chaos tests replay
    exactly — while colliding cells still spread out.
    """
    base = min(
        config.backoff_max_seconds,
        config.backoff_base_seconds * config.backoff_factor ** max(0, attempt - 1),
    )
    if config.backoff_jitter == 0 or base == 0:
        return base
    seed = int(digest("campaign-backoff", campaign_id, cell_index, attempt)[:16], 16)
    rng = np.random.default_rng(seed)
    return float(base * (1.0 + config.backoff_jitter * rng.random()))


@dataclass(frozen=True)
class QuarantinedCell:
    """A cell that exhausted its retry budget (or outlived its workers)."""

    index: int
    key: str
    scenario_label: str
    scheduler_label: str
    attempts: int
    error: str

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one coordinator run (fresh or resumed).

    ``landed_from_store`` / ``landed_computed`` count cells landed *by this
    run* (store pre-check hits vs worker computations); ``landed`` is the
    campaign-wide total including cells landed by earlier runs that this
    resume merely verified.
    """

    campaign_id: str
    journal_path: str
    n_cells: int
    landed: int
    landed_from_store: int
    landed_computed: int
    quarantined: tuple[QuarantinedCell, ...]
    retries: int
    lease_expiries: int
    timeouts: int
    worker_deaths: int
    degraded: bool
    halted: bool
    resumes: int

    @property
    def ok(self) -> bool:
        """Every cell landed and the coordinator ran to completion."""
        return not self.degraded and not self.halted

    def as_dict(self) -> dict:
        out = asdict(self)
        out["quarantined"] = [q.as_dict() for q in self.quarantined]
        out["ok"] = self.ok
        return out

    def failure_report(self) -> str:
        """Loud, per-cell description of everything that did not land.

        Degraded completion is a feature — one poisoned cell must not
        sink a thousand-cell campaign — but it must never be quiet about
        what it dropped, so the CLI prints this block verbatim.
        """
        if not self.quarantined:
            return ""
        lines = [
            f"campaign {self.campaign_id} completed DEGRADED: "
            f"{len(self.quarantined)} of {self.n_cells} cells quarantined"
        ]
        for cell in self.quarantined:
            lines.append(
                f"  cell {cell.index} ({cell.scenario_label!r} x "
                f"{cell.scheduler_label!r}) failed {cell.attempts} attempt(s): "
                f"{cell.error}"
            )
            lines.append(f"    key {cell.key}")
        lines.append(
            "fix the cause and 'repro campaign resume --retry-quarantined' to "
            "recompute only these cells"
        )
        return "\n".join(lines)

"""Campaign worker process: lease in, simulate, store, ack out.

A worker is intentionally almost stateless: it rebuilds the campaign plan
from the spec (deterministically identical to the coordinator's), then
loops pulling leases from its inbox mailbox, running each cell with the
same :func:`repro.experiments.runner.run_case` +
:func:`~repro.experiments.runner.encode_case_result` path the serial
runner uses, and writing the result into its store *before* acking
``done`` — so a journal-landed cell always implies store presence, no
matter where in the protocol the worker dies.

A daemon heartbeat thread writes to the outbox every
``heartbeat_seconds`` from the moment the process starts (before the plan
build, which can take a while on big grids), keeping the coordinator's
liveness clock fresh.  Each heartbeat carries a wall-clock timestamp
(``t``) plus a small metrics snapshot (cells done/failed, elapsed
seconds), so ``repro campaign status`` can report per-worker heartbeat
*age* and cells/sec from the mailbox files alone — no process needed.
Heartbeats are transient signalling, never part of any payload, so the
snapshot rides along unconditionally.  Any failure mode past that is the
coordinator's problem by design: crash → process death or lease expiry;
hang → cell timeout (heartbeats keep flowing); ``kill -9`` → lease
expiry.

Chaos hook
----------
``REPRO_CAMPAIGN_CHAOS`` may name a JSON file mapping cell indices to
fault injections, e.g. ``{"3": {"exit": [1], "fail": [2]}}`` — on attempt
1 of cell 3 the worker dies with ``os._exit``, on attempt 2 it raises.
Modes: ``exit`` (sudden death), ``fail`` (raised error), ``hang`` (sleep
forever, heartbeats alive → exercises the timeout watchdog), ``mute``
(sleep forever, heartbeats stopped → exercises lease expiry).  A mode maps
to a list of attempt numbers or the string ``"always"``.  The hook exists
for the chaos tests and the CI distributed-smoke job; production campaigns
never set the variable.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Optional, Union

from repro.campaign.mailbox import MailboxReader, MailboxWriter
from repro.campaign.model import CampaignConfig
from repro.campaign.plan import plan_campaign
from repro.config.spec import ExperimentSpec
from repro.experiments.runner import encode_case_result, run_case
from repro.store import ResultStore

__all__ = ["CHAOS_ENV", "campaign_worker_main"]

CHAOS_ENV = "REPRO_CAMPAIGN_CHAOS"

#: "Forever" for the hang/mute chaos modes — far past any test timeout.
_CHAOS_SLEEP_SECONDS = 3600.0


def _load_chaos() -> dict:
    """The chaos injection table ({} when the hook is unset or unreadable)."""
    path = os.environ.get(CHAOS_ENV)
    if not path:
        return {}
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def _chaos_matches(spec: object, attempt: int) -> bool:
    if spec == "always":
        return True
    return isinstance(spec, list) and attempt in spec


def _apply_chaos(
    chaos: dict, cell_index: int, attempt: int, mute_heartbeats: threading.Event
) -> None:
    """Inject the configured fault for this (cell, attempt), if any."""
    entry = chaos.get(str(cell_index))
    if not isinstance(entry, dict):
        return
    if _chaos_matches(entry.get("exit"), attempt):
        os._exit(17)
    if _chaos_matches(entry.get("fail"), attempt):
        raise RuntimeError(f"chaos: injected failure (cell {cell_index}, attempt {attempt})")
    if _chaos_matches(entry.get("mute"), attempt):
        mute_heartbeats.set()
        time.sleep(_CHAOS_SLEEP_SECONDS)
    if _chaos_matches(entry.get("hang"), attempt):
        time.sleep(_CHAOS_SLEEP_SECONDS)


def campaign_worker_main(
    worker_id: str,
    spec: ExperimentSpec,
    config: CampaignConfig,
    inbox_path: Union[str, Path],
    outbox_path: Union[str, Path],
    store_root: Union[str, Path],
) -> None:
    """Entry point of one worker process (the coordinator's spawn target)."""
    outbox = MailboxWriter(outbox_path)
    stop = threading.Event()
    mute = threading.Event()
    started_wall = time.time()
    # Plain-int counters shared with the heartbeat thread: individual reads
    # and writes are atomic under the GIL, and a snapshot one beat stale is
    # fine for a liveness signal.
    stats = {"cells_done": 0, "cells_failed": 0}

    def _beat() -> None:
        while not stop.wait(config.heartbeat_seconds):
            if mute.is_set():
                continue
            now = time.time()
            try:
                outbox.send(
                    {
                        "type": "heartbeat",
                        "t": now,
                        "metrics": {
                            "cells_done": stats["cells_done"],
                            "cells_failed": stats["cells_failed"],
                            "elapsed_seconds": now - started_wall,
                        },
                    }
                )
            except (OSError, ValueError):
                return

    heartbeat = threading.Thread(target=_beat, name=f"{worker_id}-heartbeat", daemon=True)
    heartbeat.start()
    chaos = _load_chaos()
    try:
        plan = plan_campaign(spec)
        store = ResultStore(store_root)
        outbox.send({"type": "ready", "n_cells": len(plan.cells)})
        inbox = MailboxReader(inbox_path)
        while True:
            records = inbox.poll()
            if not records:
                time.sleep(config.poll_seconds)
                continue
            for record in records:
                rtype = record.get("type")
                if rtype == "shutdown":
                    outbox.send({"type": "bye"})
                    return
                if rtype != "lease":
                    continue
                cell_index = int(record["cell"])
                attempt = int(record["attempt"])
                seq = int(record["seq"])
                ack = {"cell": cell_index, "attempt": attempt, "seq": seq}
                outbox.send({"type": "start", **ack})
                try:
                    _apply_chaos(chaos, cell_index, attempt, mute)
                    cell = plan.cells[cell_index]
                    result = run_case(
                        plan.scenarios[cell.scenario_index],
                        plan.cases[cell.case_index],
                        max_time=spec.max_time,
                        engine=spec.engine,
                    )
                    # Store before ack: journal "landed" must imply the
                    # entry is durably readable, whatever kills us next.
                    store.put(cell.key, encode_case_result(result))
                    stats["cells_done"] += 1
                    outbox.send({"type": "done", **ack})
                except Exception as exc:
                    stats["cells_failed"] += 1
                    outbox.send(
                        {"type": "error", **ack, "error": f"{type(exc).__name__}: {exc}"}
                    )
    except Exception as exc:
        # Startup/plan failures: tell the coordinator why before dying —
        # a fatal record beats diagnosing a silent respawn loop.
        try:
            outbox.send({"type": "fatal", "error": f"{type(exc).__name__}: {exc}"})
        except (OSError, ValueError):
            pass
    finally:
        stop.set()
        outbox.close()

"""Campaign planning: one spec -> its cell table and campaign identity.

The plan is recomputed, never stored: both the coordinator and every
worker rebuild it independently from the (deterministic) spec, and agree
on cell indices, store keys and cost estimates by construction.  The
journal's header carries a copy of the cell table purely for *outside*
readers — ``repro campaign status`` and the store's gc protection — that
must not need the producing code importable.

Cell keys come from :func:`repro.experiments.runner.grid_cell_keys` — the
exact derivation the serial runner memoizes with — which is the whole
trick: a store written by a campaign worker on another host serves a local
``repro run --require-cached`` rerun with 100% hits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config.build import build_cases, build_grid_scenarios
from repro.config.spec import ExperimentSpec
from repro.core.scenario import Scenario
from repro.experiments.runner import (
    SchedulerCase,
    estimate_cell_seconds,
    grid_cell_keys,
)
from repro.store import canonical_json, code_fingerprint, digest
from repro.utils.validation import ValidationError

__all__ = ["CampaignCell", "CampaignPlan", "campaign_id_for", "plan_campaign"]


@dataclass(frozen=True)
class CampaignCell:
    """One ``(scenario, scheduler)`` unit of leased work."""

    #: Row-major position: ``scenario_index * n_cases + case_index``.
    index: int
    scenario_index: int
    case_index: int
    #: Content-addressed store key (shared with the serial runner).
    key: str
    scenario_label: str
    scheduler_label: str
    #: Coarse serial-seconds estimate backing the timeout watchdog.
    estimate_seconds: float

    def as_dict(self) -> dict:
        """Journal-header row (kept small: status/gc only need these)."""
        return {
            "index": self.index,
            "key": self.key,
            "scenario": self.scenario_label,
            "scheduler": self.scheduler_label,
        }


@dataclass(frozen=True)
class CampaignPlan:
    """Deterministic expansion of one grid spec into leasable cells."""

    campaign_id: str
    spec: ExperimentSpec
    scenarios: tuple[Scenario, ...]
    cases: tuple[SchedulerCase, ...]
    cells: tuple[CampaignCell, ...]


def campaign_id_for(spec: ExperimentSpec) -> str:
    """Stable campaign identity: code fingerprint + science-relevant spec.

    ``workers`` and ``output`` are masked out before digesting — resuming
    with a different worker count (or artifact path) is the same campaign,
    while any change to the science (scenarios, seed, horizon, engine) or
    to the producing code yields a different identity, which ``resume``
    turns into a loud mismatch error instead of silently mixing results.
    """
    neutral = replace(spec, workers=None, output=None)
    return digest("campaign", code_fingerprint(), canonical_json(neutral))[:16]


def plan_campaign(spec: ExperimentSpec) -> CampaignPlan:
    """Expand a grid spec into its campaign plan.

    Only ``kind = "grid"`` experiments shard — they are the embarrassingly
    parallel cell sets campaigns exist for.  Analysis/periodic kinds have
    cross-cell structure and are memoized whole by :mod:`repro.config.run`
    instead.
    """
    if spec.kind != "grid":
        raise ValidationError(
            f"campaigns shard grid experiments; spec {spec.name!r} has "
            f"kind {spec.kind!r} (run it with 'repro run' instead)"
        )
    scenarios = build_grid_scenarios(spec.body, spec.seed, max_time=spec.max_time)
    cases = build_cases(spec.body)
    keys = grid_cell_keys(scenarios, cases, max_time=spec.max_time, engine=spec.engine)
    cells: list[CampaignCell] = []
    for i, scenario in enumerate(scenarios):
        estimate = estimate_cell_seconds(scenario)
        for j, case in enumerate(cases):
            cells.append(
                CampaignCell(
                    index=i * len(cases) + j,
                    scenario_index=i,
                    case_index=j,
                    key=keys[i][j],
                    scenario_label=scenario.label,
                    scheduler_label=case.display,
                    estimate_seconds=estimate,
                )
            )
    return CampaignPlan(
        campaign_id=campaign_id_for(spec),
        spec=spec,
        scenarios=tuple(scenarios),
        cases=tuple(cases),
        cells=tuple(cells),
    )

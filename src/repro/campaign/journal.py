"""Append-only campaign journal: the crash-safe source of truth.

The coordinator never holds campaign state only in memory — every state
transition (lease granted, cell landed, attempt failed, cell quarantined,
cell re-queued) is appended to ``journal.jsonl`` *before* the transition
takes effect, one JSON object per line, fsync'd.  After a coordinator
crash, :func:`replay_journal` folds the surviving records back into the
exact pending/leased/landed/quarantined picture, so ``repro campaign
resume`` recomputes only cells that never landed.

The format is deliberately dumb:

* one ``json.dumps(..., sort_keys=True)`` object per line, written with a
  single ``os.write`` on an ``O_APPEND`` descriptor and fsync'd — a crash
  can tear at most the final line;
* readers are tolerant: a torn or corrupt line is counted and skipped,
  never fatal (the corresponding transition is simply forgotten, which is
  always safe — at worst a landed cell is recomputed into the same
  content-addressed key);
* unknown record types are ignored, so old coordinators can read journals
  written by newer ones.

Record types: ``campaign`` (header: spec, config, cell table), ``resume``,
``lease``, ``landed``, ``failed``, ``quarantined``, ``requeue``,
``worker-respawn``, ``complete``.  The store's gc protection
(:meth:`repro.store.store.ResultStore.protected_keys`) reads the header's
``cells[].key`` table and the ``complete`` marker from this same format.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

__all__ = [
    "CampaignJournal",
    "JournalState",
    "read_journal",
    "replay_journal",
]

#: Cell lifecycle states produced by :func:`replay_journal`.
PENDING = "pending"
LEASED = "leased"
LANDED = "landed"
QUARANTINED = "quarantined"


class CampaignJournal:
    """Appender handle: one fsync'd JSON line per :meth:`append`."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd: Optional[int] = os.open(
            str(self.path), os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
        )

    def append(self, record: dict) -> None:
        """Durably append one record (fsync before returning)."""
        if self._fd is None:
            raise ValueError(f"journal {self.path} is closed")
        line = json.dumps(record, sort_keys=True) + "\n"
        os.write(self._fd, line.encode("utf-8"))
        os.fsync(self._fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_journal(path: Union[str, Path]) -> tuple[list[dict], int]:
    """All readable records of a journal plus the corrupt-line count.

    Torn trailing lines (the one crash mode the append protocol allows)
    and arbitrarily corrupted lines are skipped and counted, never raised.
    """
    try:
        raw = Path(path).read_bytes()
    except FileNotFoundError:
        return [], 0
    records: list[dict] = []
    corrupt = 0
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            corrupt += 1
            continue
        if not isinstance(record, dict) or not isinstance(record.get("type"), str):
            corrupt += 1
            continue
        records.append(record)
    return records, corrupt


@dataclass
class JournalState:
    """Folded view of a journal: where every cell stands right now."""

    header: Optional[dict] = None
    #: ``cell index -> PENDING | LEASED | LANDED | QUARANTINED``.
    states: dict = field(default_factory=dict)
    #: Highest attempt number seen per cell (failed or in flight).
    attempts: dict = field(default_factory=dict)
    #: ``cell index -> "worker" | "store"`` for landed cells.
    landed_source: dict = field(default_factory=dict)
    #: ``cell index -> last recorded error`` for quarantined cells.
    quarantine_errors: dict = field(default_factory=dict)
    complete: bool = False
    resumes: int = 0

    def counts(self) -> dict:
        """``{state: count}`` over all cells (absent states are 0)."""
        out = {PENDING: 0, LEASED: 0, LANDED: 0, QUARANTINED: 0}
        for state in self.states.values():
            out[state] = out.get(state, 0) + 1
        return out


def replay_journal(records: Sequence[dict]) -> JournalState:
    """Fold journal records into the campaign's current state.

    Replay is forgiving by construction: a record referencing a cell the
    header never declared is dropped, unknown types are ignored, and a
    missing header yields an empty state (the caller decides whether that
    is fatal — ``resume`` does, ``status`` does not).
    """
    state = JournalState()
    n_cells = 0
    for record in records:
        rtype = record.get("type")
        if rtype == "campaign":
            state.header = record
            try:
                n_cells = int(record.get("n_cells", 0))
            except (TypeError, ValueError):
                n_cells = 0
            state.states = {i: PENDING for i in range(n_cells)}
            continue
        if rtype == "resume":
            state.resumes += 1
            continue
        if rtype == "complete":
            state.complete = True
            continue
        if rtype in ("lease", "landed", "failed", "quarantined", "requeue"):
            try:
                cell = int(record["cell"])
            except (KeyError, TypeError, ValueError):
                continue
            if cell not in state.states:
                continue
            attempt = record.get("attempt", record.get("attempts"))
            if isinstance(attempt, int):
                state.attempts[cell] = max(state.attempts.get(cell, 0), attempt)
            if rtype == "lease":
                state.states[cell] = LEASED
            elif rtype == "landed":
                state.states[cell] = LANDED
                source = record.get("source")
                state.landed_source[cell] = source if isinstance(source, str) else "worker"
            elif rtype == "failed":
                state.states[cell] = PENDING
            elif rtype == "quarantined":
                state.states[cell] = QUARANTINED
                state.quarantine_errors[cell] = str(record.get("error", "unknown error"))
            elif rtype == "requeue":
                state.states[cell] = PENDING
                state.quarantine_errors.pop(cell, None)
        # Anything else ("worker-respawn", future types) carries no cell
        # state and is deliberately ignored.
    return state

"""Fault-tolerant distributed campaigns: shard a grid spec across workers.

A *campaign* runs one grid experiment's cell set across N worker
processes — and, with per-worker stores merged by ``repro store merge``,
across hosts — surviving every failure mode short of losing the journal:

* **work-stealing leases** (:mod:`~repro.campaign.coordinator`): cells are
  leased to workers with a liveness deadline; a crashed, ``kill -9``'d or
  wedged worker forfeits its lease after one lease period and the cell is
  re-queued to the next idle worker;
* **retry with seeded backoff** (:mod:`~repro.campaign.model`): failing
  cells retry under a deterministic exponential-backoff-with-jitter
  schedule up to a retry budget, then are *quarantined* — the campaign
  completes degraded with a loud per-cell failure report instead of dying;
* **timeout watchdog**: each cell gets a wall-clock budget derived from the
  executor's cost estimate, so a hung simulation cannot stall the fleet;
* **crash-safe journal** (:mod:`~repro.campaign.journal`): every
  transition is fsync'd to an append-only JSONL journal before it takes
  effect; ``repro campaign resume`` replays it and recomputes only cells
  that never landed;
* **mergeable stores** (:mod:`repro.store.merge`): results are
  content-addressed, so per-worker stores union into one that serves a
  serial ``repro run --require-cached`` rerun byte-identically.

``repro campaign run | status | resume`` is the CLI face; see
``docs/distributed.md`` for the full protocol walk-through.
"""

from repro.campaign.coordinator import (
    CampaignCoordinator,
    campaign_status,
    resume_campaign,
    run_campaign,
)
from repro.campaign.journal import (
    CampaignJournal,
    JournalState,
    read_journal,
    replay_journal,
)
from repro.campaign.mailbox import MailboxReader, MailboxWriter
from repro.campaign.model import (
    CampaignConfig,
    CampaignResult,
    QuarantinedCell,
    backoff_seconds,
)
from repro.campaign.plan import (
    CampaignCell,
    CampaignPlan,
    campaign_id_for,
    plan_campaign,
)

__all__ = [
    "CampaignCell",
    "CampaignConfig",
    "CampaignCoordinator",
    "CampaignJournal",
    "CampaignPlan",
    "CampaignResult",
    "JournalState",
    "MailboxReader",
    "MailboxWriter",
    "QuarantinedCell",
    "backoff_seconds",
    "campaign_id_for",
    "campaign_status",
    "plan_campaign",
    "read_journal",
    "replay_journal",
    "resume_campaign",
    "run_campaign",
]

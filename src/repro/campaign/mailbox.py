"""Kill-safe coordinator/worker IPC: append-only JSONL mailbox files.

The campaign deliberately does not use ``multiprocessing.Queue`` (or pipes,
or sockets) between the coordinator and its workers: a ``kill -9`` on
either side of a queue can wedge the survivor in a feeder-thread join or
lose buffered messages, and a coordinator crash would sever every worker.
Plain append-only files have none of those failure modes:

* each direction is its own file (``<worker>.g<N>.in.jsonl`` written by the
  coordinator, ``.out.jsonl`` by the worker), so there is exactly one
  writer per file and appends need no cross-process locking;
* a writer dying mid-line tears at most the final line, which the reader
  simply never completes on;
* a reader crash loses nothing — the file *is* the backlog, and a restarted
  reader re-reads from any offset it likes;
* respawned workers get a fresh generation number (new file pair), so a
  lease mailed to a dead worker's inbox can never leak to its replacement.

The cost is polling latency (bounded by the configured poll period) —
irrelevant against simulation cells that run for seconds.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Optional, Union

__all__ = ["MailboxReader", "MailboxWriter"]


class MailboxWriter:
    """Single-writer appender: one JSON line per ``send``, O_APPEND, locked.

    The lock serializes the worker's main loop against its heartbeat
    thread; ``O_APPEND`` plus one ``os.write`` per line keeps every record
    on its own line even under that concurrency.  Mailboxes are *not*
    fsync'd — unlike the journal they are transient signalling, and a lost
    tail only costs a lease period.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fd: Optional[int] = os.open(
            str(self.path), os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
        )

    def send(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._fd is None:
                raise ValueError(f"mailbox {self.path} is closed")
            os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None


class MailboxReader:
    """Incremental tail-reader for one mailbox file.

    Keeps a byte offset plus a partial-line buffer, so records are
    delivered exactly once, in order, even when a poll races the writer
    mid-line.  Corrupt complete lines are skipped and counted — a reader
    must never die on a half-written record from a killed process.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._offset = 0
        self._partial = b""
        self.corrupt = 0

    def poll(self) -> list[dict]:
        """Every complete record appended since the previous poll."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                data = handle.read()
        except FileNotFoundError:
            return []
        if not data:
            return []
        self._offset += len(data)
        buffer = self._partial + data
        lines = buffer.split(b"\n")
        self._partial = lines.pop()
        records: list[dict] = []
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self.corrupt += 1
                continue
            if not isinstance(record, dict):
                self.corrupt += 1
                continue
            records.append(record)
        return records

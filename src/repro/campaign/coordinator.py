"""The campaign coordinator: journaled work-stealing over worker processes.

One coordinator shards a grid spec's cell set across ``config.workers``
worker processes (:mod:`repro.campaign.worker`) through append-only
mailbox files (:mod:`repro.campaign.mailbox`), journaling every state
transition (:mod:`repro.campaign.journal`) so a crash at *any* point is
resumable with no lost work.

Fault model, and what each fault costs:

==================  ============================  =======================
fault               detected by                   cost
==================  ============================  =======================
worker crash        ``Process.is_alive()``        one in-flight cell retried
worker ``kill -9``  same (child of coordinator)   same
worker wedged/mute  lease expiry (no heartbeat)   one lease period
cell hangs          per-cell timeout watchdog     the watchdog period
cell raises         worker ``error`` record       one backoff delay
poisoned cell       retry budget -> quarantine    that cell only (degraded)
host loses workers  respawn budget exhausted      remaining cells quarantined
coordinator crash   journal replay on resume      cells in flight at the crash
==================  ============================  =======================

Work stealing is coordinator-mediated: an expired or failed lease returns
to the pending queue and the next idle worker takes it — workers never
talk to each other, which keeps the protocol two files per worker and
makes every fault path testable by deleting processes.

Completion is *degraded*, never abandoned: cells that exhaust their retry
budget are quarantined and reported loudly (exit code 1 at the CLI), but
every other cell still lands — one poisoned cell cannot sink a campaign.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Optional, Union

from repro.campaign.journal import (
    LANDED,
    LEASED,
    PENDING,
    QUARANTINED,
    CampaignJournal,
    JournalState,
    read_journal,
    replay_journal,
)
from repro.campaign.mailbox import MailboxReader, MailboxWriter
from repro.campaign.model import (
    CampaignConfig,
    CampaignResult,
    QuarantinedCell,
    backoff_seconds,
)
from repro.campaign.plan import CampaignPlan, plan_campaign
from repro.campaign.worker import campaign_worker_main
from repro.config.spec import ExperimentSpec, parse_spec
from repro.obs.telemetry import recorder as _obs_recorder
from repro.store import ResultStore, default_store_path
from repro.utils.validation import ValidationError

__all__ = ["campaign_status", "resume_campaign", "run_campaign"]

Progress = Optional[Callable[[str], None]]

#: Campaign lifecycle events land here when the CLI enabled telemetry
#: (``--metrics``/``--trace``); no-ops otherwise.
_OBS = _obs_recorder()

#: ``on_event(event, **fields)`` — the progress-event hook
#: (:class:`repro.obs.log.ProgressWebhook` or any callable with that shape).
EventHook = Optional[Callable[..., None]]


@dataclass
class _Lease:
    """One cell in flight on one worker."""

    cell: int
    attempt: int
    seq: int
    #: Monotonic instant of the worker's ``start`` ack (timeout anchor);
    #: ``None`` until acked (lease expiry covers that window).
    started: Optional[float] = None


@dataclass
class _Worker:
    """Coordinator-side handle of one worker process."""

    worker_id: str
    generation: int
    process: "mp.process.BaseProcess"
    inbox: MailboxWriter
    reader: MailboxReader
    last_seen: float
    ready: bool = False
    lease: Optional[_Lease] = None


def _mp_context() -> mp.context.BaseContext:
    # Fork keeps worker startup cheap (no re-import, no spec pickling
    # constraints); fall back to spawn where fork does not exist.
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _as_store(store: Union[ResultStore, str, Path, None]) -> ResultStore:
    if isinstance(store, ResultStore):
        return store
    return ResultStore(store if store is not None else default_store_path())


def _register_pointer(store: ResultStore, campaign_id: str, journal_path: Path) -> None:
    """Drop the gc-protection pointer (see ``ResultStore.protected_keys``)."""
    store.campaigns_dir.mkdir(parents=True, exist_ok=True)
    pointer = store.campaigns_dir / f"{campaign_id}.journal"
    pointer.write_text(str(journal_path) + "\n", encoding="utf-8")


def _unregister_pointer(store: ResultStore, campaign_id: str) -> None:
    try:
        (store.campaigns_dir / f"{campaign_id}.journal").unlink()
    except OSError:
        pass


class CampaignCoordinator:
    """One coordinator run (fresh or resumed) over an open journal."""

    def __init__(
        self,
        plan: CampaignPlan,
        config: CampaignConfig,
        campaign_dir: Path,
        store: ResultStore,
        journal: CampaignJournal,
        *,
        progress: Progress = None,
        on_event: EventHook = None,
    ):
        self.plan = plan
        self.config = config
        self.campaign_dir = campaign_dir
        self.store = store
        self.journal = journal
        self._progress_fn = progress
        self._on_event = on_event
        self._mp = _mp_context()
        # Cell state: a cell is in exactly one of pending / leased /
        # landed / quarantined.  Pending maps to the monotonic instant the
        # cell becomes dispatchable (backoff).
        self._pending: dict[int, float] = {}
        self._leased: set[int] = set()
        self._landed: set[int] = set()
        self._quarantined: dict[int, tuple[int, str]] = {}
        self._attempts: dict[int, int] = {}
        self._seq = 0
        self._workers: list[_Worker] = []
        self._generations: dict[str, int] = {}
        self._respawns = 0
        self._worker_store_handles: dict[str, ResultStore] = {}
        # Counters surfaced in the result.
        self.retries = 0
        self.lease_expiries = 0
        self.timeouts = 0
        self.worker_deaths = 0
        self.landed_from_store = 0
        self.landed_computed = 0
        self.resumes = 0
        self.halted = False

    # ------------------------------------------------------------------ #
    def _progress(self, message: str) -> None:
        if self._progress_fn is not None:
            self._progress_fn(message)

    def _emit(self, event: str, **fields: object) -> None:
        """Fire the progress-event hook; a broken sink never stalls cells."""
        if self._on_event is None:
            return
        try:
            self._on_event(event, **fields)
        except Exception:
            pass

    def _landed_total(self) -> int:
        return len(self._landed)

    # ------------------------------------------------------------------ #
    def seed_fresh(self) -> None:
        """Every cell pending, dispatchable immediately."""
        self._pending = {cell.index: 0.0 for cell in self.plan.cells}

    def seed_resume(self, state: JournalState, *, retry_quarantined: bool = False) -> None:
        """Rebuild in-memory state from a replayed journal.

        Landed cells are *verified* against the store(s) — a journal that
        outlived its store (or a landed record racing an eviction) demotes
        the cell back to pending with a ``requeue`` record rather than
        silently reporting work that cannot be served.  This is also where
        the resume acceptance test gets its store-hit accounting: one
        ``get`` per previously landed cell.
        """
        for cell in self.plan.cells:
            cell_state = state.states.get(cell.index, PENDING)
            self._attempts[cell.index] = state.attempts.get(cell.index, 0)
            if cell_state == LANDED:
                if self._probe_store(cell.key):
                    self._landed.add(cell.index)
                    continue
                self.journal.append(
                    {"type": "requeue", "cell": cell.index, "reason": "missing-from-store"}
                )
                self._pending[cell.index] = 0.0
            elif cell_state == QUARANTINED:
                if retry_quarantined:
                    self.journal.append(
                        {"type": "requeue", "cell": cell.index, "reason": "retry-quarantined"}
                    )
                    self._attempts[cell.index] = 0
                    self._pending[cell.index] = 0.0
                else:
                    error = state.quarantine_errors.get(cell.index, "unknown error")
                    self._quarantined[cell.index] = (
                        state.attempts.get(cell.index, 0),
                        error,
                    )
            else:
                if cell_state == LEASED:
                    # In flight when the previous coordinator died: the
                    # lease is void (its worker is long gone).
                    self.journal.append(
                        {"type": "requeue", "cell": cell.index, "reason": "resume"}
                    )
                self._pending[cell.index] = 0.0

    # ------------------------------------------------------------------ #
    def _worker_store_root(self, worker_id: str) -> Path:
        if self.config.worker_stores:
            return self.campaign_dir / "stores" / worker_id
        return self.store.root

    def _probe_store(self, key: str) -> bool:
        """Is this cell already served by the main or any worker store?"""
        if self.store.get(key) is not None:
            return True
        if not self.config.worker_stores:
            return False
        stores_dir = self.campaign_dir / "stores"
        if not stores_dir.is_dir():
            return False
        for child in sorted(p for p in stores_dir.iterdir() if p.is_dir()):
            handle = self._worker_store_handles.get(child.name)
            if handle is None:
                handle = ResultStore(child)
                self._worker_store_handles[child.name] = handle
            if handle.get(key) is not None:
                return True
        return False

    # ------------------------------------------------------------------ #
    def _spawn(self, worker_id: str, *, respawn: bool = False) -> None:
        generation = self._generations.get(worker_id, 0) + 1
        self._generations[worker_id] = generation
        mail = self.campaign_dir / "mail"
        inbox_path = mail / f"{worker_id}.g{generation}.in.jsonl"
        outbox_path = mail / f"{worker_id}.g{generation}.out.jsonl"
        if respawn:
            self.journal.append({"type": "worker-respawn", "worker": worker_id})
            self._progress(f"respawning worker {worker_id} (generation {generation})")
        inbox = MailboxWriter(inbox_path)
        process = self._mp.Process(
            target=campaign_worker_main,
            args=(
                worker_id,
                self.plan.spec,
                self.config,
                str(inbox_path),
                str(outbox_path),
                str(self._worker_store_root(worker_id)),
            ),
            name=f"campaign-{worker_id}",
            daemon=True,
        )
        process.start()
        self._workers.append(
            _Worker(
                worker_id=worker_id,
                generation=generation,
                process=process,
                inbox=inbox,
                reader=MailboxReader(outbox_path),
                last_seen=time.monotonic(),
            )
        )

    def _kill(self, worker: _Worker) -> None:
        worker.inbox.close()
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(2.0)

    def _replace(self, worker: _Worker) -> None:
        """Remove a casualty and spawn its successor if budget remains.

        The respawn budget is campaign-wide: against a machine-level
        problem (OOM killer, broken interpreter) replacements die exactly
        like their predecessors, and forking forever would just thrash —
        past the budget the coordinator degrades instead.
        """
        self._kill(worker)
        self._workers.remove(worker)
        if self._respawns < self.config.max_respawns:
            self._respawns += 1
            self._spawn(worker.worker_id, respawn=True)
        else:
            self._progress(
                f"worker {worker.worker_id} not replaced (respawn budget "
                f"{self.config.max_respawns} exhausted)"
            )

    # ------------------------------------------------------------------ #
    def _land(self, cell_index: int, *, source: str, worker: Optional[str], attempt: int) -> None:
        cell = self.plan.cells[cell_index]
        record = {
            "type": "landed",
            "cell": cell.index,
            "key": cell.key,
            "worker": worker,
            "attempt": attempt,
            "source": source,
        }
        self.journal.append(record)
        self._landed.add(cell.index)
        self._leased.discard(cell.index)
        self._pending.pop(cell.index, None)
        if source == "store":
            self.landed_from_store += 1
        else:
            self.landed_computed += 1
        _OBS.count("repro_campaign_landed_total", source=source)
        _OBS.gauge_set("repro_campaign_cells_landed", float(self._landed_total()))
        self._emit(
            "cell-landed",
            cell=cell.index,
            scenario=cell.scenario_label,
            scheduler=cell.scheduler_label,
            source=source,
            worker=worker,
            landed=self._landed_total(),
            n_cells=len(self.plan.cells),
        )
        self._progress(
            f"landed {self._landed_total()}/{len(self.plan.cells)} "
            f"({cell.scenario_label} x {cell.scheduler_label}, {source})"
        )

    def _fail_cell(
        self, cell_index: int, attempt: int, kind: str, error: str, *, worker: Optional[str]
    ) -> None:
        """Journal one failed attempt; schedule a retry or quarantine."""
        self._leased.discard(cell_index)
        attempts = max(self._attempts.get(cell_index, 0), attempt)
        self._attempts[cell_index] = attempts
        quarantine = attempts >= self.config.retry_budget
        retry_in = (
            None
            if quarantine
            else backoff_seconds(self.config, self.plan.campaign_id, cell_index, attempts)
        )
        self.journal.append(
            {
                "type": "failed",
                "cell": cell_index,
                "worker": worker,
                "attempt": attempt,
                "kind": kind,
                "error": error,
                "retry_in": retry_in,
            }
        )
        cell = self.plan.cells[cell_index]
        _OBS.count("repro_campaign_cell_failures_total", kind=kind)
        if quarantine:
            self.journal.append(
                {"type": "quarantined", "cell": cell_index, "attempts": attempts, "error": error}
            )
            self._quarantined[cell_index] = (attempts, error)
            _OBS.count("repro_campaign_quarantined_total")
            self._emit(
                "cell-quarantined",
                cell=cell_index,
                scenario=cell.scenario_label,
                scheduler=cell.scheduler_label,
                attempts=attempts,
                error=error,
            )
            self._progress(
                f"QUARANTINED cell {cell_index} ({cell.scenario_label} x "
                f"{cell.scheduler_label}) after {attempts} attempt(s): {error}"
            )
        else:
            assert retry_in is not None
            self._pending[cell_index] = time.monotonic() + retry_in
            self.retries += 1
            _OBS.count("repro_campaign_retries_total", kind=kind)
            self._emit(
                "cell-failed",
                cell=cell_index,
                scenario=cell.scenario_label,
                scheduler=cell.scheduler_label,
                attempt=attempt,
                kind=kind,
                error=error,
                retry_in=retry_in,
            )
            self._progress(
                f"cell {cell_index} attempt {attempt} failed ({kind}): {error} "
                f"— retry in {retry_in:.2f}s"
            )

    # ------------------------------------------------------------------ #
    def _drain(self) -> None:
        now = time.monotonic()
        for worker in list(self._workers):
            records = worker.reader.poll()
            if records:
                worker.last_seen = now
            for record in records:
                rtype = record.get("type")
                if rtype == "ready":
                    worker.ready = True
                elif rtype == "start":
                    if worker.lease is not None and record.get("seq") == worker.lease.seq:
                        worker.lease.started = now
                elif rtype == "done":
                    if worker.lease is not None and record.get("seq") == worker.lease.seq:
                        lease = worker.lease
                        worker.lease = None
                        self._land(
                            lease.cell,
                            source="worker",
                            worker=worker.worker_id,
                            attempt=lease.attempt,
                        )
                elif rtype == "error":
                    if worker.lease is not None and record.get("seq") == worker.lease.seq:
                        lease = worker.lease
                        worker.lease = None
                        self._fail_cell(
                            lease.cell,
                            lease.attempt,
                            "error",
                            str(record.get("error", "worker error")),
                            worker=worker.worker_id,
                        )
                elif rtype == "fatal":
                    # Startup failure: the process is about to exit on its
                    # own; replace it through the normal casualty path.
                    self.worker_deaths += 1
                    _OBS.count("repro_campaign_worker_deaths_total", kind="fatal")
                    self._emit(
                        "worker-death",
                        worker=worker.worker_id,
                        kind="fatal",
                        error=str(record.get("error", "")),
                    )
                    self._progress(
                        f"worker {worker.worker_id} fatal: {record.get('error')}"
                    )
                    self._replace(worker)
                    break
                # "heartbeat" / "bye" only refresh last_seen.

    def _check_health(self) -> None:
        now = time.monotonic()
        for worker in list(self._workers):
            if not worker.process.is_alive():
                self.worker_deaths += 1
                _OBS.count("repro_campaign_worker_deaths_total", kind="died")
                self._emit(
                    "worker-death",
                    worker=worker.worker_id,
                    kind="died",
                    exitcode=worker.process.exitcode,
                )
                if worker.lease is not None:
                    lease = worker.lease
                    worker.lease = None
                    self._fail_cell(
                        lease.cell,
                        lease.attempt,
                        "worker-died",
                        f"worker {worker.worker_id} died "
                        f"(exit code {worker.process.exitcode})",
                        worker=worker.worker_id,
                    )
                self._replace(worker)
                continue
            if worker.lease is not None and worker.lease.started is not None:
                cell = self.plan.cells[worker.lease.cell]
                timeout = self.config.cell_timeout(cell.estimate_seconds)
                if now - worker.lease.started > timeout:
                    self.timeouts += 1
                    _OBS.count("repro_campaign_timeouts_total")
                    lease = worker.lease
                    worker.lease = None
                    self._fail_cell(
                        lease.cell,
                        lease.attempt,
                        "timeout",
                        f"cell exceeded its {timeout:g}s watchdog",
                        worker=worker.worker_id,
                    )
                    # The worker is wedged inside the cell: replace it.
                    self._replace(worker)
                    continue
            if now - worker.last_seen > self.config.lease_seconds:
                if worker.lease is not None:
                    self.lease_expiries += 1
                    _OBS.count("repro_campaign_lease_expiries_total")
                    lease = worker.lease
                    worker.lease = None
                    self._fail_cell(
                        lease.cell,
                        lease.attempt,
                        "lease-expired",
                        f"worker {worker.worker_id} silent for "
                        f"{self.config.lease_seconds:g}s; lease forfeited",
                        worker=worker.worker_id,
                    )
                self._replace(worker)

    def _dispatch(self) -> None:
        now = time.monotonic()
        idle = [
            w
            for w in self._workers
            if w.ready and w.lease is None and w.process.is_alive()
        ]
        if not idle:
            return
        ready_cells = sorted(
            index for index, ready_at in self._pending.items() if ready_at <= now
        )
        for worker in idle:
            leased = False
            while ready_cells and not leased:
                cell_index = ready_cells.pop(0)
                cell = self.plan.cells[cell_index]
                if self._probe_store(cell.key):
                    # Someone already produced this cell (earlier run,
                    # another host's merged store, a timed-out worker that
                    # finished after forfeiting): land it without compute.
                    self._land(cell_index, source="store", worker=None, attempt=0)
                    continue
                self._seq += 1
                attempt = self._attempts.get(cell_index, 0) + 1
                self.journal.append(
                    {
                        "type": "lease",
                        "cell": cell_index,
                        "worker": worker.worker_id,
                        "attempt": attempt,
                        "seq": self._seq,
                    }
                )
                worker.inbox.send(
                    {"type": "lease", "cell": cell_index, "attempt": attempt, "seq": self._seq}
                )
                worker.lease = _Lease(cell=cell_index, attempt=attempt, seq=self._seq)
                del self._pending[cell_index]
                self._leased.add(cell_index)
                _OBS.count("repro_campaign_leases_total")
                self._emit(
                    "cell-leased",
                    cell=cell_index,
                    worker=worker.worker_id,
                    attempt=attempt,
                )
                leased = True

    def _degrade_no_workers(self) -> None:
        """Quarantine everything still open once no worker can ever run it."""
        for cell_index in sorted(set(self._pending) | self._leased):
            attempts = self._attempts.get(cell_index, 0)
            error = "no workers left (respawn budget exhausted)"
            self.journal.append(
                {"type": "quarantined", "cell": cell_index, "attempts": attempts, "error": error}
            )
            self._quarantined[cell_index] = (attempts, error)
        self._pending.clear()
        self._leased.clear()

    def _shutdown_workers(self) -> None:
        if self.halted:
            # Halt simulates a coordinator crash: take the workers down
            # with no goodbye, exactly like the real thing.
            for worker in self._workers:
                self._kill(worker)
            self._workers.clear()
            return
        for worker in self._workers:
            try:
                worker.inbox.send({"type": "shutdown"})
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 5.0
        for worker in self._workers:
            worker.process.join(max(0.1, deadline - time.monotonic()))
            self._kill(worker)
        self._workers.clear()

    # ------------------------------------------------------------------ #
    def run(self) -> CampaignResult:
        self._emit(
            "campaign-start",
            campaign=self.plan.campaign_id,
            n_cells=len(self.plan.cells),
            workers=self.config.workers,
            resumed=self.resumes > 0,
        )
        try:
            for i in range(self.config.workers):
                self._spawn(f"w{i}")
            while True:
                self._drain()
                if (
                    self.config.halt_after_landed is not None
                    and self.landed_computed >= self.config.halt_after_landed
                ):
                    self.halted = True
                    break
                self._check_health()
                self._dispatch()
                if not self._pending and not self._leased:
                    break
                if not self._workers:
                    self._degrade_no_workers()
                    break
                time.sleep(self.config.poll_seconds)
        finally:
            self._shutdown_workers()
        if not self.halted:
            self.journal.append(
                {
                    "type": "complete",
                    "landed": len(self._landed),
                    "quarantined": len(self._quarantined),
                    "degraded": bool(self._quarantined),
                }
            )
            _unregister_pointer(self.store, self.plan.campaign_id)
        outcome = self.result()
        self._emit(
            "campaign-complete",
            campaign=outcome.campaign_id,
            landed=outcome.landed,
            n_cells=outcome.n_cells,
            quarantined=len(outcome.quarantined),
            retries=outcome.retries,
            worker_deaths=outcome.worker_deaths,
            degraded=outcome.degraded,
            halted=outcome.halted,
        )
        return outcome

    def result(self) -> CampaignResult:
        quarantined = tuple(
            QuarantinedCell(
                index=index,
                key=self.plan.cells[index].key,
                scenario_label=self.plan.cells[index].scenario_label,
                scheduler_label=self.plan.cells[index].scheduler_label,
                attempts=attempts,
                error=error,
            )
            for index, (attempts, error) in sorted(self._quarantined.items())
        )
        return CampaignResult(
            campaign_id=self.plan.campaign_id,
            journal_path=str(self.journal.path),
            n_cells=len(self.plan.cells),
            landed=len(self._landed),
            landed_from_store=self.landed_from_store,
            landed_computed=self.landed_computed,
            quarantined=quarantined,
            retries=self.retries,
            lease_expiries=self.lease_expiries,
            timeouts=self.timeouts,
            worker_deaths=self.worker_deaths,
            degraded=bool(quarantined),
            halted=self.halted,
            resumes=self.resumes,
        )


# ---------------------------------------------------------------------- #
def run_campaign(
    spec: ExperimentSpec,
    campaign_dir: Union[str, Path],
    *,
    store: Union[ResultStore, str, Path, None] = None,
    config: Optional[CampaignConfig] = None,
    spec_data: Optional[dict] = None,
    progress: Progress = None,
    on_event: EventHook = None,
) -> CampaignResult:
    """Start a fresh campaign in ``campaign_dir``.

    ``spec_data`` is the spec's raw (pre-validation) mapping, embedded in
    the journal header so a later ``resume`` is self-contained; without it
    the campaign still runs, but only ``status`` — not ``resume`` — works
    afterwards.  A directory already holding a journal is refused: that
    campaign must be resumed (or a fresh directory chosen), never silently
    restarted over its own history.
    """
    plan = plan_campaign(spec)
    config = config if config is not None else CampaignConfig()
    campaign_dir = Path(campaign_dir)
    journal_path = campaign_dir / "journal.jsonl"
    if journal_path.exists() and journal_path.stat().st_size > 0:
        raise ValidationError(
            f"{campaign_dir} already holds a campaign journal; use "
            "'repro campaign resume' to continue it, or pick a fresh --dir"
        )
    result_store = _as_store(store)
    with CampaignJournal(journal_path) as journal:
        journal.append(
            {
                "type": "campaign",
                "version": 1,
                "id": plan.campaign_id,
                "spec_name": spec.name,
                "spec_data": spec_data,
                "overrides": {
                    "seed": spec.seed,
                    "max_time": spec.max_time,
                    "engine": spec.engine,
                },
                "config": config.as_dict(),
                "store": str(result_store.root),
                "worker_stores": config.worker_stores,
                "n_cells": len(plan.cells),
                "cells": [cell.as_dict() for cell in plan.cells],
            }
        )
        _register_pointer(result_store, plan.campaign_id, journal_path)
        coordinator = CampaignCoordinator(
            plan, config, campaign_dir, result_store, journal,
            progress=progress, on_event=on_event,
        )
        coordinator.seed_fresh()
        return coordinator.run()


def resume_campaign(
    campaign_dir: Union[str, Path],
    *,
    store: Union[ResultStore, str, Path, None] = None,
    workers: Optional[int] = None,
    progress: Progress = None,
    on_event: EventHook = None,
    retry_quarantined: bool = False,
    halt_after_landed: Optional[int] = None,
) -> CampaignResult:
    """Resume a crashed (or halted) campaign from its journal.

    Replays the journal, verifies every replayed-landed cell against the
    store(s), and recomputes only cells that never landed.  The plan is
    re-derived from the embedded spec and must hash to the journal's
    campaign id — if the producing code or the spec changed in between,
    resume refuses loudly rather than mixing incompatible results.
    """
    campaign_dir = Path(campaign_dir)
    journal_path = campaign_dir / "journal.jsonl"
    records, corrupt = read_journal(journal_path)
    state = replay_journal(records)
    header = state.header
    if header is None:
        raise ValidationError(
            f"{journal_path} has no readable campaign header; nothing to resume"
        )
    spec_data = header.get("spec_data")
    if not isinstance(spec_data, dict):
        raise ValidationError(
            "this campaign's journal does not embed its spec (it was started "
            "programmatically without spec_data); resume needs the original spec"
        )
    overrides = header.get("overrides") or {}
    spec = parse_spec(spec_data, name=str(header.get("spec_name", "experiment")))
    spec = spec.with_overrides(
        seed=overrides.get("seed"),
        max_time=overrides.get("max_time"),
        engine=overrides.get("engine"),
    )
    config = CampaignConfig.from_dict(header.get("config") or {})
    if workers is not None:
        config = replace(config, workers=workers)
    config = replace(config, halt_after_landed=halt_after_landed)
    plan = plan_campaign(spec)
    if plan.campaign_id != header.get("id"):
        raise ValidationError(
            f"campaign identity mismatch: the journal was written as "
            f"{header.get('id')} but the current code/spec plans "
            f"{plan.campaign_id} — the producing code or the spec changed; "
            "start a fresh campaign instead of resuming this one"
        )
    result_store = _as_store(store if store is not None else header.get("store"))
    if state.complete and not (retry_quarantined and state.quarantine_errors):
        # Nothing left to coordinate; report the recorded outcome.
        quarantined = tuple(
            QuarantinedCell(
                index=index,
                key=plan.cells[index].key,
                scenario_label=plan.cells[index].scenario_label,
                scheduler_label=plan.cells[index].scheduler_label,
                attempts=state.attempts.get(index, 0),
                error=error,
            )
            for index, error in sorted(state.quarantine_errors.items())
        )
        counts = state.counts()
        return CampaignResult(
            campaign_id=str(header.get("id")),
            journal_path=str(journal_path),
            n_cells=len(plan.cells),
            landed=counts[LANDED],
            landed_from_store=0,
            landed_computed=0,
            quarantined=quarantined,
            retries=0,
            lease_expiries=0,
            timeouts=0,
            worker_deaths=0,
            degraded=bool(quarantined),
            halted=False,
            resumes=state.resumes,
        )
    with CampaignJournal(journal_path) as journal:
        journal.append({"type": "resume"})
        _register_pointer(result_store, plan.campaign_id, journal_path)
        coordinator = CampaignCoordinator(
            plan, config, campaign_dir, result_store, journal,
            progress=progress, on_event=on_event,
        )
        coordinator.resumes = state.resumes + 1
        coordinator.seed_resume(state, retry_quarantined=retry_quarantined)
        return coordinator.run()


def _worker_heartbeats(campaign_dir: Path, *, now: Optional[float] = None) -> list[dict]:
    """Per-worker liveness rows scanned from the outbox mailboxes.

    Only the latest generation of each worker counts (a respawned worker
    gets a fresh mailbox pair, so earlier generations are dead history).
    Heartbeat *age* is ``now − t`` with ``t`` the wall-clock stamp the
    worker wrote — the mailbox file's mtime is useless here, because
    ``done``/``error`` records also touch the file.  Cells/sec divides the
    snapshot's ``cells_done`` by its ``elapsed_seconds``, both measured by
    the worker itself, so a status read seconds later cannot skew the rate.
    """
    mail = campaign_dir / "mail"
    if not mail.is_dir():
        return []
    latest: dict[str, tuple[int, Path]] = {}
    for path in sorted(mail.glob("*.out.jsonl")):
        stem = path.name[: -len(".out.jsonl")]
        worker_id, sep, generation_text = stem.rpartition(".g")
        if not sep or not worker_id:
            continue
        try:
            generation = int(generation_text)
        except ValueError:
            continue
        if worker_id not in latest or generation > latest[worker_id][0]:
            latest[worker_id] = (generation, path)
    if now is None:
        now = time.time()
    rows: list[dict] = []
    for worker_id, (generation, path) in sorted(latest.items()):
        last_beat: Optional[float] = None
        metrics: dict = {}
        for record in MailboxReader(path).poll():
            t = record.get("t")
            if isinstance(t, (int, float)) and not isinstance(t, bool):
                last_beat = float(t)
                snapshot = record.get("metrics")
                if isinstance(snapshot, dict):
                    metrics = snapshot
        cells_done = metrics.get("cells_done")
        elapsed = metrics.get("elapsed_seconds")
        rate: Optional[float] = None
        if (
            isinstance(cells_done, (int, float))
            and isinstance(elapsed, (int, float))
            and elapsed > 0
        ):
            rate = float(cells_done) / float(elapsed)
        rows.append(
            {
                "worker": worker_id,
                "generation": generation,
                "heartbeat_age_seconds": (
                    max(0.0, now - last_beat) if last_beat is not None else None
                ),
                "cells_done": cells_done,
                "cells_failed": metrics.get("cells_failed"),
                "cells_per_second": rate,
            }
        )
    return rows


def campaign_status(campaign_dir: Union[str, Path]) -> dict:
    """Journal-derived status of a campaign directory (live or dead).

    Pure journal read — needs neither the producing code of the cells nor
    any process to be running, so it also works on a campaign directory
    copied off a crashed host.  The ``workers`` rows add the mailbox-side
    view: per-worker heartbeat age and cells/sec (see
    :func:`_worker_heartbeats`), live only while worker processes run but
    still readable afterwards as each worker's final word.
    """
    journal_path = Path(campaign_dir) / "journal.jsonl"
    if not journal_path.exists():
        raise ValidationError(f"no campaign journal at {journal_path}")
    records, corrupt = read_journal(journal_path)
    state = replay_journal(records)
    header = state.header or {}
    counts = state.counts()
    cells = []
    header_cells = header.get("cells")
    if isinstance(header_cells, list):
        for row in header_cells:
            if not isinstance(row, dict):
                continue
            index = row.get("index")
            detail = dict(row)
            detail["state"] = state.states.get(index, "unknown")
            detail["attempts"] = state.attempts.get(index, 0)
            if index in state.landed_source:
                detail["source"] = state.landed_source[index]
            if index in state.quarantine_errors:
                detail["error"] = state.quarantine_errors[index]
            cells.append(detail)
    return {
        "id": header.get("id"),
        "spec": header.get("spec_name"),
        "store": header.get("store"),
        "worker_stores": header.get("worker_stores"),
        "n_cells": header.get("n_cells"),
        "complete": state.complete,
        "resumes": state.resumes,
        "corrupt_journal_lines": corrupt,
        "counts": counts,
        "cells": cells,
        "workers": _worker_heartbeats(Path(campaign_dir)),
    }

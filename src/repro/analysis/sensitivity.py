"""Sensibility (periodicity) study — Figure 7.

Section 4.3 asks whether the periodicity assumption matters: applications
are perturbed so that their per-instance compute time (or I/O volume) varies
by a controlled *sensibility* ``(max - min) / max`` between 0% and 30%, and
the heuristics are re-evaluated.  The paper's finding — which this module
reproduces — is that the online heuristics are essentially insensitive to
the perturbation, because they only ever react to the current state of the
system and never rely on the repetition pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.platform import Platform, intrepid
from repro.core.scenario import Scenario
from repro.experiments.runner import SchedulerCase, run_grid
from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import ValidationError, check_in_range
from repro.workload.generator import apply_sensibility, figure6_mix

__all__ = ["SensitivityPoint", "SensitivityStudy", "sensitivity_study"]

#: The heuristics plotted in Figure 7.
FIGURE7_SCHEDULERS: tuple[str, ...] = ("MinDilation", "MaxSysEff", "MinMax-0.5")


@dataclass(frozen=True)
class SensitivityPoint:
    """Mean objectives of every heuristic at one sensibility level."""

    sensibility_percent: float
    system_efficiency: dict[str, float]
    dilation: dict[str, float]


@dataclass
class SensitivityStudy:
    """The Figure 7 sweep."""

    points: list[SensitivityPoint]
    schedulers: tuple[str, ...]

    def series(self, scheduler: str, metric: str) -> list[float]:
        """The per-sensibility series of one heuristic for one metric."""
        if metric not in ("system_efficiency", "dilation"):
            raise ValidationError(f"unknown metric {metric!r}")
        return [getattr(p, metric)[scheduler] for p in self.points]

    def sensibilities(self) -> list[float]:
        """The x axis (percent)."""
        return [p.sensibility_percent for p in self.points]

    def max_relative_variation(self, scheduler: str, metric: str) -> float:
        """Largest relative deviation from the 0%-sensibility value.

        The paper's claim is that this stays small; the integration tests
        assert it directly.
        """
        series = self.series(scheduler, metric)
        baseline = series[0]
        if baseline == 0:
            return 0.0
        return float(max(abs(v - baseline) / abs(baseline) for v in series))


def sensitivity_study(
    sensibilities_percent: Sequence[float] = (0, 5, 10, 15, 20, 25, 30),
    *,
    schedulers: Sequence[str] = FIGURE7_SCHEDULERS,
    scenario: str = "10large-20",
    n_repetitions: int = 5,
    platform: Optional[Platform] = None,
    rng: RngLike = None,
    perturb_io: bool = False,
) -> SensitivityStudy:
    """Run the Figure 7 sweep.

    Parameters
    ----------
    sensibilities_percent:
        The x axis: per-instance compute-time variability, in percent.
    perturb_io:
        Also perturb the I/O volumes (the paper notes the conclusion is the
        same).
    """
    platform = platform or intrepid()
    cases = [SchedulerCase(name=name) for name in schedulers]
    # The base mixes are generated once and shared by every sensibility level,
    # so the sweep isolates the effect of the perturbation (the paper's x axis)
    # from the randomness of the mix itself.
    mix_rngs = spawn_rngs(rng, n_repetitions)
    base_mixes = [
        figure6_mix(scenario, platform, mix_rng, label=f"{scenario}-rep{i}")
        for i, mix_rng in enumerate(mix_rngs)
    ]
    perturb_rngs = spawn_rngs(rng, n_repetitions)
    points: list[SensitivityPoint] = []
    for sensibility in sensibilities_percent:
        check_in_range("sensibility", sensibility, 0.0, 99.0)
        fraction = sensibility / 100.0
        scenarios: list[Scenario] = []
        for i, base in enumerate(base_mixes):
            perturbed = tuple(
                apply_sensibility(
                    app,
                    sensibility_work=fraction,
                    sensibility_io=fraction if perturb_io else 0.0,
                    rng=perturb_rngs[i],
                )
                for app in base.applications
            )
            scenarios.append(
                base.with_applications(perturbed).with_label(
                    f"sens{sensibility:g}-rep{i}"
                )
            )
        grid = run_grid(scenarios, cases)
        averages = grid.averages()
        points.append(
            SensitivityPoint(
                sensibility_percent=float(sensibility),
                system_efficiency={
                    s: averages[s]["system_efficiency"] for s in schedulers
                },
                dilation={s: averages[s]["dilation"] for s in schedulers},
            )
        )
    return SensitivityStudy(points=points, schedulers=tuple(schedulers))

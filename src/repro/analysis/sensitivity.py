"""Sensibility (periodicity) study — Figure 7.

Section 4.3 asks whether the periodicity assumption matters: applications
are perturbed so that their per-instance compute time (or I/O volume) varies
by a controlled *sensibility* ``(max - min) / max`` between 0% and 30%, and
the heuristics are re-evaluated.  The paper's finding — which this module
reproduces — is that the online heuristics are essentially insensitive to
the perturbation, because they only ever react to the current state of the
system and never rely on the repetition pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.platform import Platform, intrepid
from repro.core.scenario import Scenario
from repro.experiments.runner import ExperimentExecutor, SchedulerCase, run_grid
from repro.utils.rng import RngLike, as_rng, spawn_rngs
from repro.utils.validation import ValidationError, check_in_range
from repro.workload.generator import apply_sensibility, figure6_mix

__all__ = [
    "SensitivityPoint",
    "SensitivityStudy",
    "sensitivity_study",
    "derive_streams",
]

#: The heuristics plotted in Figure 7.
FIGURE7_SCHEDULERS: tuple[str, ...] = ("MinDilation", "MaxSysEff", "MinMax-0.5")


@dataclass(frozen=True)
class SensitivityPoint:
    """Mean objectives of every heuristic at one sensibility level."""

    sensibility_percent: float
    system_efficiency: dict[str, float]
    dilation: dict[str, float]


@dataclass
class SensitivityStudy:
    """The Figure 7 sweep."""

    points: list[SensitivityPoint]
    schedulers: tuple[str, ...]

    def series(self, scheduler: str, metric: str) -> list[float]:
        """The per-sensibility series of one heuristic for one metric."""
        if metric not in ("system_efficiency", "dilation"):
            raise ValidationError(f"unknown metric {metric!r}")
        return [getattr(p, metric)[scheduler] for p in self.points]

    def sensibilities(self) -> list[float]:
        """The x axis (percent)."""
        return [p.sensibility_percent for p in self.points]

    def max_relative_variation(self, scheduler: str, metric: str) -> float:
        """Largest relative deviation from the 0%-sensibility value.

        The paper's claim is that this stays small; the integration tests
        assert it directly.
        """
        series = self.series(scheduler, metric)
        baseline = series[0]
        if baseline == 0:
            return 0.0
        return float(max(abs(v - baseline) / abs(baseline) for v in series))


def derive_streams(
    rng: RngLike, n_repetitions: int, n_levels: int
) -> tuple[list[np.random.Generator], list[list[np.random.Generator]]]:
    """Disjoint random streams for the Figure 7 sweep.

    Returns ``(mix_rngs, perturb_rngs)`` where ``mix_rngs[rep]`` generates
    repetition ``rep``'s base mix and ``perturb_rngs[level][rep]`` perturbs
    that mix at one sensibility level.  All ``n_repetitions * (1 + n_levels)``
    generators are spawned from a *single* coerced generator, so:

    * perturbation streams never replay the mix streams (spawning twice from
      the same integer seed would — the pre-fix bug correlated Figure 7's
      perturbations with its mix generation, undermining the insensitivity
      claim);
    * each (level, repetition) pair owns a fresh generator, making every
      level's perturbation a pure function of (seed, level index, repetition)
      instead of depending on how many draws earlier levels consumed from a
      shared stateful stream.
    """
    base = as_rng(rng)
    mix_rngs = spawn_rngs(base, n_repetitions)
    perturb_rngs = [spawn_rngs(base, n_repetitions) for _ in range(n_levels)]
    return mix_rngs, perturb_rngs


def sensitivity_study(
    sensibilities_percent: Sequence[float] = (0, 5, 10, 15, 20, 25, 30),
    *,
    schedulers: Sequence[str] = FIGURE7_SCHEDULERS,
    scenario: str = "10large-20",
    n_repetitions: int = 5,
    platform: Optional[Platform] = None,
    rng: RngLike = None,
    perturb_io: bool = False,
    max_time: float = float("inf"),
    workers: int | None = None,
    progress: Optional[Callable[[str], None]] = None,
    executor: Optional[ExperimentExecutor] = None,
    engine: Optional[str] = None,
) -> SensitivityStudy:
    """Run the Figure 7 sweep.

    Parameters
    ----------
    sensibilities_percent:
        The x axis: per-instance compute-time variability, in percent.
    perturb_io:
        Also perturb the I/O volumes (the paper notes the conclusion is the
        same).
    max_time, workers:
        Passed to :func:`repro.experiments.runner.run_grid` for every level's
        grid: a simulated-time truncation horizon and the worker-process
        count.
    progress:
        Optional callback receiving one human-readable line per completed
        sensibility level (long sweeps otherwise stay silent to the end).
    executor:
        Caller-owned :class:`~repro.experiments.runner.ExperimentExecutor`
        shared by every level's grid — the sweep runs many small grids, so
        reusing one pool instead of spawning one per level is the difference
        between paying process start-up once and paying it ``n_levels``
        times.
    engine:
        Simulation kernel per cell (``"heap"`` or ``"batched"``; ``None``
        uses the default engine) — bit-identical either way.
    """
    platform = platform or intrepid()
    cases = [SchedulerCase(name=name) for name in schedulers]
    levels = [float(s) for s in sensibilities_percent]
    for sensibility in levels:
        check_in_range("sensibility", sensibility, 0.0, 99.0)
    # The base mixes are generated once and shared by every sensibility level,
    # so the sweep isolates the effect of the perturbation (the paper's x axis)
    # from the randomness of the mix itself.  Perturbation streams are spawned
    # per (level, repetition), disjoint from the mix streams — see
    # :func:`derive_streams`.
    mix_rngs, perturb_rngs = derive_streams(rng, n_repetitions, len(levels))
    base_mixes = [
        figure6_mix(scenario, platform, mix_rng, label=f"{scenario}-rep{i}")
        for i, mix_rng in enumerate(mix_rngs)
    ]
    points: list[SensitivityPoint] = []
    for level, sensibility in enumerate(levels):
        fraction = sensibility / 100.0
        scenarios: list[Scenario] = []
        for i, base in enumerate(base_mixes):
            perturbed = tuple(
                apply_sensibility(
                    app,
                    sensibility_work=fraction,
                    sensibility_io=fraction if perturb_io else 0.0,
                    rng=perturb_rngs[level][i],
                )
                for app in base.applications
            )
            scenarios.append(
                base.with_applications(perturbed).with_label(
                    f"sens{sensibility:g}-rep{i}"
                )
            )
        grid = run_grid(scenarios, cases, max_time=max_time, workers=workers,
                        executor=executor, engine=engine)
        averages = grid.averages()
        points.append(
            SensitivityPoint(
                sensibility_percent=float(sensibility),
                system_efficiency={
                    s: averages[s]["system_efficiency"] for s in schedulers
                },
                dilation={s: averages[s]["dilation"] for s in schedulers},
            )
        )
        if progress is not None:
            progress(
                f"sensibility {sensibility:g}%: level {level + 1}/{len(levels)} "
                f"done ({len(scenarios)} mixes x {len(cases)} heuristics)"
            )
    return SensitivityStudy(points=points, schedulers=tuple(schedulers))

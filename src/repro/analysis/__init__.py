"""Figure-level analyses that are not heuristic comparisons.

* :mod:`repro.analysis.throughput` — Figure 1, per-application I/O
  throughput decrease under congestion;
* :mod:`repro.analysis.usage` — Figure 5, workload characterization of the
  Darshan-like records;
* :mod:`repro.analysis.sensitivity` — Figure 7, impact of deviations from
  perfect periodicity.
"""

from repro.analysis.sensitivity import (
    FIGURE7_SCHEDULERS,
    SensitivityPoint,
    SensitivityStudy,
    sensitivity_study,
)
from repro.analysis.throughput import ThroughputDecreaseStudy, throughput_decrease_study
from repro.analysis.usage import (
    UsageByCategory,
    characterize,
    daily_usage,
    io_time_percentage,
)

__all__ = [
    "ThroughputDecreaseStudy",
    "throughput_decrease_study",
    "UsageByCategory",
    "characterize",
    "daily_usage",
    "io_time_percentage",
    "SensitivityStudy",
    "SensitivityPoint",
    "sensitivity_study",
    "FIGURE7_SCHEDULERS",
]

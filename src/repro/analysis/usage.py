"""Workload characterization of the Intrepid year (Figure 5).

Figure 5 summarizes the Darshan traces collected on Intrepid between
December 2012 and December 2013: (a) how much of the system each
application category used per day, and (b) what percentage of its time each
category spent doing I/O.  The reproduction computes the same two summaries
from the synthetic Darshan-like records of
:mod:`repro.workload.darshan`, so the numbers that seed the simulation
scenarios are documented the same way the paper documents its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.utils.validation import ValidationError
from repro.workload.categories import Category
from repro.workload.darshan import DarshanRecord

__all__ = ["UsageByCategory", "daily_usage", "io_time_percentage", "characterize"]

_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class UsageByCategory:
    """Figure 5 data: per-category usage and I/O-time percentages."""

    #: Mean node-hours per day consumed by each category.
    daily_node_hours: dict[Category, float]
    #: Mean percentage of runtime spent in I/O per category.
    io_time_percent: dict[Category, float]
    #: Number of jobs per category.
    job_counts: dict[Category, int]

    def dominant_category(self) -> Category:
        """Category consuming the most node-hours (the capability jobs)."""
        return max(self.daily_node_hours, key=lambda c: self.daily_node_hours[c])


def daily_usage(
    records: Sequence[DarshanRecord], duration_days: Optional[float] = None
) -> dict[Category, float]:
    """Average node-hours per day consumed by each category (Figure 5a)."""
    if not records:
        raise ValidationError("daily_usage needs at least one record")
    if duration_days is None:
        duration_days = max(r.end_time for r in records) / _SECONDS_PER_DAY
    duration_days = max(duration_days, 1e-9)
    totals = {c: 0.0 for c in Category}
    for record in records:
        node_hours = record.nodes * record.runtime / 3600.0
        totals[record.category] += node_hours
    return {c: totals[c] / duration_days for c in Category}


def io_time_percentage(records: Sequence[DarshanRecord]) -> dict[Category, float]:
    """Average percentage of runtime spent doing I/O per category (Figure 5b)."""
    if not records:
        raise ValidationError("io_time_percentage needs at least one record")
    fractions: dict[Category, list[float]] = {c: [] for c in Category}
    for record in records:
        fractions[record.category].append(100.0 * record.io_fraction)
    return {
        c: float(np.mean(v)) if v else 0.0
        for c, v in fractions.items()
    }


def characterize(
    records: Sequence[DarshanRecord],
    *,
    duration_days: Optional[float] = None,
) -> UsageByCategory:
    """Full Figure 5 characterization of a record set."""
    counts = {c: 0 for c in Category}
    for record in records:
        counts[record.category] += 1
    return UsageByCategory(
        daily_node_hours=daily_usage(records, duration_days),
        io_time_percent=io_time_percentage(records),
        job_counts=counts,
    )

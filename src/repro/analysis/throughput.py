"""Per-application I/O throughput decrease under congestion (Figure 1).

Figure 1 of the paper histograms, over ~400 Intrepid applications, the
percentage decrease of the I/O throughput each application observed
compared to what it would have obtained with the I/O system to itself; the
worst cases lose about 70%.

The reproduction replays synthetic Intrepid applications through the
simulator under the uncoordinated (interfering fair-share) baseline and
measures exactly the same quantity from the
:class:`~repro.simulator.metrics.ApplicationRecord` timings.  The result is
returned both as raw per-application values and as a binned distribution
ready to print or plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.platform import Platform, intrepid
from repro.experiments.runner import ExperimentExecutor, engine_runner, map_parallel
from repro.online.baselines import FairShare
from repro.simulator.engine import SimulatorConfig
from repro.simulator.interference import InterferenceModel
from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import ValidationError
from repro.workload.generator import MixSpec, generate_mix

__all__ = [
    "ThroughputDecreaseStudy",
    "figure1_batch_count",
    "throughput_decrease_study",
]


def figure1_batch_count(n_applications: int, applications_per_batch: int) -> int:
    """Number of simulated batches for a requested application count.

    Batches are integral, so the request is rounded to the nearest whole
    batch (at least one).  Exposed so consumers that need the study's work
    breakdown — e.g. the grid benchmark's cells/sec denominator — stay in
    lockstep with the batching rule here.
    """
    return max(1, int(round(n_applications / applications_per_batch)))


@dataclass(frozen=True)
class ThroughputDecreaseStudy:
    """Outcome of the Figure 1 replay.

    Attributes
    ----------
    decreases:
        Per-application throughput decrease, in percent (0 = no loss).
    bin_edges, histogram:
        Binned distribution (10%-wide bins by default).
    """

    decreases: tuple[float, ...]
    bin_edges: tuple[float, ...]
    histogram: tuple[int, ...]
    #: The caller's requested application count.  Batches are integral, so
    #: the measured count is ``n_batches * applications_per_batch`` — report
    #: both honestly instead of pretending the request was met exactly.
    n_applications_requested: int = 0

    @property
    def n_applications(self) -> int:
        """Number of applications actually measured."""
        return len(self.decreases)

    @property
    def max_decrease(self) -> float:
        """Worst observed decrease (percent) — the paper's ~70% headline."""
        return max(self.decreases) if self.decreases else 0.0

    @property
    def mean_decrease(self) -> float:
        """Average decrease (percent)."""
        return float(np.mean(self.decreases)) if self.decreases else 0.0

    def fraction_above(self, threshold_percent: float) -> float:
        """Fraction of applications losing more than ``threshold_percent``."""
        if not self.decreases:
            return 0.0
        return float(
            np.mean([d > threshold_percent for d in self.decreases])
        )


def _run_figure1_batch(shared: tuple, batch: tuple[int, np.random.Generator]) -> list[float]:
    """One Figure 1 batch: build the staggered mix, simulate, measure.

    Module-level and driven by a self-contained ``(index, generator)`` item
    so batches fan out over an :class:`ExperimentExecutor` — each batch owns
    a spawned generator, so a worker replays exactly the draws the serial
    loop would have made.
    """
    (platform, n_small, n_large, io_ratio, release_spread, interference,
     max_time, engine) = shared
    index, batch_rng = batch
    scenario = generate_mix(
        MixSpec(n_small=n_small, n_large=n_large),
        platform,
        io_ratio,
        batch_rng,
        label=f"figure1-batch-{index:03d}",
    )
    if release_spread > 0:
        typical_duration = float(
            np.mean([app.total_work for app in scenario.applications])
        )
        window = release_spread * typical_duration
        staggered = tuple(
            app.with_release_time(float(batch_rng.uniform(0.0, window)))
            for app in scenario.applications
        )
        scenario = scenario.with_applications(staggered)
    scheduler = (
        FairShare(interference=interference)
        if interference is not None
        else FairShare()
    )
    run_simulation = engine_runner(engine)
    result = run_simulation(scenario, scheduler, SimulatorConfig(max_time=max_time))
    return [100.0 * d for d in result.throughput_decreases().values()]


def throughput_decrease_study(
    n_applications: int = 400,
    *,
    platform: Optional[Platform] = None,
    applications_per_batch: int = 6,
    io_ratio: float = 0.15,
    release_spread: float = 2.0,
    interference: Optional[InterferenceModel] = None,
    rng: RngLike = None,
    bin_width: float = 10.0,
    max_time: float = float("inf"),
    workers: int | None = None,
    executor: Optional[ExperimentExecutor] = None,
    engine: Optional[str] = None,
) -> ThroughputDecreaseStudy:
    """Replay ~``n_applications`` applications under congestion (Figure 1).

    Applications are simulated in batches (each batch is one concurrent mix
    on the full machine, like a slice of the production schedule); their
    release times are staggered over ``release_spread`` times the typical
    application duration — on the real machine jobs start at different
    times, so I/O phases only sometimes collide — and the throughput
    decrease of every application is measured against its dedicated-mode
    bandwidth ``min(beta b, B)``.  ``max_time`` truncates each batch's
    simulation at that horizon (decreases are then measured on the I/O
    completed so far).

    Batches are mutually independent (each owns one spawned generator), so
    ``workers`` / ``executor`` fan them out over processes exactly like a
    grid — results are collected in batch order and are identical to the
    serial loop.  ``engine`` picks the simulation kernel per batch
    (``"heap"`` or ``"batched"``; ``None`` uses the default engine).
    """
    if n_applications <= 0:
        raise ValidationError("n_applications must be positive")
    if applications_per_batch <= 1:
        raise ValidationError("applications_per_batch must be at least 2")
    if release_spread < 0:
        raise ValidationError("release_spread must be >= 0")
    platform = platform or intrepid()
    n_batches = figure1_batch_count(n_applications, applications_per_batch)
    rngs = spawn_rngs(rng, n_batches)
    # 80/20 small/large split, clamped so every batch holds exactly
    # `applications_per_batch` applications with at least one of each
    # category (rounding used to inflate a 2-app batch to 3).
    n_small = min(
        applications_per_batch - 1,
        max(1, int(round(applications_per_batch * 0.8))),
    )
    n_large = applications_per_batch - n_small
    shared = (
        platform, n_small, n_large, io_ratio, release_spread, interference,
        max_time, engine,
    )
    batch_results = map_parallel(
        _run_figure1_batch,
        list(enumerate(rngs)),
        workers=workers,
        executor=executor,
        shared=shared,
    )
    decreases: list[float] = []
    for batch_decreases in batch_results:
        decreases.extend(batch_decreases)
    values = np.asarray(decreases, dtype=float)
    edges = np.arange(0.0, 100.0 + bin_width, bin_width)
    histogram, _ = np.histogram(values, bins=edges)
    return ThroughputDecreaseStudy(
        decreases=tuple(values.tolist()),
        bin_edges=tuple(edges.tolist()),
        histogram=tuple(int(h) for h in histogram),
        n_applications_requested=int(n_applications),
    )

"""Search over the period length ``T`` (Section 3.2.3, first paragraph).

"The first decision is to choose the length ``T`` of the period.  We start
from ``T = max_k (w^{(k)} + time_io^{(k)})``; while ``T`` is smaller than
``T_max``, the period is incremented by a factor ``(1 + eps)``, and a
solution is re-computed.  We take the best solution over all the periods."

:func:`search_period` implements exactly that sweep for either objective and
returns the best schedule together with the full sweep trace, so the
ablation benchmark can show the quality/price trade-off of ``eps`` and
``T_max``.

Warm start
----------
Most consecutive sweep points replay the *same* greedy build: a slightly
longer period only adds empty room at the right edge, and unless that room
turns one of the build's failed insertion attempts into a success, every
placement decision is provably unchanged.  The greedy inserter tracks a
conservative bound on the first period at which any of its decisions could
flip (see :mod:`repro.periodic.insertion`); ``search_period`` rebuilds only
when a sweep point crosses that bound and otherwise materializes the point
by rescoring the cached placements under the new period
(:meth:`~repro.periodic.schedule.PeriodicSchedule.with_period`).  The sweep
trace, the best period and the best schedule are bit-for-bit identical to
the naive sweep (``warm_start=False``; asserted by
``tests/test_period_warm_start.py``) — the warm start only skips provably
redundant greedy builds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Optional, Sequence

from repro.core.application import Application
from repro.core.platform import Platform
from repro.periodic.heuristics import PeriodicHeuristic, application_profiles
from repro.periodic.schedule import PeriodicSchedule
from repro.utils.validation import ValidationError, check_positive

__all__ = ["PeriodSearchResult", "minimum_period", "search_period"]

Objective = Literal["system_efficiency", "dilation"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated period length."""

    period: float
    system_efficiency: float
    dilation: float
    complete: bool


@dataclass(frozen=True)
class PeriodSearchResult:
    """Outcome of a period sweep.

    ``n_builds`` counts the greedy builds actually executed;
    ``len(sweep) - n_builds`` sweep points were warm-started from a cached
    build whose placements provably persist at the longer period.
    """

    best_schedule: PeriodicSchedule
    best_period: float
    objective: Objective
    sweep: tuple[SweepPoint, ...]
    n_builds: int = 0

    @property
    def best_point(self) -> SweepPoint:
        """The sweep point corresponding to the best period."""
        for point in self.sweep:
            if point.period == self.best_period:
                return point
        raise RuntimeError("best period missing from sweep")  # pragma: no cover


#: Sweeps with fewer estimated points than this run naive (no warm-start
#: reuse, no validity bookkeeping): reuse hits are too rare at that size to
#: pay for the tracking.  Pinned by tests/test_period_warm_start.py.
_WARM_START_MIN_POINTS = 32


def minimum_period(platform: Platform, applications: Sequence[Application]) -> float:
    """``max_k (w^{(k)} + time_io^{(k)})`` — the smallest sensible period."""
    if not applications:
        raise ValidationError("need at least one application")
    worst = 0.0
    for app in applications:
        inst = app.instances[0]
        peak = platform.peak_application_bandwidth(app.processors)
        time_io = inst.io_volume / peak if peak > 0 else 0.0
        worst = max(worst, inst.work + time_io)
    return worst


def search_period(
    heuristic: PeriodicHeuristic,
    platform: Platform,
    applications: Sequence[Application],
    *,
    objective: Objective = "system_efficiency",
    epsilon: float = 0.1,
    max_period: float | None = None,
    max_period_factor: float = 10.0,
    warm_start: bool = True,
) -> PeriodSearchResult:
    """Sweep the period length and keep the best schedule for ``objective``.

    Parameters
    ----------
    heuristic:
        The periodic heuristic used at every period length.
    objective:
        ``"system_efficiency"`` (maximize) or ``"dilation"`` (minimize).
        Schedules that fail to place at least one instance of every
        application are heavily penalized (a missing application means
        infinite dilation and zero progress).
    epsilon:
        Multiplicative step of the sweep (``T <- T * (1 + epsilon)``).
    max_period, max_period_factor:
        The sweep stops at ``max_period``; when not given, it defaults to
        ``max_period_factor`` times the minimum period.
    warm_start:
        Reuse the previous greedy build for sweep points at which it
        provably cannot change (the default; see the module docstring).
        ``False`` rebuilds at every point — same results, used by the
        equivalence tests and as the benchmark baseline.  The warm start is
        adaptive: sweeps shorter than ``_WARM_START_MIN_POINTS`` fall back
        to naive rebuilds (with validity bookkeeping switched off), because
        at that size the tracking overhead outweighs the occasional reuse —
        results are bit-identical either way.
    """
    check_positive("epsilon", epsilon)
    t_min = minimum_period(platform, applications)
    t_max = max_period if max_period is not None else t_min * max_period_factor
    if t_max < t_min:
        raise ValidationError(
            f"max_period ({t_max}) is smaller than the minimum period ({t_min})"
        )
    if objective not in ("system_efficiency", "dilation"):
        raise ValidationError(f"unknown objective {objective!r}")
    # Adaptive warm start: estimate the sweep length up front (the ladder is
    # t_min * (1+eps)^k capped at t_max, so the count is a closed form) and
    # drop to the naive path when it is too short to amortize the validity
    # bookkeeping.  Placements never depend on the bookkeeping, so this is a
    # pure speed decision.
    track_validity = warm_start
    if warm_start:
        if t_max <= t_min:
            estimated_points = 1
        else:
            estimated_points = (
                math.floor(math.log(t_max / t_min) / math.log(1.0 + epsilon)) + 2
            )
        if estimated_points < _WARM_START_MIN_POINTS:
            warm_start = False
            track_validity = False

    profiles = application_profiles(platform, applications)
    best_schedule: PeriodicSchedule | None = None
    best_period = math.nan
    best_score = -math.inf
    sweep: list[SweepPoint] = []
    cached_build: Optional[PeriodicSchedule] = None
    cached_valid_until = -math.inf
    n_builds = 0

    period = t_min
    while True:
        if warm_start and cached_build is not None and period < cached_valid_until:
            # The previous build provably replays unchanged at this period:
            # reuse its placements and rescore them under the longer period
            # (the summary code below is the same either way, so the sweep
            # point is bit-for-bit what a fresh build would have produced).
            schedule = cached_build.with_period(period)
        else:
            schedule, valid_until = heuristic.build_with_validity(
                platform, applications, period, profiles=profiles,
                track_validity=track_validity,
            )
            cached_build = schedule
            cached_valid_until = valid_until
            n_builds += 1
        summary = schedule.summary()
        complete = schedule.is_complete()
        sweep.append(
            SweepPoint(
                period=period,
                system_efficiency=summary.system_efficiency,
                dilation=summary.dilation,
                complete=complete,
            )
        )
        score = _score(summary.system_efficiency, summary.dilation, complete, objective)
        # `best_schedule is None` keeps the first sweep point even when every
        # score is -inf (e.g. no period admits a complete schedule under the
        # dilation objective) — the sweep must always return *a* schedule.
        if best_schedule is None or score > best_score:
            best_score = score
            best_schedule = schedule
            best_period = period
        if period >= t_max:
            break
        period = min(period * (1.0 + epsilon), t_max)

    assert best_schedule is not None  # at least one period is always evaluated
    return PeriodSearchResult(
        best_schedule=best_schedule,
        best_period=best_period,
        objective=objective,
        sweep=tuple(sweep),
        n_builds=n_builds,
    )


def _score(
    system_efficiency: float, dilation: float, complete: bool, objective: Objective
) -> float:
    """Higher-is-better score used to compare sweep points."""
    if not complete:
        # Incomplete schedules are only acceptable when nothing else exists.
        return -math.inf if objective == "dilation" else -1e12 + system_efficiency
    if objective == "system_efficiency":
        return system_efficiency
    if not math.isfinite(dilation):
        return -math.inf
    return -dilation

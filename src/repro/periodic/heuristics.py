"""Periodic scheduling heuristics of Section 3.2.3.

Both heuristics fill a period greedily with instances until nothing more
fits; they differ in *which* application gets the next slot:

* :class:`InsertInScheduleThrou` (SysEfficiency-oriented) — applications are
  sorted once by non-decreasing ``w / time_io`` (most I/O-bound first, so
  their transfers claim the early, empty parts of the period); the heuristic
  packs as many instances as possible of the first application before moving
  to the next.
* :class:`InsertInScheduleCong` (Dilation-oriented) — applications are
  re-ranked after every insertion by their *currently scheduled load*
  ``n_per * (w + time_io)`` and the least-loaded application is served next,
  which balances progress across applications.  (The paper's text says
  "sorts by non-increasing values … and always picks the largest one"; taken
  literally that degenerates into scheduling a single application forever,
  so we implement the fairness-balancing reading — pick the application with
  the smallest scheduled load — which is the only interpretation consistent
  with the heuristic's stated goal of optimizing Dilation.)

Both stop when a full round of applications yields no insertion.

The per-application congestion-free quantities both heuristics rank on
(``time_io``, the ``w / time_io`` ratio, the ``w + time_io`` footprint) are
period-independent, so :func:`application_profiles` computes them once and
the ``(1 + eps)`` period sweep shares one profile table across every sweep
point instead of re-deriving them per insertion.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.application import Application
from repro.core.platform import Platform
from repro.periodic.insertion import GreedyInserter
from repro.periodic.schedule import PeriodicSchedule
from repro.utils.validation import ValidationError

__all__ = [
    "ApplicationProfile",
    "application_profiles",
    "PeriodicHeuristic",
    "InsertInScheduleThrou",
    "InsertInScheduleCong",
]


@dataclass(frozen=True)
class ApplicationProfile:
    """Congestion-free per-instance quantities of one periodic application.

    ``time_io`` is the dedicated-mode transfer time ``vol / min(beta b, B)``;
    ``ratio`` is the compute/transfer balance ``w / time_io`` (``inf`` for
    I/O-free applications) and ``footprint`` the congestion-free instance
    duration ``w + time_io`` — exactly the quantities the Section 3.2.3
    orderings and the minimum-period bound are defined on.
    """

    work: float
    io_volume: float
    time_io: float
    ratio: float
    footprint: float


def application_profiles(
    platform: Platform, applications: Sequence[Application]
) -> dict[str, ApplicationProfile]:
    """One :class:`ApplicationProfile` per application, keyed by name."""
    profiles: dict[str, ApplicationProfile] = {}
    for app in applications:
        inst = app.instances[0]
        peak = platform.peak_application_bandwidth(app.processors)
        time_io = inst.io_volume / peak if peak > 0 else 0.0
        ratio = inst.work / time_io if time_io > 0 else float("inf")
        profiles[app.name] = ApplicationProfile(
            work=inst.work,
            io_volume=inst.io_volume,
            time_io=time_io,
            ratio=ratio,
            footprint=inst.work + time_io,
        )
    return profiles


class PeriodicHeuristic(abc.ABC):
    """Common driver: repeatedly pick an application and insert one instance."""

    #: Display name used in reports.
    name: str = "periodic"

    def build(
        self,
        platform: Platform,
        applications: Sequence[Application],
        period: float,
        *,
        profiles: Mapping[str, ApplicationProfile] | None = None,
    ) -> PeriodicSchedule:
        """Fill a period of length ``period`` with application instances."""
        schedule, _ = self.build_with_validity(
            platform, applications, period, profiles=profiles
        )
        return schedule

    def build_with_validity(
        self,
        platform: Platform,
        applications: Sequence[Application],
        period: float,
        *,
        profiles: Mapping[str, ApplicationProfile] | None = None,
        track_validity: bool = True,
    ) -> tuple[PeriodicSchedule, float]:
        """Build a schedule plus the period up to which it provably persists.

        Returns ``(schedule, valid_until)``: for every period ``T'`` with
        ``period <= T' < valid_until`` the greedy build produces the *same*
        placements (see the period-validity analysis in
        :mod:`repro.periodic.insertion`), so the sweep may reuse this
        schedule via :meth:`PeriodicSchedule.with_period` instead of
        rebuilding.  With ``track_validity=False`` the bound bookkeeping is
        skipped (placements are unchanged) and ``valid_until`` is ``period``
        itself — i.e. no reuse is claimed.
        """
        if not applications:
            raise ValidationError("need at least one application")
        if profiles is None:
            profiles = application_profiles(platform, applications)
        schedule = PeriodicSchedule(platform, applications, period)
        inserter = GreedyInserter(schedule, track_validity=track_validity)
        self._fill(schedule, inserter, list(applications), profiles)
        schedule.validate()
        if not track_validity:
            return schedule, period
        return schedule, inserter.period_needed

    @abc.abstractmethod
    def _fill(
        self,
        schedule: PeriodicSchedule,
        inserter: GreedyInserter,
        applications: list[Application],
        profiles: Mapping[str, ApplicationProfile],
    ) -> None:
        """Insert instances until no more fit."""


class InsertInScheduleThrou(PeriodicHeuristic):
    """Pack I/O-bound applications first, as many instances each as fit."""

    name = "Insert-In-Schedule-Throu"

    def _fill(
        self,
        schedule: PeriodicSchedule,
        inserter: GreedyInserter,
        applications: list[Application],
        profiles: Mapping[str, ApplicationProfile],
    ) -> None:
        ordered = sorted(
            applications, key=lambda a: (profiles[a.name].ratio, a.name)
        )
        for app in ordered:
            while inserter.try_insert(app):
                pass
        # A second pass catches applications that could not be placed at all
        # during their turn but fit in leftover gaps once everyone is placed.
        for app in ordered:
            if schedule.instances_per_application()[app.name] == 0:
                inserter.try_insert(app)


class InsertInScheduleCong(PeriodicHeuristic):
    """Balance scheduled load across applications (Dilation-oriented)."""

    name = "Insert-In-Schedule-Cong"

    def _fill(
        self,
        schedule: PeriodicSchedule,
        inserter: GreedyInserter,
        applications: list[Application],
        profiles: Mapping[str, ApplicationProfile],
    ) -> None:
        blocked: set[str] = set()
        while True:
            counts = schedule.instances_per_application()
            candidates = [a for a in applications if a.name not in blocked]
            if not candidates:
                break
            # Least scheduled load first; ties broken by name for determinism.
            candidates.sort(
                key=lambda a: (counts[a.name] * profiles[a.name].footprint, a.name)
            )
            app = candidates[0]
            if not inserter.try_insert(app):
                blocked.add(app.name)

"""Periodic scheduling heuristics of Section 3.2.3.

Both heuristics fill a period greedily with instances until nothing more
fits; they differ in *which* application gets the next slot:

* :class:`InsertInScheduleThrou` (SysEfficiency-oriented) — applications are
  sorted once by non-decreasing ``w / time_io`` (most I/O-bound first, so
  their transfers claim the early, empty parts of the period); the heuristic
  packs as many instances as possible of the first application before moving
  to the next.
* :class:`InsertInScheduleCong` (Dilation-oriented) — applications are
  re-ranked after every insertion by their *currently scheduled load*
  ``n_per * (w + time_io)`` and the least-loaded application is served next,
  which balances progress across applications.  (The paper's text says
  "sorts by non-increasing values … and always picks the largest one"; taken
  literally that degenerates into scheduling a single application forever,
  so we implement the fairness-balancing reading — pick the application with
  the smallest scheduled load — which is the only interpretation consistent
  with the heuristic's stated goal of optimizing Dilation.)

Both stop when a full round of applications yields no insertion.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.core.application import Application
from repro.core.platform import Platform
from repro.periodic.insertion import GreedyInserter
from repro.periodic.schedule import PeriodicSchedule
from repro.utils.validation import ValidationError

__all__ = [
    "PeriodicHeuristic",
    "InsertInScheduleThrou",
    "InsertInScheduleCong",
]


class PeriodicHeuristic(abc.ABC):
    """Common driver: repeatedly pick an application and insert one instance."""

    #: Display name used in reports.
    name: str = "periodic"

    def build(
        self,
        platform: Platform,
        applications: Sequence[Application],
        period: float,
    ) -> PeriodicSchedule:
        """Fill a period of length ``period`` with application instances."""
        if not applications:
            raise ValidationError("need at least one application")
        schedule = PeriodicSchedule(platform, applications, period)
        inserter = GreedyInserter(schedule)
        self._fill(schedule, inserter, list(applications))
        schedule.validate()
        return schedule

    @abc.abstractmethod
    def _fill(
        self,
        schedule: PeriodicSchedule,
        inserter: GreedyInserter,
        applications: list[Application],
    ) -> None:
        """Insert instances until no more fit."""


class InsertInScheduleThrou(PeriodicHeuristic):
    """Pack I/O-bound applications first, as many instances each as fit."""

    name = "Insert-In-Schedule-Throu"

    def _fill(
        self,
        schedule: PeriodicSchedule,
        inserter: GreedyInserter,
        applications: list[Application],
    ) -> None:
        platform = schedule.platform

        def ratio(app: Application) -> float:
            inst = app.instances[0]
            peak = platform.peak_application_bandwidth(app.processors)
            time_io = inst.io_volume / peak if peak > 0 else 0.0
            if time_io <= 0:
                return float("inf")
            return inst.work / time_io

        ordered = sorted(applications, key=lambda a: (ratio(a), a.name))
        for app in ordered:
            while inserter.try_insert(app):
                pass
        # A second pass catches applications that could not be placed at all
        # during their turn but fit in leftover gaps once everyone is placed.
        for app in ordered:
            if schedule.instances_per_application()[app.name] == 0:
                inserter.try_insert(app)


class InsertInScheduleCong(PeriodicHeuristic):
    """Balance scheduled load across applications (Dilation-oriented)."""

    name = "Insert-In-Schedule-Cong"

    def _fill(
        self,
        schedule: PeriodicSchedule,
        inserter: GreedyInserter,
        applications: list[Application],
    ) -> None:
        platform = schedule.platform

        def footprint(app: Application) -> float:
            inst = app.instances[0]
            peak = platform.peak_application_bandwidth(app.processors)
            time_io = inst.io_volume / peak if peak > 0 else 0.0
            return inst.work + time_io

        blocked: set[str] = set()
        while True:
            counts = schedule.instances_per_application()
            candidates = [a for a in applications if a.name not in blocked]
            if not candidates:
                break
            # Least scheduled load first; ties broken by name for determinism.
            candidates.sort(key=lambda a: (counts[a.name] * footprint(a), a.name))
            app = candidates[0]
            if not inserter.try_insert(app):
                blocked.add(app.name)

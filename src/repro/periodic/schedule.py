"""Periodic (steady-state) schedules — the data structure of Section 3.2.1.

A periodic schedule of period ``T`` repeats the same pattern of compute and
I/O phases every ``T`` seconds.  Within one regular period, application
``k`` executes ``n_per^{(k)}`` instances; each instance is a compute chunk of
length ``w^{(k)}`` followed by an I/O transfer of ``vol_io^{(k)}`` bytes
executed *contiguously at a constant bandwidth* (the shape the greedy
insertion heuristics of Section 3.2.3 produce — the general model allows
arbitrary piecewise-constant profiles, but the heuristics never need them).

The schedule knows how to:

* check its own feasibility (per-node cap, back-end cap, no overlap between
  the instances of one application, I/O volumes fully transferred);
* compute the steady-state efficiency ``rho_tilde^{(k)} = n_per w / T`` of
  equation (1) and both paper objectives;
* expose its bandwidth profile so the greedy inserter can find room for the
  next instance.

Instances never wrap around the period boundary in this implementation.
The paper's formalism allows wrapping; forbidding it only wastes a sliver of
the period for a greedy first-fit heuristic and keeps the feasibility checks
straightforward (a wrapped schedule can always be "rotated" into an unwrapped
one with the same efficiencies when capacity is not tight at the boundary).

Caching
-------
The greedy inserter queries ``breakpoints`` / ``io_load`` /
``instances_of`` / ``instances_per_application`` thousands of times between
mutations, so the schedule memoizes all of them and invalidates the caches
in :meth:`add_instance`.  The cached values are produced by the exact same
code (same accumulation order for the float sums), so cached and uncached
queries are bit-for-bit identical.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from operator import attrgetter
from typing import Optional, Sequence

from repro.core.application import Application
from repro.core.objectives import ApplicationOutcome, ObjectiveSummary, summarize
from repro.core.platform import Platform
from repro.utils.validation import ValidationError, check_positive

__all__ = ["ScheduledInstance", "PeriodicSchedule"]

_EPS = 1e-9


@dataclass(frozen=True)
class ScheduledInstance:
    """One instance placed inside the period.

    Attributes
    ----------
    app_name:
        Application this instance belongs to.
    compute_start:
        ``initW`` — start of the compute chunk.
    work:
        Length of the compute chunk (``w``).
    io_start:
        Start of the I/O transfer (``>= compute_start + work``; the greedy
        heuristics always use equality, but a gap is legal).
    io_duration:
        Length of the contiguous I/O transfer.
    io_bandwidth:
        Constant per-processor bandwidth ``gamma`` during the transfer.
    """

    app_name: str
    compute_start: float
    work: float
    io_start: float
    io_duration: float
    io_bandwidth: float

    def __post_init__(self) -> None:
        if self.compute_start < -_EPS:
            raise ValidationError("compute_start must be >= 0")
        if self.work < 0 or self.io_duration < 0 or self.io_bandwidth < 0:
            raise ValidationError("work, io_duration and io_bandwidth must be >= 0")
        if self.io_start < self.compute_start + self.work - _EPS:
            raise ValidationError(
                "I/O cannot start before the compute chunk ends "
                f"({self.io_start} < {self.compute_start + self.work})"
            )

    @property
    def compute_end(self) -> float:
        """``endW`` — end of the compute chunk."""
        return self.compute_start + self.work

    @property
    def io_end(self) -> float:
        """End of the I/O transfer."""
        return self.io_start + self.io_duration

    @property
    def end(self) -> float:
        """End of the whole instance footprint."""
        return max(self.compute_end, self.io_end)


class PeriodicSchedule:
    """A steady-state schedule over one regular period.

    Parameters
    ----------
    platform:
        Supplies the ``b`` and ``B`` caps.
    applications:
        The periodic applications being scheduled.  Only their first
        instance's ``(work, io_volume)`` is used (periodic applications have
        identical instances); non-periodic applications are rejected.
    period:
        Length ``T`` of the regular period.
    """

    def __init__(
        self,
        platform: Platform,
        applications: Sequence[Application],
        period: float,
    ):
        self.platform = platform
        self.period = check_positive("period", period)
        self._apps: dict[str, Application] = {}
        for app in applications:
            if not app.is_periodic:
                raise ValidationError(
                    f"application {app.name!r} is not periodic; periodic schedules "
                    "require identical instances"
                )
            if app.name in self._apps:
                raise ValidationError(f"duplicate application {app.name!r}")
            self._apps[app.name] = app
        if not self._apps:
            raise ValidationError("a periodic schedule needs at least one application")
        self._instances: list[ScheduledInstance] = []
        # Incrementally maintained indexes (insertion order preserved in
        # _instances; per-app lists sorted by compute start; flat transfer
        # arrays aligned with _instances for the load scans) plus the lazy
        # caches invalidated by add_instance.
        self._by_app: dict[str, list[ScheduledInstance]] = {
            name: [] for name in self._apps
        }
        self._counts: dict[str, int] = {name: 0 for name in self._apps}
        self._io_starts: list[float] = []
        self._io_ends: list[float] = []
        self._io_rates: list[float] = []
        self._breakpoints_cache: Optional[list[float]] = None
        self._io_load_cache: dict[float, float] = {}
        self._segments_cache: Optional[list[tuple[float, float, float]]] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def applications(self) -> tuple[Application, ...]:
        """The applications known to this schedule (scheduled or not)."""
        return tuple(self._apps.values())

    @property
    def instances(self) -> tuple[ScheduledInstance, ...]:
        """All placed instances, in insertion order."""
        return tuple(self._instances)

    def application(self, name: str) -> Application:
        """Look up an application by name."""
        return self._apps[name]

    def instances_of(self, app_name: str) -> list[ScheduledInstance]:
        """Instances of one application, sorted by compute start."""
        if app_name not in self._apps:
            raise KeyError(f"unknown application {app_name!r}")
        return list(self._by_app[app_name])

    def instances_per_application(self) -> dict[str, int]:
        """``n_per^{(k)}`` for every application (0 if never scheduled)."""
        return dict(self._counts)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_instance(self, instance: ScheduledInstance) -> None:
        """Place an instance, enforcing every feasibility constraint."""
        app = self._apps.get(instance.app_name)
        if app is None:
            raise ValidationError(f"unknown application {instance.app_name!r}")
        if instance.end > self.period + _EPS:
            raise ValidationError(
                f"instance of {instance.app_name!r} ends at {instance.end:.6g}, "
                f"beyond the period {self.period:.6g}"
            )
        if instance.io_bandwidth > self.platform.node_bandwidth * (1 + 1e-9):
            raise ValidationError(
                f"per-processor bandwidth {instance.io_bandwidth:.6g} exceeds "
                f"b = {self.platform.node_bandwidth:.6g}"
            )
        expected_work = app.instances[0].work
        if abs(instance.work - expected_work) > _EPS * max(1.0, expected_work):
            raise ValidationError(
                f"instance work {instance.work} does not match the application's "
                f"work {expected_work}"
            )
        # The transferred volume must match the application's volume.
        volume = instance.io_bandwidth * instance.io_duration * app.processors
        expected_volume = app.instances[0].io_volume
        if abs(volume - expected_volume) > 1e-6 * max(1.0, expected_volume):
            raise ValidationError(
                f"instance transfers {volume:.6g} B but {instance.app_name!r} "
                f"needs {expected_volume:.6g} B"
            )
        # No overlap with the application's other instances.
        for other in self.instances_of(instance.app_name):
            if instance.compute_start < other.end - _EPS and other.compute_start < instance.end - _EPS:
                raise ValidationError(
                    f"instance of {instance.app_name!r} at [{instance.compute_start:.6g}, "
                    f"{instance.end:.6g}) overlaps another at "
                    f"[{other.compute_start:.6g}, {other.end:.6g})"
                )
        # Back-end capacity over the I/O window.
        if instance.io_duration > _EPS:
            rate = instance.io_bandwidth * app.processors
            for start, end, used in self._profile_segments(exclude=None):
                overlap = min(end, instance.io_end) - max(start, instance.io_start)
                if overlap > _EPS and used + rate > self.platform.system_bandwidth * (1 + 1e-9):
                    raise ValidationError(
                        f"adding {instance.app_name!r} would exceed B over "
                        f"[{max(start, instance.io_start):.6g}, {min(end, instance.io_end):.6g})"
                    )
        self._append(instance)

    def _append(self, instance: ScheduledInstance) -> None:
        """Record an (already validated) instance and refresh the indexes."""
        self._instances.append(instance)
        # insort-right on compute_start matches the former stable
        # sorted(..., key=compute_start): equal keys keep insertion order.
        insort(self._by_app[instance.app_name], instance,
               key=attrgetter("compute_start"))
        self._counts[instance.app_name] += 1
        self._io_starts.append(instance.io_start)
        self._io_ends.append(instance.io_start + instance.io_duration)
        self._io_rates.append(
            instance.io_bandwidth * self._apps[instance.app_name].processors
        )
        self._breakpoints_cache = None
        self._segments_cache = None
        if self._io_load_cache:
            self._io_load_cache = {}

    def with_period(self, period: float) -> "PeriodicSchedule":
        """Copy of this schedule with the same placements under a new period.

        The placements are shared, not re-derived — the caller asserts they
        remain feasible (any ``period`` no smaller than the latest instance
        end works, since a longer period only adds empty room at the end).
        The warm-started period sweep uses this to materialize a sweep point
        whose greedy build provably matches an earlier one.
        """
        clone = PeriodicSchedule(self.platform, self.applications, period)
        for inst in self._instances:
            if inst.end > period + _EPS:
                raise ValidationError(
                    f"instance of {inst.app_name!r} ends at {inst.end:.6g}, "
                    f"beyond the new period {period:.6g}"
                )
        clone._instances = list(self._instances)
        clone._by_app = {name: list(insts) for name, insts in self._by_app.items()}
        clone._counts = dict(self._counts)
        clone._io_starts = list(self._io_starts)
        clone._io_ends = list(self._io_ends)
        clone._io_rates = list(self._io_rates)
        return clone

    # ------------------------------------------------------------------ #
    # Bandwidth profile
    # ------------------------------------------------------------------ #
    def breakpoints(self) -> list[float]:
        """Sorted distinct time points where the I/O load may change."""
        return list(self._breakpoints())

    def _breakpoints(self) -> list[float]:
        """Cached breakpoint list — internal callers must not mutate it."""
        cached = self._breakpoints_cache
        if cached is None:
            points = {0.0, self.period}
            for inst in self._instances:
                points.add(inst.io_start)
                points.add(inst.io_end)
                points.add(inst.compute_start)
                points.add(inst.compute_end)
            cached = sorted(p for p in points if -_EPS <= p <= self.period + _EPS)
            self._breakpoints_cache = cached
        return cached

    def io_load(self, time: float) -> float:
        """Aggregate back-end bandwidth in use at ``time`` (bytes/s)."""
        cached = self._io_load_cache.get(time)
        if cached is not None:
            return cached
        # Flat-array scan in insertion order: same comparisons and the same
        # float-addition order as summing over the instances directly.
        load = 0.0
        for start, end, rate in zip(self._io_starts, self._io_ends, self._io_rates):
            if start - _EPS <= time < end - _EPS:
                load += rate
        self._io_load_cache[time] = load
        return load

    def available_bandwidth(self, time: float) -> float:
        """Back-end bandwidth still free at ``time``."""
        return max(0.0, self.platform.system_bandwidth - self.io_load(time))

    def min_available_bandwidth(self, start: float, end: float) -> float:
        """Minimum free back-end bandwidth over ``[start, end)``."""
        if end <= start:
            return self.platform.system_bandwidth
        # Breakpoints are sorted, so the interior points ``start < p < end``
        # are one bisected slice of the cached list.
        points = self._breakpoints()
        lo = bisect_right(points, start)
        hi = bisect_left(points, end, lo)
        minimum = self.available_bandwidth(start)
        for i in range(lo, hi):
            value = self.available_bandwidth(points[i])
            if value < minimum:
                minimum = value
        return minimum

    def _profile_segments(self, exclude: Optional[ScheduledInstance]):
        """Yield ``(start, end, load)`` segments of the current I/O profile."""
        if exclude is None:
            # Every caller in the repository passes exclude=None, so the full
            # profile is cached between mutations and computed by a sweep
            # over the transfer arrays instead of an all-instances scan per
            # segment.  Segment mids are sorted, so the instances covering a
            # segment are exactly those whose [io_start - eps, io_end - eps)
            # window contains its mid — located with two bisects; summing
            # instance contributions in insertion order per segment keeps
            # the float accumulation identical to the direct scan.
            cached = self._segments_cache
            if cached is None:
                points = self._breakpoints()
                bounds = [
                    (s, e)
                    for s, e in zip(points[:-1], points[1:])
                    if e - s > _EPS
                ]
                mids = [0.5 * (s + e) for s, e in bounds]
                loads = [0.0] * len(mids)
                starts = self._io_starts
                ends = self._io_ends
                rates = self._io_rates
                for i in range(len(starts)):
                    lo = bisect_left(mids, starts[i] - _EPS)
                    hi = bisect_left(mids, ends[i] - _EPS)
                    rate = rates[i]
                    for j in range(lo, hi):
                        loads[j] += rate
                cached = [
                    (s, e, load) for (s, e), load in zip(bounds, loads)
                ]
                self._segments_cache = cached
            return iter(cached)
        return self._compute_segments(exclude)

    def _compute_segments(self, exclude: Optional[ScheduledInstance]):
        points = self.breakpoints()
        for start, end in zip(points[:-1], points[1:]):
            if end - start <= _EPS:
                continue
            mid = 0.5 * (start + end)
            load = 0.0
            for inst in self._instances:
                if inst is exclude:
                    continue
                if inst.io_start - _EPS <= mid < inst.io_end - _EPS:
                    load += inst.io_bandwidth * self._apps[inst.app_name].processors
            yield start, end, load

    # ------------------------------------------------------------------ #
    # Validation and scoring
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Re-check every constraint of the whole schedule (defence in depth)."""
        b = self.platform.node_bandwidth
        for inst in self._instances:
            if inst.io_bandwidth > b * (1 + 1e-9):
                raise ValidationError(
                    f"{inst.app_name!r}: per-processor bandwidth exceeds b"
                )
            if inst.end > self.period + _EPS:
                raise ValidationError(f"{inst.app_name!r}: instance exceeds the period")
        for name in self._apps:
            insts = self.instances_of(name)
            for first, second in zip(insts[:-1], insts[1:]):
                if second.compute_start < first.end - _EPS:
                    raise ValidationError(f"{name!r}: overlapping instances")
        for start, end, load in self._profile_segments(exclude=None):
            if load > self.platform.system_bandwidth * (1 + 1e-9):
                raise ValidationError(
                    f"back-end capacity exceeded over [{start:.6g}, {end:.6g}): "
                    f"{load:.6g} > {self.platform.system_bandwidth:.6g}"
                )

    def steady_state_efficiency(self, app_name: str) -> float:
        """Equation (1): ``rho_tilde^{(k)} = n_per^{(k)} w^{(k)} / T``."""
        app = self._apps[app_name]
        n_per = self.instances_per_application()[app_name]
        return n_per * app.instances[0].work / self.period

    def outcomes(self) -> list[ApplicationOutcome]:
        """Objective-level outcomes of one steady-state period.

        The period plays the role of the elapsed time; the executed work of
        application ``k`` is ``n_per^{(k)} * w^{(k)}``, and the dedicated I/O
        time covers the same number of instances — exactly the quantities of
        equation (1) and of the optimal efficiency ``rho``.
        """
        outs: list[ApplicationOutcome] = []
        counts = self.instances_per_application()
        for name, app in self._apps.items():
            n_per = counts[name]
            work = n_per * app.instances[0].work
            peak = self.platform.peak_application_bandwidth(app.processors)
            io_time = n_per * app.instances[0].io_volume / peak if peak > 0 else 0.0
            outs.append(
                ApplicationOutcome(
                    name=name,
                    processors=app.processors,
                    release_time=0.0,
                    completion_time=self.period,
                    executed_work=work,
                    dedicated_io_time=io_time,
                )
            )
        return outs

    def summary(self, total_processors: int | None = None) -> ObjectiveSummary:
        """SysEfficiency / Dilation of the steady state (per period)."""
        return summarize(self.outcomes(), total_processors)

    def is_complete(self) -> bool:
        """True when every application has at least one instance in the period."""
        return all(n > 0 for n in self.instances_per_application().values())

    def __contains__(self, app_name: str) -> bool:
        """True when ``app_name`` is one of this schedule's applications."""
        return app_name in self._apps

    def __len__(self) -> int:
        return len(self._instances)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = self.instances_per_application()
        return (
            f"PeriodicSchedule(T={self.period:g}, "
            f"instances={sum(counts.values())}, apps={len(counts)})"
        )

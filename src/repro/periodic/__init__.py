"""Periodic (steady-state) schedules and heuristics (Section 3.2).

Computing an optimal periodic schedule is NP-complete (Theorem 1, reduction
from 3-Partition), so the package provides the paper's two greedy
heuristics plus the period sweep that wraps them:

* :class:`~repro.periodic.schedule.PeriodicSchedule` — the schedule object,
  with feasibility validation and steady-state scoring (equation (1));
* :class:`~repro.periodic.insertion.GreedyInserter` — first-fit placement of
  one instance at constant bandwidth;
* :class:`~repro.periodic.heuristics.InsertInScheduleThrou` /
  :class:`~repro.periodic.heuristics.InsertInScheduleCong` — the
  SysEfficiency- and Dilation-oriented fillers;
* :func:`~repro.periodic.period_search.search_period` — the ``(1 + eps)``
  sweep over period lengths.
"""

from repro.periodic.heuristics import (
    InsertInScheduleCong,
    InsertInScheduleThrou,
    PeriodicHeuristic,
)
from repro.periodic.insertion import GreedyInserter
from repro.periodic.period_search import (
    PeriodSearchResult,
    minimum_period,
    search_period,
)
from repro.periodic.schedule import PeriodicSchedule, ScheduledInstance

__all__ = [
    "PeriodicSchedule",
    "ScheduledInstance",
    "GreedyInserter",
    "PeriodicHeuristic",
    "InsertInScheduleThrou",
    "InsertInScheduleCong",
    "PeriodSearchResult",
    "minimum_period",
    "search_period",
]

"""Greedy placement of one instance into a periodic schedule.

The heuristics of Section 3.2.3 both rely on the same primitive: "try to
find the first instant in the period where ``vol_io`` can be executed
contiguously with a constant bandwidth while matching the various
constraints".  :class:`GreedyInserter` implements that first-fit search:

1. candidate start times are the existing schedule breakpoints (plus 0) —
   between two breakpoints the bandwidth profile is constant, so if a
   placement is feasible anywhere inside a gap it is feasible at the gap's
   left edge;
2. for a candidate compute start ``t``, the compute chunk occupies
   ``[t, t + w)`` and must not overlap the application's other instances;
3. the I/O transfer starts at ``t + w`` with the largest constant bandwidth
   the profile allows: starting from ``gamma = min(b, avail / beta)`` the
   inserter repeatedly shrinks ``gamma`` to the minimum availability over
   the transfer window (whose length grows as ``vol / (beta * gamma)``)
   until it reaches a fixed point — a handful of iterations in practice;
4. the placement is accepted if the whole footprint fits inside the period
   and does not collide with the application's other instances.

Period-validity tracking
------------------------
The ``(1 + eps)`` period sweep re-runs the greedy build at every period
length, yet most consecutive periods produce the *same* placements: the
only way a longer period ``T'`` can change a first-fit build is by turning
one of the build's *failed* decisions into a success (a longer period only
adds room at the right edge, so every placement that succeeded at ``T``
succeeds identically at ``T'``).  The inserter therefore records, for every
failure it encounters, a conservative lower bound on the period at which
that exact decision could flip:

* a candidate rejected because its compute chunk / transfer / footprint ran
  past the period end flips no earlier than the instant it actually ended;
* a whole find that failed could also gain *new* candidate start times at a
  longer period (breakpoints at or beyond ``T`` become eligible); those sit
  at ``>= T``, so they cannot help before ``T + w + vol/peak``;
* rejections that do not involve the period at all (overlap with the
  application's own instances, bandwidth starvation) never flip.

:attr:`period_needed` is the minimum of all recorded bounds: every period
``T' < period_needed`` provably replays the identical build, which is what
lets :func:`repro.periodic.period_search.search_period` warm-start the
sweep instead of rebuilding from scratch.  Windows that merely *touch* the
period end (within ``_EPS``) also record a bound, so the equivalence proof
never has to reason about sub-epsilon boundary classifications.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.application import Application
from repro.periodic.schedule import PeriodicSchedule, ScheduledInstance
from repro.utils.validation import ValidationError

__all__ = ["GreedyInserter"]

_EPS = 1e-9
#: Give up on a candidate when the achievable bandwidth is below this
#: fraction of the node bandwidth (the transfer would be absurdly long).
_MIN_BANDWIDTH_FRACTION = 1e-6


class GreedyInserter:
    """First-fit insertion of instances into a :class:`PeriodicSchedule`.

    Attributes
    ----------
    period_needed:
        Conservative lower bound on the smallest period at which any
        decision taken so far would change (``inf`` until a period-limited
        failure is seen).  See the module docstring.
    """

    def __init__(self, schedule: PeriodicSchedule, *, track_validity: bool = True):
        self.schedule = schedule
        self.period_needed: float = math.inf
        #: Bound tracking is pure bookkeeping — it never changes placements —
        #: so sweeps too small to ever reuse a build switch it off (see
        #: :func:`repro.periodic.period_search.search_period`).
        self._track_validity = track_validity

    def _note(self, bound: float) -> None:
        """Record that a decision could flip once the period reaches ``bound``."""
        if self._track_validity and bound < self.period_needed:
            self.period_needed = bound

    # ------------------------------------------------------------------ #
    def try_insert(self, app: Application) -> bool:
        """Place one more instance of ``app`` if possible.

        Returns ``True`` (and mutates the schedule) on success, ``False``
        when no feasible placement exists within the period.
        """
        placement = self.find_placement(app)
        if placement is None:
            return False
        self.schedule.add_instance(placement)
        return True

    def find_placement(self, app: Application) -> Optional[ScheduledInstance]:
        """Earliest feasible placement of the next instance of ``app``."""
        if app.name not in self.schedule:
            raise ValidationError(
                f"application {app.name!r} is not part of this periodic schedule"
            )
        work = app.instances[0].work
        volume = app.instances[0].io_volume
        # The app's own occupancy spans are fixed for the whole scan.
        own = [
            (inst.compute_start, inst.end)
            for inst in self.schedule.instances_of(app.name)
        ]
        candidates = self._candidate_starts(app)
        for start in candidates:
            placement = self._evaluate_candidate(app, own, start, work, volume)
            if placement is not None:
                return placement
        # Overall failure: a longer period exposes new candidate starts (the
        # breakpoints at or beyond the current period end, which sit at
        # >= period - _EPS).  None of them can host this instance before
        # period + work + minimal-transfer-time.
        period = self.schedule.period
        peak = self.schedule.platform.peak_application_bandwidth(app.processors)
        min_io = volume / peak if (volume > _EPS and peak > 0) else 0.0
        self._note(period + work + min_io - 2.0 * _EPS)
        return None

    # ------------------------------------------------------------------ #
    def _candidate_starts(self, app: Application) -> list[float]:
        """Sorted candidate compute-start times (0 plus every breakpoint)."""
        points = set(self.schedule._breakpoints())
        points.add(0.0)
        # The end of the application's own instances are natural candidates
        # (chaining instances back to back), already included via breakpoints.
        return sorted(p for p in points if p < self.schedule.period - _EPS)

    def _evaluate_candidate(
        self,
        app: Application,
        own: list[tuple[float, float]],
        start: float,
        work: float,
        volume: float,
    ) -> Optional[ScheduledInstance]:
        period = self.schedule.period

        # Compute chunk must fit and not overlap the app's other instances.
        compute_end = start + work
        if compute_end > period:
            self._note(compute_end - _EPS)
            if compute_end > period + _EPS:
                return None

        if volume <= _EPS:
            footprint_end = compute_end
            if self._overlaps_own(own, start, footprint_end):
                return None
            return ScheduledInstance(
                app_name=app.name,
                compute_start=start,
                work=work,
                io_start=compute_end,
                io_duration=0.0,
                io_bandwidth=0.0,
            )

        gamma = self._fit_constant_bandwidth(app, compute_end, volume)
        if gamma is None:
            return None
        duration = volume / (gamma * app.processors)
        footprint_end = compute_end + duration
        if footprint_end > period:
            self._note(footprint_end - _EPS)
            if footprint_end > period + _EPS:
                return None
        if self._overlaps_own(own, start, footprint_end):
            return None
        return ScheduledInstance(
            app_name=app.name,
            compute_start=start,
            work=work,
            io_start=compute_end,
            io_duration=duration,
            io_bandwidth=gamma,
        )

    def _fit_constant_bandwidth(
        self, app: Application, io_start: float, volume: float
    ) -> Optional[float]:
        """Largest constant per-processor bandwidth feasible from ``io_start``.

        Fixed-point iteration: the transfer window grows as the bandwidth
        shrinks, and the feasible bandwidth is the minimum availability over
        the window; iterate until stable.
        """
        schedule = self.schedule
        platform = schedule.platform
        beta = app.processors
        period = schedule.period
        gamma = min(
            platform.node_bandwidth,
            schedule.available_bandwidth(io_start) / beta,
        )
        min_gamma = platform.node_bandwidth * _MIN_BANDWIDTH_FRACTION
        for _ in range(64):
            if gamma <= min_gamma:
                return None
            duration = volume / (gamma * beta)
            io_end = io_start + duration
            if io_end > period:
                # Touching the period end makes this window's availability
                # scan period-sensitive, so record the bound whether or not
                # the iteration survives the hard cut-off below.
                self._note(io_end - _EPS)
                if io_end > period + _EPS:
                    return None
            feasible = min(
                platform.node_bandwidth,
                schedule.min_available_bandwidth(io_start, io_end) / beta,
            )
            if feasible >= gamma - _EPS:
                return gamma
            gamma = feasible
        return gamma if gamma > min_gamma else None

    @staticmethod
    def _overlaps_own(
        own: list[tuple[float, float]], start: float, end: float
    ) -> bool:
        """True when ``[start, end)`` intersects any of the app's spans."""
        for own_start, own_end in own:
            if start < own_end - _EPS and own_start < end - _EPS:
                return True
        return False

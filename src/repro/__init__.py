"""repro — reproduction of "Scheduling the I/O of HPC applications under congestion".

Gainaru, Aupy, Benoit, Cappello, Robert, Snir — IPDPS 2015.

The package provides:

* :mod:`repro.core` — the application / platform / objectives model;
* :mod:`repro.simulator` — the discrete-event I/O-congestion simulator;
* :mod:`repro.online` — the online scheduling heuristics and system baselines;
* :mod:`repro.periodic` — periodic (steady-state) schedules and heuristics;
* :mod:`repro.workload` — synthetic Intrepid/Mira/Vesta workload generators;
* :mod:`repro.experiments` — the experiment runner behind every table/figure;
* :mod:`repro.analysis` — figure-level analyses (throughput decrease, usage,
  sensitivity);
* :mod:`repro.config` — declarative scenario/experiment specs (TOML/JSON),
  the layer behind the ``repro`` command line;
* :mod:`repro.cli` — the ``repro`` console script (``repro run <spec>``,
  ``repro validate``, ``repro quickstart``, ``repro bench``, ``repro list``).

Quickstart::

    from repro import core, online, simulator

    platform = core.generic(total_processors=1024, node_bandwidth=1e8,
                            system_bandwidth=2e10)
    apps = [core.Application.periodic(f"app{i}", 256, work=100.0,
                                      io_volume=2e11, n_instances=5)
            for i in range(4)]
    scenario = core.Scenario(platform=platform, applications=tuple(apps))
    result = simulator.simulate(scenario, online.MaxSysEff())
    print(result.summary())
"""

from repro import analysis, config, core, experiments, online, periodic, simulator, workload

__version__ = "1.0.0"

__all__ = [
    "core",
    "simulator",
    "online",
    "periodic",
    "workload",
    "experiments",
    "analysis",
    "config",
    "__version__",
]

"""Online I/O schedulers (Section 3.1) and the baseline system schedulers.

The heuristics rank applications at every event and favour them greedily:

=================  =============================================================
Scheduler          Priority order under congestion
=================  =============================================================
``RoundRobin``     Longest time since last completed I/O (FCFS + fairness)
``MinDilation``    Lowest progress ratio ``rho_tilde / rho`` (most slowed down)
``MaxSysEff``      Lowest ``beta * rho_tilde`` (most wasted compute capacity)
``MinMax-γ``       MaxSysEff with a rescue rule for ratios below ``γ``
``Priority-*``     Same, but never interrupt an in-flight transfer
``FairShare``      (baseline) proportional sharing = uncoordinated congestion
``FCFS``           (baseline) strict first-come first-served
=================  =============================================================
"""

from repro.online.base import OnlineScheduler
from repro.online.baselines import (
    FCFS,
    FairShare,
    intrepid_scheduler,
    ior_scheduler,
    mira_scheduler,
    vesta_scheduler,
)
from repro.online.heuristics import MaxSysEff, MinDilation, MinMaxGamma, RoundRobin
from repro.online.priority import Priority
from repro.online.registry import (
    available_schedulers,
    figure6_suite,
    make_scheduler,
    paper_heuristics,
    tables_suite,
)

__all__ = [
    "OnlineScheduler",
    "RoundRobin",
    "MinDilation",
    "MaxSysEff",
    "MinMaxGamma",
    "Priority",
    "FairShare",
    "FCFS",
    "intrepid_scheduler",
    "mira_scheduler",
    "vesta_scheduler",
    "ior_scheduler",
    "make_scheduler",
    "available_schedulers",
    "paper_heuristics",
    "figure6_suite",
    "tables_suite",
]

"""The ``Priority`` variant of the online heuristics (Section 3.1).

On disk-based systems, interrupting an application's I/O to serve another
breaks spatial locality on the storage servers and hurts everybody.  The
paper therefore evaluates, for every heuristic, a *Priority* variant that
"always chooses applications that already started performing their I/O
before favouring any other application".  On SSD-based systems the original
heuristics can be used as-is — this wrapper is exactly the extra constraint
the paper pays on Intrepid/Mira/Vesta, which use spinning disks.

The wrapper composes with any :class:`~repro.online.base.OnlineScheduler`:
it takes the inner ordering and stably partitions it so that applications
with a transfer already in flight come first.
"""

from __future__ import annotations

from typing import Sequence

from repro.online.base import OnlineScheduler
from repro.simulator.interface import ApplicationView, SystemView

__all__ = ["Priority"]


class Priority(OnlineScheduler):
    """Never preempt an application whose I/O transfer has already started.

    Parameters
    ----------
    inner:
        The heuristic providing the underlying priority order.
    """

    def __init__(self, inner: OnlineScheduler):
        if not isinstance(inner, OnlineScheduler):
            raise TypeError(
                f"inner must be an OnlineScheduler, got {type(inner).__name__}"
            )
        if isinstance(inner, Priority):
            raise TypeError("Priority wrappers do not nest")
        self.inner = inner
        self.name = f"Priority-{inner.name}"

    def order_candidates(self, view: SystemView) -> Sequence[ApplicationView]:
        # Single stable partition pass over the inner ordering.
        started: list[ApplicationView] = []
        fresh: list[ApplicationView] = []
        for a in self.inner.order_candidates(view):
            (started if a.io_started else fresh).append(a)
        started.extend(fresh)
        return started

    def reset(self) -> None:
        self.inner.reset()

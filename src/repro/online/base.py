"""Base class for the online schedulers of Section 3.1.

Every online heuristic in the paper reduces to the same mechanism: at each
event, rank the applications that want to perform I/O, then *favour* them in
that order — the first application receives ``min(beta*b, available)``, the
next receives the same out of what is left, and so on until the back-end
bandwidth is exhausted (the remaining applications are stalled until the
next event).

Concrete heuristics therefore only implement :meth:`order_candidates`; the
shared :meth:`allocate` turns the ordering into a feasible
:class:`~repro.core.allocation.BandwidthAllocation` through
:func:`repro.simulator.bandwidth.favor_in_order`.  The ``Priority`` variants
(:mod:`repro.online.priority`) re-order the output of an inner heuristic, so
they compose with any of them.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.core.allocation import BandwidthAllocation
from repro.simulator.bandwidth import favor_in_order
from repro.simulator.interface import ApplicationView, SystemView

__all__ = ["OnlineScheduler"]


class OnlineScheduler(abc.ABC):
    """Event-driven scheduler: rank I/O candidates, favour them greedily."""

    #: Human-readable name used in result tables; subclasses override.
    name: str = "online"

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def order_candidates(self, view: SystemView) -> Sequence[ApplicationView]:
        """Return the I/O candidates of ``view`` ordered by decreasing priority.

        Implementations must return a permutation of ``view.io_candidates()``
        (dropping candidates is allowed and means "deliberately stall them").
        """

    # ------------------------------------------------------------------ #
    def allocate(self, view: SystemView) -> BandwidthAllocation:
        """Favour candidates in priority order until the bandwidth runs out."""
        ordered = self.order_candidates(view)
        if not isinstance(ordered, (list, tuple)):
            # Re-iterable sequence required (checked below, then favoured);
            # sorted() already hands back a fresh list, so the common path
            # skips the copy.
            ordered = list(ordered)
        self._check_ordering(view, ordered)
        return favor_in_order(
            ordered,
            node_bandwidth=view.platform.node_bandwidth,
            total_bandwidth=view.available_bandwidth,
        )

    def reset(self) -> None:
        """Clear internal state between runs (most heuristics are stateless)."""

    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_ordering(view: SystemView, ordered: Sequence[ApplicationView]) -> None:
        # The candidate-name set is memoized on the view, so this runs one
        # O(n) membership sweep per event instead of rebuilding the set.
        candidate_names = view.candidate_names()
        seen: set[str] = set()
        for app_view in ordered:
            if app_view.name not in candidate_names:
                raise ValueError(
                    f"ordering contains {app_view.name!r}, which is not an I/O candidate"
                )
            if app_view.name in seen:
                raise ValueError(f"ordering contains {app_view.name!r} twice")
            seen.add(app_view.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"

"""Baseline system schedulers the paper compares against.

The paper's comparison points are "what happens when congestion occurs" on
the production machines:

* :class:`FairShare` — the parallel file system serves every concurrent
  writer at once; the back-end bandwidth is split proportionally
  (max-min / water-filling on the per-processor rate) and, because the
  concurrent streams interfere on the storage servers, the *aggregate*
  bandwidth itself degrades following an
  :class:`~repro.simulator.interference.InterferenceModel`.  This models
  the native Intrepid / Mira / Vesta behaviour without any application-aware
  coordination, and is also the behaviour applications fall back to when
  the burst buffer is full.
* :class:`FCFS` — strict first-come first-served service of whole I/O
  phases: the earliest requester gets as much bandwidth as it can use,
  then the next, and so on.  This is the "simple first-come first-served
  strategy for each storage server" the introduction mentions as the
  low-level default.  Being essentially serialized, it does not take the
  interference penalty.
* :func:`intrepid_scheduler`, :func:`mira_scheduler`, :func:`vesta_scheduler`,
  :func:`ior_scheduler` — convenience constructors that name the fair-share
  baseline after the machine whose observed behaviour it stands in for;
  combined with ``SimulatorConfig(use_burst_buffer=True)`` they reproduce
  the "Intrepid / Mira with burst buffers" rows of Tables 1–2.

These classes are :class:`~repro.online.base.OnlineScheduler` subclasses, so
they run through exactly the same engine and scoring code as the paper's
heuristics.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.allocation import BandwidthAllocation
from repro.online.base import OnlineScheduler
from repro.simulator.bandwidth import fair_share
from repro.simulator.interface import ApplicationView, SystemView
from repro.simulator.interference import (
    DEFAULT_INTERFERENCE,
    InterferenceModel,
)

__all__ = [
    "FairShare",
    "FCFS",
    "intrepid_scheduler",
    "mira_scheduler",
    "vesta_scheduler",
    "ior_scheduler",
]


class FairShare(OnlineScheduler):
    """Uncoordinated congestion: concurrent writers share a degraded back-end.

    Parameters
    ----------
    name:
        Display name (``"FairShare"`` by default; the machine-named
        constructors below use ``"Intrepid"`` etc.).
    interference:
        Aggregate-bandwidth degradation model.  Defaults to the calibrated
        :data:`~repro.simulator.interference.DEFAULT_INTERFERENCE`; pass
        :data:`~repro.simulator.interference.NO_INTERFERENCE` to get ideal
        work-conserving sharing (useful as an ablation).
    """

    name = "FairShare"

    def __init__(
        self,
        name: str | None = None,
        interference: InterferenceModel | None = None,
    ):
        if name is not None:
            self.name = name
        self.interference = interference if interference is not None else DEFAULT_INTERFERENCE

    def order_candidates(self, view: SystemView) -> Sequence[ApplicationView]:
        # Ordering is irrelevant for fair sharing; keep the candidates as-is.
        return view.io_candidates()

    def allocate(self, view: SystemView) -> BandwidthAllocation:
        candidates = view.io_candidates()
        effective = self.interference.effective_bandwidth(
            view.available_bandwidth, len(candidates)
        )
        return fair_share(
            candidates,
            node_bandwidth=view.platform.node_bandwidth,
            total_bandwidth=effective,
        )


class FCFS(OnlineScheduler):
    """Strict first-come first-served service of entire I/O phases."""

    name = "FCFS"

    def order_candidates(self, view: SystemView) -> Sequence[ApplicationView]:
        def key(a: ApplicationView) -> tuple[float, str]:
            req = a.io_request_time if a.io_request_time is not None else math.inf
            return (req, a.name)

        return sorted(view.io_candidates(), key=key)


def intrepid_scheduler(interference: InterferenceModel | None = None) -> FairShare:
    """The native Intrepid I/O behaviour (interfering fair share)."""
    return FairShare(name="Intrepid", interference=interference)


def mira_scheduler(interference: InterferenceModel | None = None) -> FairShare:
    """The native Mira I/O behaviour (interfering fair share)."""
    return FairShare(name="Mira", interference=interference)


def vesta_scheduler(interference: InterferenceModel | None = None) -> FairShare:
    """The native Vesta I/O behaviour (interfering fair share)."""
    return FairShare(name="Vesta", interference=interference)


def ior_scheduler(interference: InterferenceModel | None = None) -> FairShare:
    """Unmodified IOR groups writing concurrently (Section 5 'IOR' series)."""
    return FairShare(name="IOR", interference=interference)

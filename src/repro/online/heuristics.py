"""The online heuristics of Section 3.1.

Each heuristic is a different answer to "who should transfer first when the
back-end is over-subscribed":

* :class:`RoundRobin` — the comparison point modelled on what HPC system
  I/O schedulers do: first-come first-served, with a fairness twist — under
  congestion, favour the application that completed its previous instance's
  I/O the longest time ago.
* :class:`MinDilation` — favour applications with the lowest progress ratio
  ``rho_tilde / rho``: help whoever has been hurt the most, which directly
  optimizes the Dilation (fairness) objective.
* :class:`MaxSysEff` — favour applications with the lowest ``beta *
  rho_tilde``: help whoever currently wastes the most processor-seconds per
  unit of time, which directly optimizes SysEfficiency.
* :class:`MinMaxGamma` — MaxSysEff, unless some application's progress ratio
  has dropped below a threshold ``gamma`` (set by the administrator), in
  which case the most-starved application goes first.  ``gamma = 0`` is
  exactly MaxSysEff; ``gamma = 1`` is exactly MinDilation.

All orderings resolve ties deterministically (request time, then name) so
simulations are reproducible.
"""

from __future__ import annotations

from typing import Sequence

from repro.online.base import OnlineScheduler
from repro.simulator.interface import ApplicationView, SystemView
from repro.utils.validation import check_in_range

__all__ = ["RoundRobin", "MinDilation", "MaxSysEff", "MinMaxGamma"]


# Every sort key below ends with the same deterministic tie-break pair:
# earlier I/O request first (inf when no request is pending), then name.
# The pair is cached on the view (`ApplicationView.order_key`), and the
# engine reuses views across events, so the tie-break is usually a dict
# lookup rather than a rebuilt tuple.


class RoundRobin(OnlineScheduler):
    """FCFS with fairness: serve the application idle from I/O the longest.

    When there is no congestion every applicant is served anyway (the greedy
    favouring loop hands out bandwidth until either the applicants or the
    back-end are exhausted), so the ordering only matters under contention —
    where the paper's rule is "the application that finished the I/O
    transfer of its last instance the longest time ago is favoured".
    """

    name = "RoundRobin"

    def order_candidates(self, view: SystemView) -> Sequence[ApplicationView]:
        return sorted(
            view.io_candidates(),
            key=lambda a: (a.last_io_end, *a.order_key),
        )


class MinDilation(OnlineScheduler):
    """Favour the most slowed-down applications (lowest ``rho_tilde / rho``)."""

    name = "MinDilation"

    def order_candidates(self, view: SystemView) -> Sequence[ApplicationView]:
        return sorted(
            view.io_candidates(),
            key=lambda a: (a.efficiency_ratio, *a.order_key),
        )


class MaxSysEff(OnlineScheduler):
    """Favour the applications contributing the most to system efficiency.

    Applications are ranked by decreasing ``beta * rho_tilde``: large,
    well-progressing (compute-intensive) applications are served first, so
    the bulk of the machine's processors get back to computing as soon as
    possible; small and I/O-bound applications absorb the waiting.  This is
    the behaviour the paper reports for MaxSysEff — Figure 16 shows the
    large applications' dilation dropping by ~48% while the small
    applications are slowed further, "which is responsible for the good
    system performance values" — and it is the CPU-oriented counterpart of
    MinDilation.

    Note on the paper's wording: Section 3.1 writes that MaxSysEff "favors
    applications with low values of ``beta * rho_tilde``"; taken literally
    that systematically prioritizes the *smallest* applications (beta
    dominates the product), which contradicts both the stated rationale
    ("priority to compute-intensive applications") and the measured
    behaviour of Figure 16.  We therefore implement the reading consistent
    with the evaluation: the applications with the largest current
    contribution to SysEfficiency are served first.
    """

    name = "MaxSysEff"

    def order_candidates(self, view: SystemView) -> Sequence[ApplicationView]:
        return sorted(
            view.io_candidates(),
            key=lambda a: (-a.processors * a.achieved_efficiency, *a.order_key),
        )


class MinMaxGamma(OnlineScheduler):
    """Trade-off heuristic: MaxSysEff with a Dilation guard-rail at ``gamma``.

    Applications whose progress ratio ``rho_tilde / rho`` has fallen below
    the threshold are rescued first (most-starved first); the remaining
    bandwidth is distributed by the MaxSysEff criterion.

    Parameters
    ----------
    gamma:
        Threshold in ``[0, 1]``.  The paper evaluates 0.25, 0.5 and 0.75 in
        Tables 1–2 and uses 0.27 in Figure 6.
    """

    def __init__(self, gamma: float):
        self.gamma = check_in_range("gamma", gamma, 0.0, 1.0)
        self.name = f"MinMax-{self.gamma:g}"

    def order_candidates(self, view: SystemView) -> Sequence[ApplicationView]:
        # Single partition pass (the ratio is computed once per candidate),
        # then each side sorts on its own criterion.
        starved: list[ApplicationView] = []
        healthy: list[ApplicationView] = []
        gamma = self.gamma
        for a in view.io_candidates():
            (starved if a.efficiency_ratio < gamma else healthy).append(a)
        starved.sort(key=lambda a: (a.efficiency_ratio, *a.order_key))
        healthy.sort(
            key=lambda a: (-a.processors * a.achieved_efficiency, *a.order_key)
        )
        starved.extend(healthy)
        return starved

"""Named construction of schedulers, and the standard heuristic suites.

The experiment harness and the benchmarks refer to schedulers by name
(``"MaxSysEff"``, ``"Priority-MinMax-0.5"``, ``"Intrepid"``, ...) so that a
figure's list of series is data, not code.  :func:`make_scheduler` resolves
such a name into a fresh scheduler instance; :func:`paper_heuristics`
returns the exact suites used by the paper's figures.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable

from repro.online.base import OnlineScheduler
from repro.online.baselines import FCFS, FairShare
from repro.online.heuristics import MaxSysEff, MinDilation, MinMaxGamma, RoundRobin
from repro.online.priority import Priority

__all__ = [
    "make_scheduler",
    "available_schedulers",
    "paper_heuristics",
    "figure6_suite",
    "tables_suite",
]

_SIMPLE_FACTORIES: dict[str, Callable[[], OnlineScheduler]] = {
    "roundrobin": RoundRobin,
    "mindilation": MinDilation,
    "maxsyseff": MaxSysEff,
    "fairshare": FairShare,
    "fcfs": FCFS,
    "intrepid": lambda: FairShare(name="Intrepid"),
    "mira": lambda: FairShare(name="Mira"),
    "vesta": lambda: FairShare(name="Vesta"),
    "ior": lambda: FairShare(name="IOR"),
}

_MINMAX_RE = re.compile(r"^minmax-(?P<gamma>[0-9.]+)$")


def make_scheduler(name: str) -> OnlineScheduler:
    """Build a scheduler from its display name.

    Recognized names (case-insensitive):

    * ``RoundRobin``, ``MinDilation``, ``MaxSysEff``, ``FairShare``,
      ``FCFS``, ``Intrepid``, ``Mira``, ``Vesta``, ``IOR``;
    * ``MinMax-<gamma>`` for any ``gamma`` in [0, 1], e.g. ``MinMax-0.5``;
    * any of the above prefixed with ``Priority-``.
    """
    key = name.strip()
    lowered = key.lower()
    if lowered.startswith("priority-"):
        return Priority(make_scheduler(key[len("priority-"):]))
    if lowered in _SIMPLE_FACTORIES:
        return _SIMPLE_FACTORIES[lowered]()
    match = _MINMAX_RE.match(lowered)
    if match:
        return MinMaxGamma(float(match.group("gamma")))
    raise KeyError(
        f"unknown scheduler name {name!r}; known names: {sorted(available_schedulers())} "
        "plus 'MinMax-<gamma>' and 'Priority-' prefixes"
    )


def available_schedulers() -> list[str]:
    """Base scheduler names accepted by :func:`make_scheduler`."""
    return sorted({"RoundRobin", "MinDilation", "MaxSysEff", "FairShare", "FCFS",
                   "Intrepid", "Mira", "Vesta", "IOR", "MinMax-<gamma>"})


def paper_heuristics(
    gammas: Iterable[float] = (0.5,), with_priority: bool = True
) -> list[OnlineScheduler]:
    """The paper's heuristic set: RoundRobin, MinDilation, MaxSysEff, MinMax-γ.

    With ``with_priority`` each heuristic is also returned in its Priority
    variant, matching the eight series of Figure 6.
    """
    base: list[OnlineScheduler] = [RoundRobin(), MinDilation(), MaxSysEff()]
    base.extend(MinMaxGamma(g) for g in gammas)
    if not with_priority:
        return base
    suite: list[OnlineScheduler] = []
    for heuristic in base:
        suite.append(heuristic)
        suite.append(Priority(_clone(heuristic)))
    return suite


def figure6_suite() -> list[OnlineScheduler]:
    """The eight series of Figure 6 (four heuristics × {plain, Priority})."""
    return paper_heuristics(gammas=(0.5,), with_priority=True)


def tables_suite(priority: bool) -> list[OnlineScheduler]:
    """The scheduler rows of Tables 1–2 (MinMax sweep + extremes).

    ``priority`` selects between the plain rows and the "Priority variant"
    rows of the tables.
    """
    names = ["MaxSysEff", "MinMax-0.25", "MinMax-0.5", "MinMax-0.75", "MinDilation"]
    if priority:
        names = [f"Priority-{n}" for n in names]
    return [make_scheduler(n) for n in names]


def _clone(scheduler: OnlineScheduler) -> OnlineScheduler:
    """Fresh instance of the same heuristic (for independent Priority wrapping)."""
    return make_scheduler(scheduler.name)

"""``repro`` — the unified command-line entry point of the reproduction.

Nine subcommands cover the whole surface:

* ``repro run <spec>`` — execute a declarative scenario/experiment spec
  (TOML or JSON; see ``docs/scenarios.md`` and ``examples/specs/``);
  results are memoized in the content-addressed result store
  (``--no-cache`` / ``--store PATH``; see ``docs/artifacts.md``), so
  reruns of unchanged specs execute zero simulations and interrupted
  campaigns resume from the cells that already landed; ``--trace`` /
  ``--metrics`` / ``--profile`` / ``--webhook`` attach the
  determinism-safe telemetry sinks (``docs/observability.md``);
* ``repro campaign run|status|resume`` — shard a grid spec's cells across
  fault-tolerant worker processes with a crash-safe journal: leases with
  deadlines, retry/backoff, per-cell timeouts, quarantine, and
  ``resume`` after a coordinator crash (see ``docs/distributed.md``);
* ``repro validate <spec> [<spec> ...]`` / ``repro validate --all DIR`` —
  schema-check specs without running them;
* ``repro report <spec> [...]`` — render the paper figures of one or more
  specs (served from the store when cached) into a self-contained
  HTML/Markdown artifact report;
* ``repro store info|gc|clear|merge`` — inspect, evict or union result
  stores (``merge`` joins per-worker campaign stores with byte-identity
  verification on key collisions);
* ``repro quickstart`` — a 30-second built-in demo (four applications
  competing for a shared file system under five schedulers);
* ``repro bench`` — the engine-scaling benchmark, writing the
  ``BENCH_engine.json`` trajectory payload;
* ``repro list`` — discoverability: scheduler names, workload categories,
  experiment kinds and the bundled example specs;
* ``repro lint`` — the static determinism/contract linter (``reprolint``,
  rules D001–D005/C001; see ``docs/determinism.md``).

Installed as a console script (``pip install -e .``) and also runnable
without installation as ``PYTHONPATH=src python -m repro ...``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro import __version__
from repro.config import (
    EXPERIMENT_KINDS,
    SpecError,
    load_spec,
    load_spec_data,
    parse_spec,
    run_spec,
    write_result,
)
from repro.store import ResultStore
from repro.utils.validation import ValidationError

__all__ = ["main", "build_parser"]

#: Specs bundled with the repository, relative to the repo root.
DEFAULT_SPECS_DIR = Path("examples") / "specs"


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared result-store knobs of ``run`` and ``report``."""
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "memoize cells/studies in the content-addressed result store "
            "(default: on; --no-cache recomputes everything and stores "
            "nothing)"
        ),
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "result-store location (default: $REPRO_STORE or ~/.cache/repro)"
        ),
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared telemetry knobs of ``run`` and ``campaign run/resume``.

    All four are pure observers: enabling any of them never changes
    payloads, store keys or exit codes (see docs/observability.md).
    """
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "write a Chrome-trace-event JSON timeline (spans for build/"
            "run/report stages, cells and store accesses; load in "
            "chrome://tracing or Perfetto)"
        ),
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help=(
            "write metric snapshots as JSON lines (one per completed stage "
            "+ a final one) plus a Prometheus text sibling FILE.prom"
        ),
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="DIR",
        help="cProfile each pipeline stage into DIR/NN-<stage>.prof",
    )
    parser.add_argument(
        "--webhook",
        default=None,
        metavar="TARGET",
        help=(
            "send progress events (repro-progress/1 JSON) to TARGET: an "
            "http(s):// URL (POSTed, fail-soft) or a file path (appended "
            "as JSON lines)"
        ),
    )


@contextlib.contextmanager
def _obs_session(args: argparse.Namespace) -> Iterator[None]:
    """Enable the telemetry recorder for one command, flush sinks at exit.

    With none of ``--trace``/``--metrics``/``--profile`` given, the
    recorder stays disabled and every instrumentation site in the pipeline
    remains a no-op branch.  Artefacts are flushed in ``finally`` so a
    crashed run still leaves a well-formed trace/metrics file of
    everything recorded up to the failure.
    """
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    profile = getattr(args, "profile", None)
    if trace is None and metrics is None and profile is None:
        yield
        return
    from repro.obs.metrics import MetricsWriter, write_prometheus
    from repro.obs.telemetry import recorder
    from repro.obs.trace import write_trace

    rec = recorder()
    rec.reset()
    rec.enable()
    writer: Optional[MetricsWriter] = None
    if metrics is not None:
        writer = MetricsWriter(metrics)
        rec.install_stage_hook(
            lambda stage: writer.write_snapshot(rec, reason=f"stage:{stage}")
        )
    if profile is not None:
        from repro.obs.profile import StageProfiler

        rec.install_profiler(StageProfiler(profile))
    try:
        yield
    finally:
        try:
            if trace is not None:
                write_trace(trace, rec)
            if writer is not None:
                writer.write_snapshot(rec, reason="final")
                write_prometheus(f"{metrics}.prom", rec)
        finally:
            rec.disable()


def _open_webhook(args: argparse.Namespace):
    """The ``--webhook`` progress-event sink, or ``None``."""
    target = getattr(args, "webhook", None)
    if target is None:
        return None
    from repro.obs.log import ProgressWebhook
    from repro.obs.telemetry import recorder

    return ProgressWebhook(target, recorder=recorder())


def build_parser() -> argparse.ArgumentParser:
    """The full argparse tree of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Scheduling the I/O of HPC applications under "
            "congestion' (IPDPS 2015): run declarative experiment specs, "
            "benchmarks and demos."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="run a declarative experiment spec (.toml or .json)",
        description=(
            "Execute a spec file.  The spec fully determines the run; the "
            "flags below override its [experiment]/[output] knobs without "
            "editing the file."
        ),
    )
    run.add_argument("spec", help="path to the spec file (.toml or .json)")
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the grid (0 = one per CPU; default: spec value)",
    )
    run.add_argument(
        "--max-time",
        type=float,
        default=None,
        metavar="SECONDS",
        help="truncate every simulation at this horizon (default: spec value)",
    )
    run.add_argument(
        "--seed", type=int, default=None, help="override the experiment seed"
    )
    run.add_argument(
        "--engine",
        choices=("heap", "batched", "auto"),
        default=None,
        help=(
            "simulation kernel for every cell ('auto' picks per scenario by "
            "application count; bit-identical results either way; default: "
            "spec value)"
        ),
    )
    run.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write results to this file (overrides the spec's [output] table)",
    )
    run.add_argument(
        "--format",
        choices=("json", "csv"),
        default=None,
        help="output format (default: spec value, else inferred from --out suffix)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress the result tables on stdout"
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help=(
            "stream per-cell/per-level status lines to stderr while the "
            "experiment runs (long campaigns are otherwise silent until done)"
        ),
    )
    _add_store_arguments(run)
    _add_obs_arguments(run)
    run.add_argument(
        "--require-cached",
        action="store_true",
        help=(
            "fail (exit 2) unless every cell/study was served from the "
            "result store — CI's 'second run performs zero simulation "
            "work' assertion"
        ),
    )
    run.set_defaults(func=_cmd_run)

    campaign = sub.add_parser(
        "campaign",
        help="shard a grid spec across fault-tolerant workers (journaled)",
        description=(
            "Distributed campaigns: shard a grid spec's cell set across N "
            "worker processes behind a crash-safe journal.  Workers hold "
            "cell leases with liveness deadlines (a killed or wedged worker "
            "costs one lease period), failing cells retry with seeded "
            "backoff up to a budget before quarantine, hung cells trip a "
            "per-cell timeout watchdog, and 'resume' replays the journal "
            "after a coordinator crash, recomputing only cells that never "
            "landed.  See docs/distributed.md."
        ),
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)
    camp_run = campaign_sub.add_parser(
        "run",
        help="start a fresh campaign from a grid spec",
        description=(
            "Shard the spec's cells across worker processes.  Exit 0 when "
            "every cell lands, 1 on degraded completion (quarantined cells "
            "are reported per cell), 2 on validation errors."
        ),
    )
    camp_run.add_argument("spec", help="path to the grid spec (.toml or .json)")
    camp_run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (0 = one per CPU; default: spec value, else 2)",
    )
    camp_run.add_argument(
        "--dir", dest="campaign_dir", default=None, metavar="DIR",
        help=(
            "campaign directory holding the journal, worker mailboxes and "
            "per-worker stores (default: campaigns/<spec name>)"
        ),
    )
    camp_run.add_argument(
        "--store", default=None, metavar="PATH",
        help="result store cells land in (default: $REPRO_STORE or ~/.cache/repro)",
    )
    camp_run.add_argument(
        "--worker-stores", action="store_true",
        help=(
            "give every worker its own store under DIR/stores/<worker> "
            "(the multi-host mode; union them with 'repro store merge')"
        ),
    )
    camp_run.add_argument(
        "--seed", type=int, default=None, help="override the experiment seed"
    )
    camp_run.add_argument(
        "--max-time", type=float, default=None, metavar="SECONDS",
        help="truncate every simulation at this horizon (default: spec value)",
    )
    camp_run.add_argument(
        "--engine", choices=("heap", "batched", "auto"), default=None,
        help="simulation kernel for every cell (default: spec value)",
    )
    camp_run.add_argument(
        "--lease-seconds", type=float, default=30.0, metavar="SECONDS",
        help=(
            "liveness deadline: a worker silent this long forfeits its "
            "lease and is replaced (default: %(default)s)"
        ),
    )
    camp_run.add_argument(
        "--retry-budget", type=int, default=3, metavar="N",
        help="attempts per cell before quarantine (default: %(default)s)",
    )
    camp_run.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "hard per-cell wall-clock timeout (default: derived per cell "
            "from the executor's cost estimate)"
        ),
    )
    camp_run.add_argument(
        "--progress", action="store_true",
        help="stream per-cell campaign events to stderr",
    )
    camp_run.add_argument(
        "--quiet", action="store_true",
        help="suppress the result tables after a clean shared-store campaign",
    )
    _add_obs_arguments(camp_run)
    # Testing/CI knobs, deliberately undocumented.
    camp_run.add_argument(
        "--halt-after-landed", type=int, default=None, help=argparse.SUPPRESS
    )
    camp_run.add_argument(
        "--heartbeat-seconds", type=float, default=0.25, help=argparse.SUPPRESS
    )
    camp_run.set_defaults(func=_cmd_campaign)

    camp_status = campaign_sub.add_parser(
        "status",
        help="journal-derived status of a campaign directory",
        description=(
            "Read the campaign journal (no processes needed, works on a "
            "directory copied off a crashed host) and report where every "
            "cell stands."
        ),
    )
    camp_status.add_argument("campaign_dir", metavar="DIR", help="campaign directory")
    camp_status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    camp_status.set_defaults(func=_cmd_campaign)

    camp_resume = campaign_sub.add_parser(
        "resume",
        help="resume a crashed or halted campaign from its journal",
        description=(
            "Replay the journal, verify landed cells against the store(s) "
            "and recompute only cells that never landed.  Refuses loudly if "
            "the producing code or the spec changed since the journal was "
            "written."
        ),
    )
    camp_resume.add_argument("campaign_dir", metavar="DIR", help="campaign directory")
    camp_resume.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: the campaign's recorded value)",
    )
    camp_resume.add_argument(
        "--store", default=None, metavar="PATH",
        help="result store override (default: the campaign's recorded store)",
    )
    camp_resume.add_argument(
        "--retry-quarantined", action="store_true",
        help="re-queue quarantined cells with a fresh retry budget",
    )
    camp_resume.add_argument(
        "--progress", action="store_true",
        help="stream per-cell campaign events to stderr",
    )
    _add_obs_arguments(camp_resume)
    camp_resume.add_argument(
        "--halt-after-landed", type=int, default=None, help=argparse.SUPPRESS
    )
    camp_resume.set_defaults(func=_cmd_campaign)

    validate = sub.add_parser(
        "validate",
        help="parse and validate specs without running them",
        description=(
            "Exit 0 if every given spec is well-formed, 2 with one message "
            "per broken spec otherwise.  Paths and --all compose."
        ),
    )
    validate.add_argument(
        "specs",
        nargs="*",
        metavar="spec",
        help="spec files to validate (.toml or .json)",
    )
    validate.add_argument(
        "--all",
        dest="all_dir",
        metavar="DIR",
        default=None,
        help="also validate every .toml/.json spec under DIR",
    )
    validate.set_defaults(func=_cmd_validate)

    report = sub.add_parser(
        "report",
        help="render paper figures + a self-contained HTML/Markdown report",
        description=(
            "Run one or more specs through the result store (cached "
            "campaigns are served without simulating anything) and render "
            "their figures — matplotlib PNGs when installed, text charts "
            "otherwise — into reports/report.html (and/or report.md)."
        ),
    )
    report.add_argument(
        "specs",
        nargs="*",
        metavar="spec",
        help="spec files to render (.toml or .json)",
    )
    report.add_argument(
        "--all",
        dest="all_dir",
        metavar="DIR",
        default=None,
        help="also render every .toml/.json spec under DIR",
    )
    report.add_argument(
        "--out-dir",
        default="reports",
        metavar="DIR",
        help="directory receiving report.html / report.md / figures "
             "(default: %(default)s)",
    )
    report.add_argument(
        "--format",
        choices=("html", "markdown", "both"),
        default="html",
        help="report flavour(s) to write (default: %(default)s)",
    )
    report.add_argument(
        "--text",
        action="store_true",
        help="force text charts even when matplotlib is installed",
    )
    report.add_argument(
        "--progress",
        action="store_true",
        help="stream per-spec/per-cell status lines to stderr",
    )
    _add_store_arguments(report)
    report.set_defaults(func=_cmd_report)

    store = sub.add_parser(
        "store",
        help="inspect or evict the content-addressed result store",
        description=(
            "The result store memoizes every experiment cell/study "
            "(~/.cache/repro, or REPRO_STORE, or --store PATH; see "
            "docs/artifacts.md)."
        ),
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_info = store_sub.add_parser(
        "info", help="entry count, disk usage and location of the store"
    )
    store_info.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    store_gc = store_sub.add_parser(
        "gc",
        help="evict entries by age and/or least-recently-used budgets",
        description=(
            "Hits refresh an entry's mtime, so --max-age-days keeps live "
            "cells; --max-entries/--max-bytes then trim LRU-first."
        ),
    )
    store_gc.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="drop entries not touched within DAYS",
    )
    store_gc.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="keep at most N entries (LRU eviction)",
    )
    store_gc.add_argument(
        "--max-bytes", type=int, default=None, metavar="BYTES",
        help="keep at most BYTES on disk (LRU eviction)",
    )
    store_clear = store_sub.add_parser("clear", help="remove every entry")
    store_merge = store_sub.add_parser(
        "merge",
        help="union per-worker campaign stores into one",
        description=(
            "Copy every entry of the source stores into --store DEST, "
            "byte-for-byte.  Keys present on both sides are verified, not "
            "replaced: identical payloads count as verified collisions, "
            "different payloads abort with exit 2 (a producer was "
            "non-deterministic — never silently pick a winner)."
        ),
    )
    store_merge.add_argument(
        "sources", nargs="+", metavar="SRC",
        help="source store roots (e.g. <campaign dir>/stores/*)",
    )
    for sub_parser in (store_info, store_gc, store_clear, store_merge):
        sub_parser.add_argument(
            "--store", default=None, metavar="PATH",
            help="store location (default: $REPRO_STORE or ~/.cache/repro)",
        )
    store.set_defaults(func=_cmd_store)

    quickstart = sub.add_parser(
        "quickstart",
        help="run the built-in 30-second demo",
        description=(
            "Four periodic applications compete for a 20 GB/s file system; "
            "compare the uncoordinated baseline against the paper's "
            "heuristics.  Exercises the same spec machinery as 'repro run'."
        ),
    )
    quickstart.add_argument(
        "--seed", type=int, default=0, help="experiment seed (default: %(default)s)"
    )
    quickstart.set_defaults(func=_cmd_quickstart)

    bench = sub.add_parser(
        "bench",
        help="run the benchmarks (writes BENCH_engine.json + BENCH_grid.json)",
        description=(
            "Time the optimized event-heap engine against the preserved seed "
            "engine, and the pooled end-to-end spec runs against serial "
            "ones, writing both machine-readable trajectory payloads.  "
            "Equivalent to benchmarks/run_bench.py."
        ),
    )
    bench.add_argument(
        "--out",
        default="BENCH_engine.json",
        help="output path for the engine payload (default: %(default)s)",
    )
    bench.add_argument(
        "--grid-out",
        default="BENCH_grid.json",
        help="output path for the experiment-grid payload (default: %(default)s)",
    )
    bench.add_argument(
        "--scale",
        type=int,
        default=1,
        help="benchmark-size multiplier, like REPRO_BENCH_SCALE (default: 1)",
    )
    bench.add_argument(
        "--scheduler",
        default="MaxSysEff",
        help="scheduler driven through both engines (default: %(default)s)",
    )
    bench.add_argument(
        "--no-reference",
        action="store_true",
        help=(
            "time only the optimized engine — no speedups; combine with "
            "--engine-only for a fast smoke run"
        ),
    )
    bench_half = bench.add_mutually_exclusive_group()
    bench_half.add_argument(
        "--engine-only",
        action="store_true",
        help="skip the experiment-grid benchmark",
    )
    bench_half.add_argument(
        "--grid-only",
        action="store_true",
        help="skip the engine-scaling benchmark",
    )
    bench.set_defaults(func=_cmd_bench)

    lister = sub.add_parser(
        "list",
        help="list schedulers, workload categories, experiment kinds or specs",
    )
    lister.add_argument(
        "what",
        choices=("schedulers", "categories", "experiments", "specs"),
        help="what to list",
    )
    lister.add_argument(
        "--specs-dir",
        default=str(DEFAULT_SPECS_DIR),
        help="directory scanned by 'list specs' (default: %(default)s)",
    )
    lister.set_defaults(func=_cmd_list)

    lint = sub.add_parser(
        "lint",
        help="static determinism/contract linter (reprolint)",
        description=(
            "Run the AST-based determinism linter over the given paths "
            "(default: src).  Rules D001-D005 catch per-file hazards "
            "(global RNG state, wall-clock reads, unordered set iteration, "
            "non-canonical JSON, mutable defaults); C001 checks that every "
            "dataclass reachable from store-key construction serializes "
            "canonically.  See docs/determinism.md.  Exit status: 0 clean, "
            "1 findings, 2 usage/baseline error."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "baseline file of grandfathered findings (default: "
            "reprolint-baseline.json next to the scanned tree, if present; "
            "--no-baseline disables).  Entries under simulator/ or store/ "
            "are rejected outright."
        ),
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    lint.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write the current findings out as a fresh baseline and exit 0",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: %(default)s)",
    )
    lint.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="PREFIX[:RULE]=LEVEL",
        help=(
            "per-path severity override, e.g. 'report/=warning' or "
            "'analysis/:D003=warning'; repeatable, longest prefix wins"
        ),
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.set_defaults(func=_cmd_lint)

    return parser


# ---------------------------------------------------------------------- #
def _cmd_run(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    if args.format is not None and args.out is None and spec.output is None:
        raise SpecError(
            "--format has no effect without an output target; add --out PATH "
            "or an [output] table to the spec"
        )
    spec = spec.with_overrides(
        seed=args.seed, workers=args.workers, max_time=args.max_time,
        engine=args.engine,
    )
    progress = None
    if args.progress:
        # Status goes to stderr so piped/redirected stdout stays a clean
        # artefact (tables or nothing with --quiet).  A broken stderr pipe
        # must not abort an hours-long run before its artefact is written.
        def progress(message: str) -> None:
            try:
                print(message, file=sys.stderr, flush=True)
            except OSError:
                pass

    webhook = _open_webhook(args)
    if webhook is not None:
        inner_progress = progress

        def progress(message: str) -> None:  # noqa: F811 — deliberate wrap
            webhook.emit("progress", message=message, spec=spec.name)
            if inner_progress is not None:
                inner_progress(message)

    store = _open_store(args)
    with _obs_session(args):
        if webhook is not None:
            webhook.emit("run-start", spec=spec.name, kind=spec.kind)
        result = run_spec(spec, progress=progress, store=store)
        if webhook is not None:
            webhook.emit(
                "run-complete", spec=spec.name, n_cells=len(result.records)
            )
    if args.require_cached:
        misses = result.store_stats["misses"] if store is not None else None
        if store is None or misses:
            raise SpecError(
                "--require-cached: "
                + (
                    "caching is disabled (--no-cache)"
                    if store is None
                    else f"{misses} cell(s)/study(ies) were computed instead "
                         f"of served from the store at {store.root}"
                )
            )
    # Persist before printing: a BrokenPipeError from stdout (`... | head`)
    # must never discard the artefact of a completed run.
    written = write_result(result, path=args.out, format=args.format)
    if not args.quiet:
        print(result.text)
        _print_store_line(store, result.store_stats)
    if written is not None:
        print(f"wrote {written}")
    return 0


def _stderr_progress(enabled: bool):
    """Optional stderr status-line callback (pipe-safe, like ``run``'s)."""
    if not enabled:
        return None

    def progress(message: str) -> None:
        try:
            print(message, file=sys.stderr, flush=True)
        except OSError:
            pass

    return progress


def _print_campaign_result(result) -> None:
    print(
        f"campaign {result.campaign_id}: {result.landed}/{result.n_cells} "
        f"cells landed ({result.landed_from_store} from store, "
        f"{result.landed_computed} computed)"
    )
    if result.retries or result.lease_expiries or result.timeouts or result.worker_deaths:
        print(
            f"  faults survived: {result.retries} retries, "
            f"{result.lease_expiries} lease expiries, {result.timeouts} "
            f"timeouts, {result.worker_deaths} worker deaths"
        )
    if result.degraded:
        # Deliberately not gated on --quiet: degraded completion must
        # never be silent about what it dropped.
        print(result.failure_report(), file=sys.stderr)


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignConfig,
        campaign_status,
        resume_campaign,
        run_campaign,
    )
    from repro.experiments.runner import resolve_workers

    if args.campaign_command == "status":
        status = campaign_status(args.campaign_dir)
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0
        counts = status["counts"]
        flags = []
        if status["complete"]:
            flags.append("complete")
        if status["resumes"]:
            flags.append(f"{status['resumes']} resume(s)")
        if status["corrupt_journal_lines"]:
            flags.append(f"{status['corrupt_journal_lines']} corrupt journal line(s)")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        print(
            f"campaign {status['id']} ({status['spec']}): "
            f"{counts['landed']}/{status['n_cells']} landed, "
            f"{counts['pending']} pending, {counts['leased']} leased, "
            f"{counts['quarantined']} quarantined{suffix}"
        )
        for cell in status["cells"]:
            if cell["state"] == "quarantined":
                print(
                    f"  quarantined cell {cell['index']} ({cell['scenario']} x "
                    f"{cell['scheduler']}): {cell.get('error', 'unknown error')}"
                )
        for worker in status["workers"]:
            age = worker["heartbeat_age_seconds"]
            age_text = f"{age:.1f}s ago" if age is not None else "never"
            done = worker["cells_done"]
            done_text = f"{done} cell(s) done" if done is not None else "no metrics"
            rate = worker["cells_per_second"]
            rate_text = f", {rate:.2f} cells/s" if rate is not None else ""
            print(
                f"  worker {worker['worker']} (gen {worker['generation']}): "
                f"heartbeat {age_text}, {done_text}{rate_text}"
            )
        return 0

    if args.campaign_command == "resume":
        webhook = _open_webhook(args)
        with _obs_session(args):
            result = resume_campaign(
                args.campaign_dir,
                store=args.store,
                workers=args.workers,
                progress=_stderr_progress(args.progress),
                on_event=webhook.emit if webhook is not None else None,
                retry_quarantined=args.retry_quarantined,
                halt_after_landed=args.halt_after_landed,
            )
        _print_campaign_result(result)
        if result.halted:
            print(f"halted; resume with: repro campaign resume {args.campaign_dir}")
        return 1 if result.degraded else 0

    # campaign run
    spec_data = load_spec_data(args.spec)
    spec = parse_spec(spec_data, name=Path(args.spec).stem)
    spec = spec.with_overrides(
        seed=args.seed, max_time=args.max_time, engine=args.engine
    )
    if args.workers is not None:
        workers = resolve_workers(args.workers)
    elif spec.workers:
        workers = resolve_workers(spec.workers)
    else:
        workers = 2
    config = CampaignConfig(
        workers=workers,
        worker_stores=args.worker_stores,
        lease_seconds=args.lease_seconds,
        heartbeat_seconds=args.heartbeat_seconds,
        retry_budget=args.retry_budget,
        cell_timeout_seconds=args.cell_timeout,
        halt_after_landed=args.halt_after_landed,
    )
    campaign_dir = (
        Path(args.campaign_dir)
        if args.campaign_dir is not None
        else Path("campaigns") / spec.name
    )
    store = ResultStore(args.store)
    webhook = _open_webhook(args)
    with _obs_session(args):
        result = run_campaign(
            spec,
            campaign_dir,
            store=store,
            config=config,
            spec_data=spec_data,
            progress=_stderr_progress(args.progress),
            on_event=webhook.emit if webhook is not None else None,
        )
    _print_campaign_result(result)
    if result.halted:
        print(f"halted; resume with: repro campaign resume {campaign_dir}")
        return 0
    if result.degraded:
        return 1
    if config.worker_stores:
        print(
            "cells landed in per-worker stores; union them with:\n"
            f"  repro store merge {campaign_dir / 'stores'}/* --store {store.root}"
        )
    elif not args.quiet:
        # Clean shared-store campaign: assemble the artifact tables through
        # the normal run path — every cell is served from the store, so
        # this simulates nothing and proves the campaign's cells are the
        # serial run's cells.
        run_result = run_spec(spec, store=store)
        print(run_result.text)
        _print_store_line(store, run_result.store_stats)
    return 0


def _open_store(args: argparse.Namespace) -> Optional[ResultStore]:
    """The result store selected by ``--cache``/``--no-cache``/``--store``."""
    if not args.cache:
        if args.store is not None:
            raise SpecError("--store has no effect with --no-cache")
        return None
    return ResultStore(args.store)


def _print_store_line(
    store: Optional[ResultStore], stats: Optional[dict]
) -> None:
    if store is None or stats is None:
        return
    corrupt = f", {stats['corrupt']} corrupt" if stats["corrupt"] else ""
    print(
        f"store: {stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['writes']} writes{corrupt} "
        f"(hit rate {100.0 * stats['hit_rate']:.1f}%) — {store.root}"
    )


def _collect_spec_paths(args: argparse.Namespace) -> list[str]:
    """Explicit paths plus ``--all DIR`` expansion, in a stable order."""
    paths = [str(p) for p in args.specs]
    if args.all_dir is not None:
        specs_dir = Path(args.all_dir)
        if not specs_dir.is_dir():
            raise SpecError(f"--all: {specs_dir} is not a directory")
        found = sorted(specs_dir.glob("*.toml")) + sorted(specs_dir.glob("*.json"))
        if not found:
            raise SpecError(f"--all: no .toml/.json specs under {specs_dir}")
        paths.extend(str(p) for p in found)
    # A spec named both explicitly and via --all must not run/render twice.
    paths = list(dict.fromkeys(paths))
    if not paths:
        raise SpecError("give at least one spec path (or --all DIR)")
    return paths


def _validate_one(spec_path: str):
    from repro.config import (
        build_cases,
        build_grid_scenarios,
        build_periodic_setup,
        build_platform,
    )
    from repro.config.spec import AnalysisSpec, GridSpec, PeriodicSpec

    spec = load_spec(spec_path)
    # Parsing alone misses the deterministic build-time checks (duplicate
    # labels, burst-buffer platform constraints, periodic application
    # construction); run them too, so exit 0 really means "repro run will
    # accept this spec".
    if isinstance(spec.body, GridSpec):
        build_grid_scenarios(spec.body, spec.seed, max_time=spec.max_time)
        build_cases(spec.body)
    elif isinstance(spec.body, PeriodicSpec):
        build_periodic_setup(spec.body, spec.seed)
    elif isinstance(spec.body, AnalysisSpec):
        build_platform(spec.body.platform)
    return spec


def _cmd_validate(args: argparse.Namespace) -> int:
    failures = 0
    for spec_path in _collect_spec_paths(args):
        # Validate every spec even after a failure: CI should surface all
        # broken specs in one pass, with one path-prefixed message each.
        try:
            spec = _validate_one(spec_path)
        except ValidationError as exc:
            print(f"error: {spec_path}: {exc}", file=sys.stderr)
            failures += 1
            continue
        print(f"OK: {spec_path} — experiment {spec.name!r}, kind {spec.kind!r}")
    return 2 if failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import build_report

    progress = None
    if args.progress:
        def progress(message: str) -> None:
            try:
                print(message, file=sys.stderr, flush=True)
            except OSError:
                pass

    formats = ("html", "markdown") if args.format == "both" else (args.format,)
    result = build_report(
        _collect_spec_paths(args),
        store=_open_store(args),
        out_dir=args.out_dir,
        formats=formats,
        force_text=args.text,
        progress=progress,
    )
    backend = "matplotlib" if result.used_matplotlib else "text charts"
    for section in result.sections:
        stats = section.result.store_stats
        served = (
            f" ({stats['hits']} hits, {stats['misses']} misses)"
            if stats is not None
            else ""
        )
        print(
            f"rendered {section.result.spec.name}: "
            f"{len(section.figures)} figure(s) via {backend}{served}"
        )
    for path in result.report_paths:
        print(f"wrote {path}")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if args.store_command == "info":
        info = store.info()
        if args.json:
            print(json.dumps(info, indent=2, sort_keys=True))
        else:
            print(f"store:   {info['path']} (format {info['format']})")
            print(f"entries: {info['entries']}")
            print(f"size:    {info['total_bytes']} bytes")
    elif args.store_command == "gc":
        if (
            args.max_age_days is None
            and args.max_entries is None
            and args.max_bytes is None
        ):
            raise SpecError(
                "store gc needs at least one budget: --max-age-days, "
                "--max-entries and/or --max-bytes"
            )
        removed = store.gc(
            max_age_days=args.max_age_days,
            max_entries=args.max_entries,
            max_bytes=args.max_bytes,
        )
        print(f"evicted {removed} entries from {store.root}")
    elif args.store_command == "merge":
        from repro.store import merge_stores

        report = merge_stores(args.sources, store)
        print(
            f"merged {len(report.sources)} store(s) into {report.destination}: "
            f"{report.copied} copied, {report.verified} verified identical, "
            f"{report.skipped_corrupt} corrupt skipped"
        )
    else:
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
    return 0


def _cmd_quickstart(args: argparse.Namespace) -> int:
    # Built as a plain dict and pushed through parse_spec/run_spec: the demo
    # exercises exactly the code path a spec file takes.
    data = {
        "experiment": {"name": "quickstart", "kind": "grid", "seed": args.seed},
        "platform": {
            "preset": "generic",
            "processors": 1024,
            "node_bandwidth": 1.0e8,
            "system_bandwidth": 2.0e10,
            "name": "quickstart",
        },
        "scenarios": [
            {
                "kind": "apps",
                "label": "quickstart",
                "apps": [
                    {"name": "climate", "processors": 512, "work": 300.0,
                     "io_volume": 4.0e12, "instances": 5},
                    {"name": "combustion", "processors": 256, "work": 200.0,
                     "io_volume": 2.0e12, "instances": 6},
                    {"name": "cosmology", "processors": 192, "work": 450.0,
                     "io_volume": 1.5e12, "instances": 4},
                    {"name": "materials", "processors": 64, "work": 120.0,
                     "io_volume": 5.0e11, "instances": 8},
                ],
            }
        ],
        "schedulers": {
            "names": ["FairShare", "RoundRobin", "MaxSysEff", "MinDilation",
                      "MinMax-0.5"]
        },
    }
    result = run_spec(parse_spec(data, name="quickstart"))
    print(result.text)
    print(
        "The coordinated heuristics recover most of the efficiency lost to\n"
        "congestion.  Next steps: 'repro run examples/specs/figure6.toml',\n"
        "'repro list schedulers', and docs/scenarios.md for the spec format."
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.scaling import run_bench_cli

    # Scheduler/scale validation lives in run_bench_cli, shared with
    # benchmarks/run_bench.py; errors surface via the ValidationError path.
    return run_bench_cli(
        out=args.out,
        scale=args.scale,
        scheduler=args.scheduler,
        include_reference=not args.no_reference,
        grid_out=None if args.engine_only else args.grid_out,
        include_engine=not args.grid_only,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    if args.what == "schedulers":
        from repro.online.registry import available_schedulers

        print("Scheduler names accepted by specs and make_scheduler():")
        for name in available_schedulers():
            print(f"  {name}")
        print("  (any name can be prefixed with 'Priority-')")
    elif args.what == "categories":
        from repro.workload.categories import CATEGORY_PROFILES

        print("Workload categories (Intrepid node-count buckets, Section 4.1):")
        for category, profile in CATEGORY_PROFILES.items():
            print(
                f"  {category.value:<11} {profile.min_nodes}-{profile.max_nodes} "
                f"nodes, {profile.instance_range[0]}-{profile.instance_range[1]} "
                f"instances/job"
            )
    elif args.what == "experiments":
        descriptions = {
            "grid": "generic (scenarios x schedulers) grid — fully declarative",
            "figure6": "random-mix heuristic comparison (Figure 6 panels)",
            "congested-moments": "Intrepid/Mira congested-moment campaigns "
                                 "(Tables 1-2, Figures 8-13)",
            "vesta": "Vesta / modified-IOR emulation (Figures 14-16)",
            "periodic": "Section 3.2 periodic heuristics + (1+eps) period "
                        "sweep, compared against the online schedulers",
            "analysis": "figure-level studies: throughput decrease (Fig 1), "
                        "workload characterization (Fig 5), sensibility "
                        "(Fig 7)",
        }
        print("Experiment kinds accepted by [experiment].kind:")
        for kind in EXPERIMENT_KINDS:
            # .get: a newly added kind must not break the discovery command.
            print(f"  {kind:<18} {descriptions.get(kind, '')}".rstrip())
    else:
        specs_dir = Path(args.specs_dir)
        if not specs_dir.is_dir() and args.specs_dir == str(DEFAULT_SPECS_DIR):
            # The default is CWD-relative for checkout users; from anywhere
            # else (e.g. after `pip install -e .`), fall back to the spec
            # library next to the source tree.
            fallback = Path(__file__).resolve().parents[2] / DEFAULT_SPECS_DIR
            if fallback.is_dir():
                specs_dir = fallback
        if not specs_dir.is_dir():
            print(f"no specs directory at {specs_dir}", file=sys.stderr)
            return 2
        found = sorted(specs_dir.glob("*.toml")) + sorted(specs_dir.glob("*.json"))
        if not found:
            print(f"no .toml/.json specs under {specs_dir}", file=sys.stderr)
            return 2
        print(f"Specs under {specs_dir}:")
        for path in found:
            try:
                spec = load_spec(path)
                print(f"  {path.name:<28} kind={spec.kind:<18} {spec.name}")
            except SpecError as exc:
                print(f"  {path.name:<28} INVALID: {exc}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Lazy import: the linter is a dev tool; `repro run` should not pay for
    # loading it (and vice versa, the linter imports no simulation code).
    from repro.lint import (
        PROJECT_RULE_REGISTRY,
        RULE_REGISTRY,
        BaselineError,
        format_json,
        format_text,
        load_baseline,
        run_lint,
        write_baseline,
    )

    if args.list_rules:
        for rule_id in sorted(RULE_REGISTRY):
            print(f"{rule_id}  {RULE_REGISTRY[rule_id].title}")
        for rule_id in sorted(PROJECT_RULE_REGISTRY):
            print(f"{rule_id}  {PROJECT_RULE_REGISTRY[rule_id].title}")
        return 0

    overrides: dict[str, str] = {}
    for item in args.severity:
        pattern, sep, level = item.partition("=")
        if not sep or not pattern:
            print(
                f"error: --severity expects PREFIX[:RULE]=LEVEL, got {item!r}",
                file=sys.stderr,
            )
            return 2
        overrides[pattern] = level

    baseline = None
    if not args.no_baseline and args.write_baseline is None:
        baseline_path = (
            Path(args.baseline)
            if args.baseline is not None
            else Path("reprolint-baseline.json")
        )
        if baseline_path.exists():
            try:
                baseline = load_baseline(baseline_path)
            except BaselineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        elif args.baseline is not None:
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2

    try:
        result = run_lint(
            [Path(p) for p in args.paths],
            baseline=baseline,
            severity_overrides=overrides or None,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        write_baseline(Path(args.write_baseline), result.errors)
        print(
            f"wrote {len(result.errors)} finding(s) to {args.write_baseline}"
        )
        return 0

    if args.format == "json":
        print(json.dumps(format_json(result), indent=2, sort_keys=True))
    else:
        print(format_text(result))
    return result.exit_code()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console-script entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValidationError as exc:
        # Covers SpecError (malformed spec) and model-level validation (e.g.
        # a --max-time horizon that truncates before an app is released).
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer closed early (e.g. `repro list ... | head`).
        # Point stdout at devnull so the interpreter's shutdown flush does
        # not raise a second time, and exit with the conventional status.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130


if __name__ == "__main__":
    sys.exit(main())

"""Platform model of Section 2.1 and the concrete machines of the evaluation.

A platform is ``N`` identical unit-speed processors, each with an I/O card of
bandwidth ``b`` bytes/s towards the I/O servers, and a centralized I/O system
of aggregate bandwidth ``B`` bytes/s from the I/O servers to the disks.  The
I/O network is assumed separate from the message network (true on Intrepid,
Mira and Vesta, which is why the paper uses them).

Optionally a platform carries a :class:`BurstBufferSpec` describing the
intermediate staging layer that the *baseline* Intrepid/Mira schedulers use.
The paper's own heuristics are evaluated **without** burst buffers; the
striking result is that they remain competitive with the baselines that have
them.

The numbers below are derived from the architecture descriptions in the paper
(Figure 2 instantiates the model on Intrepid with b = 0.1 GB/s per node) and
public ALCF specifications for the aggregate file-system bandwidths.  Absolute
values only set the scale of the simulation; every reproduced result is a
*relative* comparison on the same platform object.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.utils.units import GB
from repro.utils.validation import ValidationError, check_non_negative, check_positive

__all__ = [
    "BurstBufferSpec",
    "Platform",
    "intrepid",
    "mira",
    "vesta",
    "generic",
]


@dataclass(frozen=True)
class BurstBufferSpec:
    """Description of an intermediate burst-buffer staging layer.

    Attributes
    ----------
    capacity:
        Total staging capacity in bytes shared by all applications.
    ingest_bandwidth:
        Aggregate bandwidth at which compute nodes can write into the buffer
        (bytes/s).  On real systems this is the compute fabric bandwidth and
        is much larger than the file-system bandwidth ``B``.
    drain_bandwidth:
        Bandwidth at which the buffer destages to the parallel file system
        (bytes/s).  Bounded by ``B`` when the buffer shares the PFS back-end.
    """

    capacity: float
    ingest_bandwidth: float
    drain_bandwidth: float

    def __post_init__(self) -> None:
        check_positive("capacity", self.capacity)
        check_positive("ingest_bandwidth", self.ingest_bandwidth)
        check_positive("drain_bandwidth", self.drain_bandwidth)


@dataclass(frozen=True)
class Platform:
    """The compute + I/O platform shared by all applications of a scenario.

    Attributes
    ----------
    name:
        Identifier (``"intrepid"``, ``"mira"``, ``"vesta"``, or custom).
    total_processors:
        ``N``, the number of unit-speed processors.
    node_bandwidth:
        ``b``, the I/O card bandwidth of each processor (bytes/s).
    system_bandwidth:
        ``B``, the aggregate bandwidth of the centralized I/O system
        (bytes/s).
    burst_buffer:
        Optional burst-buffer layer available to baseline schedulers.
    """

    name: str
    total_processors: int
    node_bandwidth: float
    system_bandwidth: float
    burst_buffer: Optional[BurstBufferSpec] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("platform name must be non-empty")
        if int(self.total_processors) != self.total_processors or self.total_processors <= 0:
            raise ValidationError(
                f"total_processors must be a positive integer, got {self.total_processors!r}"
            )
        object.__setattr__(self, "total_processors", int(self.total_processors))
        check_positive("node_bandwidth", self.node_bandwidth)
        check_positive("system_bandwidth", self.system_bandwidth)
        if self.burst_buffer is not None and not isinstance(self.burst_buffer, BurstBufferSpec):
            raise ValidationError("burst_buffer must be a BurstBufferSpec or None")

    # ------------------------------------------------------------------ #
    def peak_application_bandwidth(self, processors: int) -> float:
        """Best-case I/O bandwidth of an application on ``processors`` nodes.

        ``min(beta * b, B)`` — either the application saturates its own I/O
        cards or it saturates the shared back-end.
        """
        check_non_negative("processors", processors)
        return min(processors * self.node_bandwidth, self.system_bandwidth)

    def congestion_point(self) -> float:
        """Number of processors beyond which a single application saturates B."""
        return self.system_bandwidth / self.node_bandwidth

    def with_burst_buffer(self, spec: Optional[BurstBufferSpec]) -> "Platform":
        """Copy of the platform with a different burst-buffer configuration."""
        return replace(self, burst_buffer=spec)

    def without_burst_buffer(self) -> "Platform":
        """Copy of the platform with the burst-buffer layer removed."""
        return replace(self, burst_buffer=None)

    def scaled(self, factor: float, name: Optional[str] = None) -> "Platform":
        """Platform scaled uniformly (processors and system bandwidth).

        Useful to build reduced-size scenarios that keep the compute-to-I/O
        balance of the original machine (the simulations in Section 4 do the
        same when replaying congested moments at reduced node counts).
        """
        check_positive("factor", factor)
        return Platform(
            name=name or f"{self.name}-x{factor:g}",
            total_processors=max(1, int(round(self.total_processors * factor))),
            node_bandwidth=self.node_bandwidth,
            system_bandwidth=self.system_bandwidth * factor,
            burst_buffer=self.burst_buffer,
        )


# ---------------------------------------------------------------------- #
# Concrete machines used in the paper's evaluation
# ---------------------------------------------------------------------- #
def intrepid(with_burst_buffer: bool = False) -> Platform:
    """Argonne Intrepid (BlueGene/P): 40,960 nodes, b = 0.1 GB/s, B ~ 88 GB/s.

    Figure 2 of the paper instantiates the model on Intrepid with
    0.1 GB/s/node towards 128 file servers.  The aggregate PFS bandwidth of
    Intrepid's storage system was on the order of 88 GB/s.
    """
    bb = (
        BurstBufferSpec(
            # A couple of minutes of full-rate bursts: enough to absorb the
            # typical checkpoint spike, not enough to hide sustained
            # congestion ("burst buffers cannot prevent congestion at all
            # times" — Section 1).
            capacity=4.0e12,
            ingest_bandwidth=512 * GB,
            # Destaging is less efficient than a dedicated streaming write.
            drain_bandwidth=0.6 * 88 * GB,
        )
        if with_burst_buffer
        else None
    )
    return Platform(
        name="intrepid",
        total_processors=40_960,
        node_bandwidth=0.1 * GB,
        system_bandwidth=88 * GB,
        burst_buffer=bb,
    )


def mira(with_burst_buffer: bool = False) -> Platform:
    """Argonne Mira (BlueGene/Q): 49,152 nodes, b = 0.25 GB/s, B ~ 240 GB/s."""
    bb = (
        BurstBufferSpec(
            capacity=16.0e12,
            ingest_bandwidth=2048 * GB,
            drain_bandwidth=0.6 * 240 * GB,
        )
        if with_burst_buffer
        else None
    )
    return Platform(
        name="mira",
        total_processors=49_152,
        node_bandwidth=0.25 * GB,
        system_bandwidth=240 * GB,
        burst_buffer=bb,
    )


def vesta(with_burst_buffer: bool = False) -> Platform:
    """Argonne Vesta: Mira's development rack pair — 2,048 nodes, B ~ 16 GB/s.

    Vesta has the same per-node characteristics as Mira but only two racks,
    and a proportionally smaller file-system back-end.  Section 5 runs the
    modified IOR benchmark on node counts between 32 and 2,048.
    """
    bb = (
        BurstBufferSpec(
            capacity=0.75e12,
            ingest_bandwidth=128 * GB,
            drain_bandwidth=0.6 * 16 * GB,
        )
        if with_burst_buffer
        else None
    )
    return Platform(
        name="vesta",
        total_processors=2_048,
        node_bandwidth=0.25 * GB,
        system_bandwidth=16 * GB,
        burst_buffer=bb,
    )


def generic(
    total_processors: int,
    node_bandwidth: float,
    system_bandwidth: float,
    name: str = "generic",
    burst_buffer: Optional[BurstBufferSpec] = None,
) -> Platform:
    """Arbitrary platform, for tests and synthetic studies."""
    return Platform(
        name=name,
        total_processors=total_processors,
        node_bandwidth=node_bandwidth,
        system_bandwidth=system_bandwidth,
        burst_buffer=burst_buffer,
    )

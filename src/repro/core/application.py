"""Application model of Section 2.1.

An application ``App(k)`` is released at time ``r_k``, runs on ``beta_k``
dedicated processors, and consists of ``n_tot`` *instances*.  Instance ``i``
performs ``w[i]`` seconds of computation (at unit speed, undisturbed because
the processors are dedicated) followed by the transfer of ``vol_io[i]`` bytes
through the shared I/O system.

The paper pays special attention to *periodic* applications, for which every
instance has the same compute time ``w`` and I/O volume ``vol_io`` — the
common pattern of simulation codes that checkpoint or dump analysis output at
a fixed cadence (S3D, HOMME, GTC, Enzo, HACC, CM1 are cited).  The
:func:`Application.periodic` constructor covers that case; the general
constructor accepts per-instance sequences and is what the sensibility study
(Figure 7) uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.utils.validation import (
    ValidationError,
    check_non_negative,
    check_positive,
)

__all__ = ["Instance", "Application", "total_processors"]


@dataclass(frozen=True)
class Instance:
    """A single compute + I/O instance of an application.

    Attributes
    ----------
    work:
        Compute time in seconds (``w^{(k,i)}`` in the paper).  May be zero
        for pure-I/O instances.
    io_volume:
        Bytes transferred after the compute phase (``vol_io^{(k,i)}``).
        May be zero for instances that do not perform I/O.
    """

    work: float
    io_volume: float

    def __post_init__(self) -> None:
        check_non_negative("work", self.work)
        check_non_negative("io_volume", self.io_volume)
        if self.work == 0 and self.io_volume == 0:
            raise ValidationError("an instance must have non-zero work or I/O volume")


@dataclass(frozen=True)
class Application:
    """A parallel application competing for the shared I/O system.

    Attributes
    ----------
    name:
        Human-readable identifier, unique within a scenario.
    processors:
        Number of dedicated processors ``beta^{(k)}``.
    instances:
        The ordered sequence of instances executed by the application.
    release_time:
        Time ``r_k`` at which the application enters the system.
    category:
        Optional workload-category label (``"small"``, ``"large"``,
        ``"very_large"``) used by the workload generator and the Figure 5
        analysis; purely informational for the schedulers.
    """

    name: str
    processors: int
    instances: tuple[Instance, ...]
    release_time: float = 0.0
    category: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("application name must be a non-empty string")
        if int(self.processors) != self.processors or self.processors <= 0:
            raise ValidationError(
                f"processors must be a positive integer, got {self.processors!r}"
            )
        object.__setattr__(self, "processors", int(self.processors))
        check_non_negative("release_time", self.release_time)
        insts = tuple(self.instances)
        if not insts:
            raise ValidationError(f"application {self.name!r} has no instances")
        for inst in insts:
            if not isinstance(inst, Instance):
                raise ValidationError(
                    f"instances must be Instance objects, got {type(inst).__name__}"
                )
        object.__setattr__(self, "instances", insts)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def periodic(
        cls,
        name: str,
        processors: int,
        work: float,
        io_volume: float,
        n_instances: int,
        release_time: float = 0.0,
        category: Optional[str] = None,
    ) -> "Application":
        """Build a periodic application: ``n_instances`` identical instances."""
        if int(n_instances) != n_instances or n_instances <= 0:
            raise ValidationError(
                f"n_instances must be a positive integer, got {n_instances!r}"
            )
        inst = Instance(work=work, io_volume=io_volume)
        return cls(
            name=name,
            processors=processors,
            instances=tuple([inst] * int(n_instances)),
            release_time=release_time,
            category=category,
        )

    @classmethod
    def from_sequences(
        cls,
        name: str,
        processors: int,
        works: Sequence[float],
        io_volumes: Sequence[float],
        release_time: float = 0.0,
        category: Optional[str] = None,
    ) -> "Application":
        """Build an application from parallel per-instance sequences."""
        if len(works) != len(io_volumes):
            raise ValidationError(
                f"works and io_volumes must have equal length "
                f"({len(works)} != {len(io_volumes)})"
            )
        insts = tuple(Instance(float(w), float(v)) for w, v in zip(works, io_volumes))
        return cls(
            name=name,
            processors=processors,
            instances=insts,
            release_time=release_time,
            category=category,
        )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def n_instances(self) -> int:
        """Number of instances ``n_tot^{(k)}``."""
        return len(self.instances)

    @cached_property
    def cumulative_work(self) -> tuple[float, ...]:
        """Prefix sums of per-instance compute times.

        ``cumulative_work[i] == sum(inst.work for inst in instances[:i+1])``
        bit-for-bit: the accumulation runs left to right exactly like the
        built-in ``sum``, so callers replacing an on-the-fly sum with a prefix
        lookup observe the identical float.  Cached once per application; the
        simulator's hot path turns every per-event efficiency computation
        into an O(1) lookup through this table.
        """
        total = 0.0
        prefix: list[float] = []
        for inst in self.instances:
            total += inst.work
            prefix.append(total)
        return tuple(prefix)

    @cached_property
    def cumulative_io_volume(self) -> tuple[float, ...]:
        """Prefix sums of per-instance I/O volumes (see :attr:`cumulative_work`)."""
        total = 0.0
        prefix: list[float] = []
        for inst in self.instances:
            total += inst.io_volume
            prefix.append(total)
        return tuple(prefix)

    @property
    def total_work(self) -> float:
        """Total compute seconds over all instances."""
        return self.cumulative_work[-1]

    @property
    def total_io_volume(self) -> float:
        """Total bytes of I/O over all instances."""
        return self.cumulative_io_volume[-1]

    @property
    def is_periodic(self) -> bool:
        """True when every instance has identical work and I/O volume."""
        first = self.instances[0]
        return all(
            inst.work == first.work and inst.io_volume == first.io_volume
            for inst in self.instances
        )

    def io_time_dedicated(self, node_bandwidth: float, system_bandwidth: float) -> float:
        """Total I/O time if the application had the I/O system to itself.

        This is ``sum_i vol_io^{(k,i)} / min(beta^{(k)} * b, B)`` — the
        denominator of the optimal efficiency ``rho`` in Section 2.2.
        """
        check_positive("node_bandwidth", node_bandwidth)
        check_positive("system_bandwidth", system_bandwidth)
        peak = min(self.processors * node_bandwidth, system_bandwidth)
        return self.total_io_volume / peak

    def instance_io_time_dedicated(
        self, index: int, node_bandwidth: float, system_bandwidth: float
    ) -> float:
        """Dedicated-mode I/O time of one instance (``time_io^{(k,i)}``)."""
        peak = min(self.processors * node_bandwidth, system_bandwidth)
        return self.instances[index].io_volume / peak

    def optimal_efficiency(
        self, node_bandwidth: float, system_bandwidth: float
    ) -> float:
        """Congestion-free efficiency ``rho^{(k)}`` over the whole application.

        ``rho = sum w / (sum w + sum time_io)`` with dedicated-mode I/O times.
        Returns 1.0 for an application that performs no I/O at all.
        """
        w = self.total_work
        tio = self.io_time_dedicated(node_bandwidth, system_bandwidth)
        if w == 0 and tio == 0:
            return 1.0
        if w + tio == 0:
            return 1.0
        return w / (w + tio)

    def work_array(self) -> np.ndarray:
        """Per-instance compute times as a float array."""
        return np.asarray([inst.work for inst in self.instances], dtype=float)

    def io_volume_array(self) -> np.ndarray:
        """Per-instance I/O volumes as a float array."""
        return np.asarray([inst.io_volume for inst in self.instances], dtype=float)

    def with_release_time(self, release_time: float) -> "Application":
        """Copy of this application released at a different time."""
        return Application(
            name=self.name,
            processors=self.processors,
            instances=self.instances,
            release_time=release_time,
            category=self.category,
        )

    def with_name(self, name: str) -> "Application":
        """Copy of this application under a different name."""
        return Application(
            name=name,
            processors=self.processors,
            instances=self.instances,
            release_time=self.release_time,
            category=self.category,
        )


def total_processors(applications: Iterable[Application]) -> int:
    """Total processor count ``N = sum_k beta^{(k)}`` of a scenario."""
    return int(sum(app.processors for app in applications))

"""A scenario bundles a platform with the applications that will run on it.

Scenarios are what the simulator, the experiment runner and the benchmark
harness exchange.  They also carry a label (e.g. ``"intrepid-moment-17"`` or
``"512/256/256/32"``) so that reports can be indexed the same way as the
paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.core.application import Application, total_processors
from repro.core.platform import Platform
from repro.faults.model import FaultModel
from repro.utils.validation import ValidationError

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """A set of applications to run concurrently on a platform.

    Attributes
    ----------
    platform:
        The shared compute + I/O platform.
    applications:
        The applications competing for I/O.  Names must be unique.
    label:
        Human-readable identifier used in reports.
    metadata:
        Free-form annotations (e.g. the I/O-to-compute ratio used by the
        generator, or the congested-moment index).  Not interpreted by the
        scheduler or the simulator.
    faults:
        Optional realized fault timeline (PFS brown-out windows and
        application crash/restart events) the engines inject during the
        run.  Being a declared dataclass field it is canonicalized into
        every content-addressed store key, so changing any fault parameter
        re-keys the affected cells.  ``None`` means a healthy platform.
    """

    platform: Platform
    applications: tuple[Application, ...]
    label: str = "scenario"
    metadata: Mapping[str, object] = field(default_factory=dict)
    faults: Optional[FaultModel] = None

    def __post_init__(self) -> None:
        apps = tuple(self.applications)
        if not apps:
            raise ValidationError("a scenario needs at least one application")
        names = [app.name for app in apps]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValidationError(f"duplicate application names in scenario: {dupes}")
        used = total_processors(apps)
        if used > self.platform.total_processors:
            raise ValidationError(
                f"applications use {used} processors but the platform "
                f"{self.platform.name!r} only has {self.platform.total_processors}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultModel):
            raise ValidationError(
                f"scenario faults must be a FaultModel or None, "
                f"got {type(self.faults).__name__}"
            )
        object.__setattr__(self, "applications", apps)
        object.__setattr__(self, "metadata", dict(self.metadata))

    # ------------------------------------------------------------------ #
    @property
    def n_applications(self) -> int:
        """Number of applications in the scenario."""
        return len(self.applications)

    @property
    def used_processors(self) -> int:
        """Processors actually occupied by the applications."""
        return total_processors(self.applications)

    @property
    def application_names(self) -> tuple[str, ...]:
        """Names in declaration order."""
        return tuple(app.name for app in self.applications)

    def application(self, name: str) -> Application:
        """Look an application up by name."""
        for app in self.applications:
            if app.name == name:
                return app
        raise KeyError(f"no application named {name!r} in scenario {self.label!r}")

    def application_map(self) -> dict[str, Application]:
        """Name -> application mapping (fresh dict)."""
        return {app.name: app for app in self.applications}

    def __iter__(self) -> Iterator[Application]:
        return iter(self.applications)

    def __len__(self) -> int:
        return len(self.applications)

    # ------------------------------------------------------------------ #
    def with_platform(self, platform: Platform) -> "Scenario":
        """Same applications on a different platform (e.g. adding burst buffers)."""
        return replace(self, platform=platform)

    def with_label(self, label: str) -> "Scenario":
        """Relabelled copy."""
        return replace(self, label=label)

    def with_applications(self, applications: Sequence[Application]) -> "Scenario":
        """Copy with a different application set."""
        return replace(self, applications=tuple(applications))

    def with_faults(self, faults: Optional[FaultModel]) -> "Scenario":
        """Copy with a (different) fault timeline, or a healthy copy (``None``)."""
        return replace(self, faults=faults)

    def subset(self, names: Iterable[str]) -> "Scenario":
        """Scenario restricted to the named applications (order preserved)."""
        keep = set(names)
        missing = keep - set(self.application_names)
        if missing:
            raise KeyError(f"applications not in scenario: {sorted(missing)}")
        apps = tuple(app for app in self.applications if app.name in keep)
        return replace(self, applications=apps)

"""Objectives of Section 2.2: application efficiency, SysEfficiency, Dilation.

Definitions (using the paper's notation):

* ``rho_tilde(k)(t) = sum_{i <= n(k)(t)} w^{(k,i)} / (t - r_k)`` — the
  *achieved* efficiency of application ``k`` at time ``t``: fraction of the
  elapsed wall-clock time spent computing.
* ``rho(k)(t) = sum w / (sum w + sum time_io)`` — the *optimal* efficiency,
  obtained when the I/O system is dedicated to the application
  (``time_io^{(k,i)} = vol_io^{(k,i)} / min(beta b, B)``).
* ``SysEfficiency = (1/N) sum_k beta^{(k)} rho_tilde^{(k)}(d_k)`` — maximize.
* ``Dilation = max_k rho^{(k)}(d_k) / rho_tilde^{(k)}(d_k)`` — minimize.

The functions below operate on :class:`ApplicationOutcome` records produced
by the simulator (or by the periodic-schedule evaluator), so the same code
scores every heuristic, every baseline and the upper limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.utils.validation import ValidationError, check_non_negative

__all__ = [
    "ApplicationOutcome",
    "achieved_efficiency",
    "optimal_efficiency",
    "application_dilation",
    "system_efficiency",
    "system_efficiency_upper_limit",
    "max_dilation",
    "mean_dilation",
    "ObjectiveSummary",
    "summarize",
]


@dataclass(frozen=True)
class ApplicationOutcome:
    """Everything needed to score one application after a run.

    Attributes
    ----------
    name:
        Application identifier.
    processors:
        ``beta^{(k)}`` — number of dedicated processors.
    release_time:
        ``r_k`` — when the application entered the system.
    completion_time:
        ``d_k`` — when its last instance finished.
    executed_work:
        Total seconds of computation executed (``sum_i w^{(k,i)}``).
    dedicated_io_time:
        Total I/O time the application would have needed with the I/O system
        in dedicated mode (``sum_i time_io^{(k,i)}``).
    """

    name: str
    processors: int
    release_time: float
    completion_time: float
    executed_work: float
    dedicated_io_time: float

    def __post_init__(self) -> None:
        check_non_negative("release_time", self.release_time)
        check_non_negative("executed_work", self.executed_work)
        check_non_negative("dedicated_io_time", self.dedicated_io_time)
        if self.processors <= 0:
            raise ValidationError(f"processors must be > 0, got {self.processors}")
        if self.completion_time < self.release_time:
            raise ValidationError(
                f"completion_time ({self.completion_time}) is before "
                f"release_time ({self.release_time}) for {self.name!r}"
            )

    # Convenience accessors -------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Wall-clock time spent in the system, ``d_k - r_k``."""
        return self.completion_time - self.release_time


def achieved_efficiency(outcome: ApplicationOutcome) -> float:
    """``rho_tilde^{(k)}(d_k)`` — achieved efficiency at completion.

    Degenerate cases: an application whose elapsed time is zero (it did
    nothing measurable) is given efficiency equal to its optimal efficiency,
    so that its dilation is 1 and it does not pollute the aggregate metrics.
    """
    if outcome.elapsed <= 0:
        return optimal_efficiency(outcome)
    return outcome.executed_work / outcome.elapsed


def optimal_efficiency(outcome: ApplicationOutcome) -> float:
    """``rho^{(k)}(d_k)`` — efficiency with a dedicated I/O system."""
    denom = outcome.executed_work + outcome.dedicated_io_time
    if denom <= 0:
        return 1.0
    return outcome.executed_work / denom


def application_dilation(outcome: ApplicationOutcome) -> float:
    """Slowdown ``rho / rho_tilde`` of one application (>= 1 up to rounding)."""
    achieved = achieved_efficiency(outcome)
    optimal = optimal_efficiency(outcome)
    if achieved <= 0:
        if optimal <= 0:
            return 1.0
        return float("inf")
    return optimal / achieved


def _total_processors(outcomes: Sequence[ApplicationOutcome], total: int | None) -> int:
    if total is not None:
        if total <= 0:
            raise ValidationError(f"total_processors must be > 0, got {total}")
        return int(total)
    return int(sum(o.processors for o in outcomes))


def system_efficiency(
    outcomes: Sequence[ApplicationOutcome], total_processors: int | None = None
) -> float:
    """SysEfficiency ``(1/N) sum_k beta^{(k)} rho_tilde^{(k)}(d_k)``.

    ``total_processors`` defaults to the sum of the outcomes' processor
    counts; pass the platform's ``N`` explicitly when parts of the machine
    are intentionally idle (the paper normalizes by the full machine).
    """
    if not outcomes:
        raise ValidationError("system_efficiency needs at least one outcome")
    n = _total_processors(outcomes, total_processors)
    return float(
        sum(o.processors * achieved_efficiency(o) for o in outcomes) / n
    )


def system_efficiency_upper_limit(
    outcomes: Sequence[ApplicationOutcome], total_processors: int | None = None
) -> float:
    """Upper limit ``(1/N) sum_k beta^{(k)} rho^{(k)}(d_k)`` of SysEfficiency."""
    if not outcomes:
        raise ValidationError("upper limit needs at least one outcome")
    n = _total_processors(outcomes, total_processors)
    return float(sum(o.processors * optimal_efficiency(o) for o in outcomes) / n)


def max_dilation(outcomes: Sequence[ApplicationOutcome]) -> float:
    """Dilation objective: the worst per-application slowdown."""
    if not outcomes:
        raise ValidationError("max_dilation needs at least one outcome")
    return float(max(application_dilation(o) for o in outcomes))


def mean_dilation(outcomes: Sequence[ApplicationOutcome]) -> float:
    """Average per-application slowdown (not a paper objective; diagnostic)."""
    if not outcomes:
        raise ValidationError("mean_dilation needs at least one outcome")
    return float(np.mean([application_dilation(o) for o in outcomes]))


@dataclass(frozen=True)
class ObjectiveSummary:
    """Both objectives plus the upper limit for one scheduler run.

    SysEfficiency values are reported on a 0–100 percentage scale because
    that is how the paper's tables and figures present them.
    """

    system_efficiency: float
    dilation: float
    upper_limit: float
    mean_dilation: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view used by the reporting layer."""
        return {
            "system_efficiency": self.system_efficiency,
            "dilation": self.dilation,
            "upper_limit": self.upper_limit,
            "mean_dilation": self.mean_dilation,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "ObjectiveSummary":
        """Inverse of :meth:`as_dict` (the result-store decode path)."""
        return cls(
            system_efficiency=data["system_efficiency"],
            dilation=data["dilation"],
            upper_limit=data["upper_limit"],
            mean_dilation=data["mean_dilation"],
        )


def summarize(
    outcomes: Sequence[ApplicationOutcome], total_processors: int | None = None
) -> ObjectiveSummary:
    """Compute both objectives (and the upper limit) for a set of outcomes."""
    return ObjectiveSummary(
        system_efficiency=100.0 * system_efficiency(outcomes, total_processors),
        dilation=max_dilation(outcomes),
        upper_limit=100.0 * system_efficiency_upper_limit(outcomes, total_processors),
        mean_dilation=mean_dilation(outcomes),
    )

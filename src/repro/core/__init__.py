"""Core model of the paper: applications, platforms, objectives, allocations.

This subpackage contains no scheduling policy and no simulation machinery —
only the Section 2 framework that everything else is written against:

* :class:`~repro.core.application.Application` /
  :class:`~repro.core.application.Instance` — the compute/I-O instance model.
* :class:`~repro.core.platform.Platform` — ``N`` processors, node bandwidth
  ``b``, aggregate I/O bandwidth ``B``, optional burst buffer; with the
  Intrepid / Mira / Vesta presets used in the evaluation.
* :class:`~repro.core.allocation.BandwidthAllocation` — the per-event
  decision object produced by schedulers, with feasibility validation.
* :mod:`~repro.core.objectives` — achieved/optimal efficiency,
  SysEfficiency, Dilation and the upper limit.
* :class:`~repro.core.scenario.Scenario` — platform + applications bundle.
"""

from repro.core.allocation import BandwidthAllocation
from repro.core.application import Application, Instance, total_processors
from repro.core.events import Event, EventLog, EventType
from repro.core.objectives import (
    ApplicationOutcome,
    ObjectiveSummary,
    achieved_efficiency,
    application_dilation,
    max_dilation,
    mean_dilation,
    optimal_efficiency,
    summarize,
    system_efficiency,
    system_efficiency_upper_limit,
)
from repro.core.platform import BurstBufferSpec, Platform, generic, intrepid, mira, vesta
from repro.core.scenario import Scenario

__all__ = [
    "Application",
    "Instance",
    "total_processors",
    "Platform",
    "BurstBufferSpec",
    "intrepid",
    "mira",
    "vesta",
    "generic",
    "BandwidthAllocation",
    "Event",
    "EventLog",
    "EventType",
    "ApplicationOutcome",
    "ObjectiveSummary",
    "achieved_efficiency",
    "optimal_efficiency",
    "application_dilation",
    "system_efficiency",
    "system_efficiency_upper_limit",
    "max_dilation",
    "mean_dilation",
    "summarize",
    "Scenario",
]

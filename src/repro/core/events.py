"""Event vocabulary of the discrete-event simulation.

The online scheduler of Section 3.1 is consulted at every *event*, defined by
the paper as the start or the end of an I/O transfer.  The simulator extends
the vocabulary slightly (application release and completion, burst-buffer
transitions) because those moments also change the set of applications that
may compete for bandwidth; the scheduler interface remains exactly "look at
the system state, pick who transfers".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["EventType", "Event", "EventLog"]


class EventType(enum.Enum):
    """Kinds of simulation events at which bandwidth is (re)allocated."""

    #: An application enters the system at its release time ``r_k``.
    APP_RELEASE = "app_release"
    #: A compute phase finished; the application now requests I/O.
    IO_REQUEST = "io_request"
    #: An application's pending I/O transfer has completed in full.
    IO_COMPLETE = "io_complete"
    #: An application executed its last instance and leaves the system.
    APP_COMPLETE = "app_complete"
    #: The burst buffer filled up or fully drained (changes routing of writes).
    BURST_BUFFER_TRANSITION = "burst_buffer_transition"
    #: A scheduler-initiated re-evaluation (e.g. periodic timetable boundary).
    SCHEDULER_TICK = "scheduler_tick"
    #: A fault-injection crash: the application loses its in-flight instance
    #: and must re-read its checkpoint before restarting it.
    APP_CRASH = "app_crash"
    #: Recovery I/O finished; the crashed instance restarts from scratch.
    APP_RESTART = "app_restart"


@dataclass(frozen=True)
class Event:
    """One simulation event.

    Attributes
    ----------
    time:
        Simulation time (seconds) at which the event occurs.
    event_type:
        What happened.
    app_name:
        Application concerned, if any (``None`` for global events such as
        burst-buffer transitions or scheduler ticks).
    instance_index:
        Index of the application instance concerned, if any.
    detail:
        Free-form human-readable annotation used by the event log.
    """

    time: float
    event_type: EventType
    app_name: Optional[str] = None
    instance_index: Optional[int] = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if not isinstance(self.event_type, EventType):
            raise TypeError(
                f"event_type must be an EventType, got {type(self.event_type).__name__}"
            )


@dataclass
class EventLog:
    """Chronological record of the events seen during one simulation run.

    The log is optional (the simulator only fills it when asked) but the
    integration tests and a couple of examples use it to explain *why* a
    heuristic behaved the way it did.
    """

    events: list[Event] = field(default_factory=list)

    def append(self, event: Event) -> None:
        """Record an event; events must be appended in non-decreasing time."""
        if self.events and event.time < self.events[-1].time - 1e-9:
            raise ValueError(
                "events must be appended in chronological order "
                f"({event.time} < {self.events[-1].time})"
            )
        self.events.append(event)

    def of_type(self, event_type: EventType) -> list[Event]:
        """All events of a given type, in order."""
        return [e for e in self.events if e.event_type == event_type]

    def for_app(self, app_name: str) -> list[Event]:
        """All events concerning a given application, in order."""
        return [e for e in self.events if e.app_name == app_name]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

"""Bandwidth allocations: the decision object every scheduler produces.

At each event the scheduler returns a :class:`BandwidthAllocation` — a map
from application name to *per-processor* bandwidth ``gamma^{(k)}`` valid
until the next event.  The model constraints from Section 2.1 are:

* ``0 <= gamma^{(k)} <= b`` — never exceed a node's I/O card; and
* ``sum_k beta^{(k)} gamma^{(k)} <= B`` — never exceed the shared back-end.

:meth:`BandwidthAllocation.validate` enforces both (with a small relative
tolerance for floating-point accumulation); the simulator validates every
allocation it applies, so a buggy heuristic fails loudly instead of silently
transferring more bytes than the platform can move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.application import Application
from repro.core.platform import Platform
from repro.utils.validation import ValidationError

__all__ = ["BandwidthAllocation", "RELATIVE_TOLERANCE"]

#: Relative tolerance applied when checking the capacity constraints.
RELATIVE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class BandwidthAllocation:
    """Per-application, per-processor bandwidth assignment for one interval.

    Attributes
    ----------
    per_processor_bandwidth:
        Mapping ``app name -> gamma`` in bytes/s.  Applications absent from
        the mapping receive no bandwidth (they are stalled or computing).
    """

    per_processor_bandwidth: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cleaned: dict[str, float] = {}
        for name, gamma in dict(self.per_processor_bandwidth).items():
            gamma = float(gamma)
            if gamma < 0:
                raise ValidationError(
                    f"negative bandwidth {gamma} assigned to application {name!r}"
                )
            if gamma > 0:
                cleaned[str(name)] = gamma
        object.__setattr__(self, "per_processor_bandwidth", cleaned)

    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "BandwidthAllocation":
        """Allocation giving bandwidth to nobody."""
        return cls({})

    @classmethod
    def _from_positive(cls, gammas: dict[str, float]) -> "BandwidthAllocation":
        """Wrap a dict of strictly positive float bandwidths without copying.

        Fast path for the allocators in :mod:`repro.simulator.bandwidth`,
        which build one allocation per scheduling event and guarantee by
        construction what ``__post_init__`` would re-derive (str keys, float
        values, every gamma > 0).  The allocation takes ownership of
        ``gammas``; callers must not mutate it afterwards.  The result is
        indistinguishable from ``BandwidthAllocation(gammas)``.
        """
        allocation = object.__new__(cls)
        object.__setattr__(allocation, "per_processor_bandwidth", gammas)
        return allocation

    def gamma(self, app_name: str) -> float:
        """Per-processor bandwidth of ``app_name`` (0.0 if not allocated)."""
        return self.per_processor_bandwidth.get(app_name, 0.0)

    def application_rate(self, app: Application) -> float:
        """Aggregate transfer rate ``beta^{(k)} * gamma^{(k)}`` of one application."""
        return app.processors * self.gamma(app.name)

    def total_rate(self, applications: Iterable[Application]) -> float:
        """Aggregate rate over the given applications."""
        return float(sum(self.application_rate(app) for app in applications))

    def active_applications(self) -> frozenset[str]:
        """Names of applications receiving strictly positive bandwidth."""
        return frozenset(self.per_processor_bandwidth)

    # ------------------------------------------------------------------ #
    def validate(
        self,
        platform: Platform,
        applications: Mapping[str, Application],
        *,
        capacity: float | None = None,
    ) -> None:
        """Check the Section 2.1 feasibility constraints.

        Parameters
        ----------
        platform:
            Supplies ``b`` and (by default) ``B``.
        applications:
            Map from name to :class:`Application`; every allocated
            application must be present (β is needed for the total).
        capacity:
            Override for the total-capacity constraint.  The burst-buffer
            path uses this to validate against the ingest bandwidth instead
            of ``B``.

        Raises
        ------
        ValidationError
            If an unknown application is allocated, a node bandwidth exceeds
            ``b``, or the aggregate exceeds the capacity.
        """
        cap = platform.system_bandwidth if capacity is None else float(capacity)
        b = platform.node_bandwidth
        total = 0.0
        for name, gamma in self.per_processor_bandwidth.items():
            if name not in applications:
                raise ValidationError(
                    f"allocation references unknown application {name!r}"
                )
            if gamma > b * (1.0 + RELATIVE_TOLERANCE):
                raise ValidationError(
                    f"application {name!r} allocated {gamma:.6g} B/s per processor, "
                    f"exceeding the node bandwidth b = {b:.6g} B/s"
                )
            total += applications[name].processors * gamma
        if total > cap * (1.0 + RELATIVE_TOLERANCE):
            raise ValidationError(
                f"total allocated bandwidth {total:.6g} B/s exceeds the "
                f"capacity {cap:.6g} B/s"
            )

    def restricted_to(self, names: Iterable[str]) -> "BandwidthAllocation":
        """New allocation keeping only the named applications."""
        keep = set(names)
        return BandwidthAllocation(
            {n: g for n, g in self.per_processor_bandwidth.items() if n in keep}
        )

    def __len__(self) -> int:
        return len(self.per_processor_bandwidth)

    def __contains__(self, app_name: str) -> bool:
        return app_name in self.per_processor_bandwidth

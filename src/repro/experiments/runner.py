"""Experiment runner: execute (scenario × scheduler) grids and collect objectives.

Every figure and table of the paper boils down to the same operation: run a
set of scenarios under a set of schedulers (some with burst buffers, some
without) and tabulate SysEfficiency, Dilation and the upper limit.  The
runner centralizes that loop so the figure-specific modules only describe
*what* to run.

Grid cells are mutually independent — every scenario carries its own
pre-generated applications (per-cell randomness is decided *before* the grid
runs, when scenarios are built from seeds), and schedulers are constructed
fresh inside each cell.  :func:`run_grid` therefore accepts ``workers=`` and
fans the cells out over a :class:`concurrent.futures.ProcessPoolExecutor`;
results are collected in submission order, so a parallel grid is
cell-for-cell identical to a serial one, just faster.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence, TypeVar

import numpy as np

from repro.core.objectives import ObjectiveSummary
from repro.core.platform import Platform
from repro.core.scenario import Scenario
from repro.online.registry import make_scheduler
from repro.simulator.engine import SimulatorConfig, simulate
from repro.simulator.interface import SchedulerProtocol
from repro.simulator.metrics import SimulationResult
from repro.utils.validation import ValidationError

__all__ = [
    "SchedulerCase",
    "CaseResult",
    "ExperimentGrid",
    "run_case",
    "run_grid",
    "map_parallel",
    "resolve_workers",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers=`` argument into a concrete process count.

    ``None`` and ``1`` mean serial execution (the default — identical to the
    pre-parallel behaviour); ``0`` means "one process per CPU"; any other
    positive integer is taken literally.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 0:
        raise ValidationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def map_parallel(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    *,
    workers: int | None = None,
    progress: Optional[Callable[[int, _T, _R], None]] = None,
) -> list[_R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Results come back in input order regardless of completion order, so
    callers observe exactly the serial semantics.  ``fn`` and the items must
    be picklable (module-level function, plain-data arguments) when
    ``workers`` implies more than one process.

    ``progress(index, item, result)`` is invoked in the caller's process as
    each result is collected, in submission order — in parallel runs that is
    as the ordered result stream drains, so long grids report cells as they
    finish instead of staying silent until the pool joins.
    """
    n_workers = resolve_workers(workers)
    results: list[_R] = []
    if n_workers <= 1 or len(items) <= 1:
        for index, item in enumerate(items):
            result = fn(item)
            if progress is not None:
                progress(index, item, result)
            results.append(result)
        return results
    with ProcessPoolExecutor(max_workers=min(n_workers, len(items))) as pool:
        for index, result in enumerate(pool.map(fn, items)):
            if progress is not None:
                progress(index, items[index], result)
            results.append(result)
    return results


@dataclass(frozen=True)
class SchedulerCase:
    """One scheduler column of an experiment.

    Attributes
    ----------
    name:
        Scheduler name understood by
        :func:`repro.online.registry.make_scheduler` (also the display name).
    use_burst_buffer:
        Run the scenario on its platform's burst-buffer configuration.  The
        scenario's platform must carry a burst-buffer spec (the runner swaps
        in ``burst_buffer_platform`` when provided).
    burst_buffer_platform:
        Optional platform override supplying the burst-buffer spec (e.g.
        ``core.intrepid(with_burst_buffer=True)``).
    label:
        Display label; defaults to ``name`` plus a ``+BB`` suffix when the
        burst buffer is enabled.
    """

    name: str
    use_burst_buffer: bool = False
    burst_buffer_platform: Optional[Platform] = None
    label: Optional[str] = None

    @property
    def display(self) -> str:
        """Label shown in tables."""
        if self.label is not None:
            return self.label
        return f"{self.name}+BB" if self.use_burst_buffer else self.name

    def build_scheduler(self) -> SchedulerProtocol:
        """Fresh scheduler instance for one run."""
        return make_scheduler(self.name)


@dataclass(frozen=True)
class CaseResult:
    """Objectives of one (scenario, scheduler) cell.

    ``makespan`` is in seconds of simulated time; ``n_events`` counts the
    discrete events the engine processed (each one triggers a scheduler
    reallocation).
    """

    scenario_label: str
    scheduler_label: str
    summary: ObjectiveSummary
    makespan: float
    n_events: int

    @property
    def system_efficiency(self) -> float:
        """SysEfficiency as a percentage (0–100, the paper's convention)."""
        return self.summary.system_efficiency

    @property
    def dilation(self) -> float:
        """Worst per-application slowdown (ratio >= 1; 1 = no slowdown)."""
        return self.summary.dilation

    @property
    def upper_limit(self) -> float:
        """Upper limit of SysEfficiency as a percentage (congestion-free bound)."""
        return self.summary.upper_limit


@dataclass
class ExperimentGrid:
    """All cells of a (scenarios × schedulers) experiment."""

    cases: list[CaseResult] = field(default_factory=list)

    def add(self, result: CaseResult) -> None:
        """Append one cell (cells keep submission order)."""
        self.cases.append(result)

    # ------------------------------------------------------------------ #
    def schedulers(self) -> list[str]:
        """Scheduler labels in first-appearance order."""
        seen: list[str] = []
        for case in self.cases:
            if case.scheduler_label not in seen:
                seen.append(case.scheduler_label)
        return seen

    def scenarios(self) -> list[str]:
        """Scenario labels in first-appearance order."""
        seen: list[str] = []
        for case in self.cases:
            if case.scenario_label not in seen:
                seen.append(case.scenario_label)
        return seen

    def cell(self, scenario_label: str, scheduler_label: str) -> CaseResult:
        """The cell for one scenario and scheduler."""
        for case in self.cases:
            if (
                case.scenario_label == scenario_label
                and case.scheduler_label == scheduler_label
            ):
                return case
        raise KeyError(f"no cell for ({scenario_label!r}, {scheduler_label!r})")

    def series(self, scheduler_label: str, metric: str) -> list[float]:
        """Per-scenario series of one metric for one scheduler.

        ``metric`` is ``"system_efficiency"``, ``"dilation"`` or
        ``"upper_limit"``.
        """
        order = self.scenarios()
        values = {c.scenario_label: getattr(c, metric) for c in self.cases
                  if c.scheduler_label == scheduler_label}
        missing = [s for s in order if s not in values]
        if missing:
            raise KeyError(f"scheduler {scheduler_label!r} missing scenarios {missing}")
        return [values[s] for s in order]

    def mean(self, scheduler_label: str, metric: str) -> float:
        """Average of one metric over all scenarios for one scheduler."""
        return float(np.mean(self.series(scheduler_label, metric)))

    def averages(self) -> dict[str, dict[str, float]]:
        """``{scheduler: {metric: mean}}`` over all scenarios."""
        out: dict[str, dict[str, float]] = {}
        for scheduler in self.schedulers():
            out[scheduler] = {
                metric: self.mean(scheduler, metric)
                for metric in ("system_efficiency", "dilation", "upper_limit")
            }
        return out


# ---------------------------------------------------------------------- #
def run_case(
    scenario: Scenario,
    case: SchedulerCase,
    *,
    max_time: float = float("inf"),
    return_result: bool = False,
) -> CaseResult | tuple[CaseResult, SimulationResult]:
    """Run one scenario under one scheduler case."""
    run_scenario = scenario
    if case.use_burst_buffer:
        platform = case.burst_buffer_platform or scenario.platform
        if platform.burst_buffer is None:
            raise ValidationError(
                f"case {case.display!r} requires a burst buffer but platform "
                f"{platform.name!r} does not define one"
            )
        run_scenario = scenario.with_platform(platform)
    config = SimulatorConfig(use_burst_buffer=case.use_burst_buffer, max_time=max_time)
    result = simulate(run_scenario, case.build_scheduler(), config)
    case_result = CaseResult(
        scenario_label=scenario.label,
        scheduler_label=case.display,
        summary=result.summary(),
        makespan=result.makespan,
        n_events=result.n_events,
    )
    if return_result:
        return case_result, result
    return case_result


def _run_grid_cell(
    cell: tuple[Scenario, SchedulerCase, float]
) -> CaseResult:
    """Picklable adapter running one grid cell in a worker process."""
    scenario, case, max_time = cell
    return run_case(scenario, case, max_time=max_time)


def run_grid(
    scenarios: Sequence[Scenario],
    cases: Sequence[SchedulerCase],
    *,
    max_time: float = float("inf"),
    workers: int | None = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ExperimentGrid:
    """Run every scenario under every scheduler case.

    Parameters
    ----------
    scenarios, cases:
        The grid axes; every (scenario, case) pair becomes one cell.
    max_time:
        Simulation horizon passed to every cell.
    workers:
        Number of worker processes (see :func:`resolve_workers`; ``None`` or
        ``1`` runs serially, ``0`` uses every CPU).  Cells are independent
        and deterministic — scenario randomness is fixed when the scenarios
        are built — and results are collected in submission order, so the
        grid is identical whatever the worker count.
    progress:
        Optional callback receiving one human-readable line per completed
        cell (``cell 3/9: mixA x MaxSysEff ...``), so long campaigns stream
        status instead of staying silent until the grid finishes.  Called in
        the driving process only; it does not affect results.
    """
    if not scenarios:
        raise ValidationError("run_grid needs at least one scenario")
    if not cases:
        raise ValidationError("run_grid needs at least one scheduler case")
    cells = [
        (scenario, case, max_time) for scenario in scenarios for case in cases
    ]

    on_cell = None
    if progress is not None:
        n_cells = len(cells)

        def on_cell(index: int, cell, result: CaseResult) -> None:
            from repro.experiments.reporting import percent, ratio

            progress(
                f"cell {index + 1}/{n_cells}: {result.scenario_label} x "
                f"{result.scheduler_label} — SysEff "
                f"{percent(result.system_efficiency)}%, dilation "
                f"{ratio(result.dilation)}"
            )

    grid = ExperimentGrid()
    for result in map_parallel(
        _run_grid_cell, cells, workers=workers, progress=on_cell
    ):
        grid.add(result)
    return grid

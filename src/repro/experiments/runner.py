"""Experiment runner: execute (scenario × scheduler) grids and collect objectives.

Every figure and table of the paper boils down to the same operation: run a
set of scenarios under a set of schedulers (some with burst buffers, some
without) and tabulate SysEfficiency, Dilation and the upper limit.  The
runner centralizes that loop so the figure-specific modules only describe
*what* to run.

Grid cells are mutually independent — every scenario carries its own
pre-generated applications (per-cell randomness is decided *before* the grid
runs, when scenarios are built from seeds), and schedulers are constructed
fresh inside each cell.  :func:`run_grid` therefore accepts ``workers=`` and
fans the cells out over worker processes; results are collected in
submission order, so a parallel grid is cell-for-cell identical to a serial
one, just faster.

Pool reuse
----------
A paper campaign is a *fleet* of grids — the Figure 6 panels, the seven
sensibility levels of Figure 7, the periodic-vs-online comparison — and
spawning a fresh process pool per grid used to dominate small campaigns.
:class:`ExperimentExecutor` owns one lazily-spawned pool that many
``map_parallel`` / :func:`run_grid` calls share (``repro run`` drives a
whole multi-study spec through a single executor), and dispatches work in
contiguous chunks so a shared immutable payload (platform + scenarios) is
serialized once per worker instead of once per cell.

Result store
------------
Cells are deterministic, so they are also *memoizable*: with a
:class:`repro.store.ResultStore` attached (``run_grid(..., store=...)``,
threaded down from ``repro run``), the executor consults the store before
dispatching each cell and writes every freshly computed cell back as soon
as it drains — a rerun of an unchanged campaign executes zero simulations,
and an interrupted campaign resumes from whatever cells already landed.
Each cell's key digests the canonical scenario + scheduler case + horizon
plus the code fingerprint of the producing modules (see
:mod:`repro.store`); results are merged back in submission order, so a
cached grid is cell-for-cell (and byte-for-byte) identical to a cold one.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, TypeVar

import numpy as np

from repro.core.objectives import ObjectiveSummary
from repro.core.platform import Platform
from repro.core.scenario import Scenario
from repro.obs.telemetry import recorder as _obs_recorder
from repro.online.registry import make_scheduler
from repro.simulator.batched import batched_simulate
from repro.simulator.engine import SimulatorConfig, simulate
from repro.simulator.interface import SchedulerProtocol
from repro.simulator.metrics import FaultStats, SimulationResult
from repro.store import ResultStore, canonical_json, code_fingerprint, digest
from repro.utils.validation import ValidationError

__all__ = [
    "ENGINES",
    "DEFAULT_ENGINE",
    "AUTO_DISPATCH_MIN_APPS",
    "resolve_engine",
    "dispatch_engine",
    "engine_runner",
    "SchedulerCase",
    "CaseResult",
    "ExperimentGrid",
    "ExecutorStats",
    "ExperimentExecutor",
    "MapCache",
    "grid_cell_keys",
    "estimate_cell_seconds",
    "encode_case_result",
    "decode_case_result",
    "run_case",
    "run_grid",
    "map_parallel",
    "resolve_workers",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Process-wide telemetry funnel (no-op unless a CLI/campaign enabled it).
#: Instrumentation here observes dispatch and recovery; it never touches
#: results — see docs/observability.md.
_OBS = _obs_recorder()

#: Simulation engines selectable per campaign.  The concrete kernels are
#: pinned bit-identical to the frozen reference engine
#: (tests/test_engine_equivalence.py and tests/test_engine_differential.py),
#: so the choice only affects speed: "batched" (the columnar numpy kernel)
#: wins on wide scenarios and is the default; "heap" (the indexed event
#: queue) wins on very small ones and serves as the fallback for custom
#: scheduler objects; "auto" picks per scenario by application count (heap
#: below :data:`AUTO_DISPATCH_MIN_APPS`, batched at or above).
ENGINES = ("heap", "batched", "auto")
DEFAULT_ENGINE = "batched"

#: Width threshold of the "auto" engine: below this many applications the
#: per-breakpoint numpy call overhead of the batched kernel exceeds its
#: vectorization win and the heap engine is faster (the BENCH_engine.json
#: scaling curve crosses between ~20 and ~50 apps depending on the machine;
#: 32 splits that band).  Dispatch is per *scenario*, so one campaign mixing
#: narrow and wide scenarios uses the right kernel for each — and because
#: both kernels are bit-identical, the threshold can move without changing
#: any result (store keys record the kernel actually dispatched, so moving
#: it recomputes only the cells whose kernel flipped).
AUTO_DISPATCH_MIN_APPS = 32


def _auto_simulate(
    scenario: Scenario,
    scheduler: SchedulerProtocol,
    config: SimulatorConfig | None = None,
    event_log=None,
) -> SimulationResult:
    """Width-dispatching kernel behind ``engine="auto"``.

    Module-level (picklable) so auto-engined grids parallelize exactly like
    concrete-engined ones.
    """
    if len(scenario.applications) < AUTO_DISPATCH_MIN_APPS:
        return simulate(scenario, scheduler, config, event_log)
    return batched_simulate(scenario, scheduler, config, event_log)


_ENGINE_RUNNERS = {
    "heap": simulate,
    "batched": batched_simulate,
    "auto": _auto_simulate,
}


def resolve_engine(engine: str | None) -> str:
    """Normalize an engine selector: ``None`` means the default engine."""
    if engine is None:
        return DEFAULT_ENGINE
    if engine not in _ENGINE_RUNNERS:
        raise ValidationError(
            f"unknown engine {engine!r}; choose one of {', '.join(ENGINES)}"
        )
    return engine


def dispatch_engine(engine: str | None, n_apps: int) -> str:
    """The concrete kernel that will simulate a scenario of ``n_apps``
    applications under ``engine`` — resolves ``"auto"`` by width, passes
    concrete selectors through."""
    resolved = resolve_engine(engine)
    if resolved == "auto":
        return "heap" if n_apps < AUTO_DISPATCH_MIN_APPS else "batched"
    return resolved


def engine_runner(engine: str | None):
    """The ``simulate``-compatible callable behind an engine selector.

    Harnesses that call the simulator directly (instead of through
    :func:`run_case`) use this to honor the same ``engine`` knob; the
    ``"auto"`` selector returns a wrapper that dispatches per scenario.
    """
    return _ENGINE_RUNNERS[resolve_engine(engine)]


#: Sentinel distinguishing "no shared payload" from a shared payload of None.
_NO_SHARED = object()

#: Without a shared payload, chunks this many times the worker count keep the
#: pool load-balanced while still amortizing per-task dispatch overhead.
_CHUNKS_PER_WORKER = 4

#: With a shared payload *and* progress streaming, the payload travels with
#: every chunk, so the chunk count is the payload-copy count: two per worker
#: bounds the serialization overhead at 2x the quiet-map minimum while still
#: draining progress in sub-grid bursts.  Payload copies stay O(workers) in
#: every mode — never O(cells).
_SHARED_CHUNKS_PER_WORKER = 2

#: Maps whose estimated total serial cost (``cost_hint * n_items``) falls
#: below this many seconds run inline even when a pool is configured: at
#: that size pool spawn + payload pickling dominate and the pooled "speedup"
#: measures pure overhead (the scale-1 regression of ``BENCH_grid.json``).
_SERIAL_FALLBACK_SECONDS = 0.25


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers=`` argument into a concrete process count.

    ``None`` and ``1`` mean serial execution (the default — identical to the
    pre-parallel behaviour); ``0`` means "one process per CPU"; any other
    positive integer is taken literally.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 0:
        raise ValidationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _run_plain_chunk(fn: Callable[[_T], _R], chunk: list[_T]) -> list[_R]:
    """Worker-side adapter: run one contiguous chunk of plain items."""
    return [fn(item) for item in chunk]


def _run_shared_chunk(
    fn: Callable[[object, _T], _R], shared: object, chunk: list[_T]
) -> list[_R]:
    """Worker-side adapter: run one chunk against a shared payload.

    ``shared`` travels with the chunk submission, so it is serialized once
    per chunk — and the executor sizes shared-payload dispatches at one
    chunk per worker (a few when per-cell progress streaming is requested),
    never once per cell.
    """
    return [fn(shared, item) for item in chunk]


def _submit_or_broken(
    pool: ProcessPoolExecutor, fn: Callable[..., list[_R]], *args: object
) -> "Future[list[_R]]":
    """Submit, turning a synchronous ``BrokenProcessPool`` into a failed future.

    A worker death races the submit loop: chunks queued after the death see
    the broken pool from ``submit`` itself rather than from their future.
    Funnelling both through the future keeps recovery in one place — the
    drain loop's per-chunk retry.
    """
    try:
        return pool.submit(fn, *args)
    except BrokenProcessPool as exc:
        failed: "Future[list[_R]]" = Future()
        failed.set_exception(exc)
        return failed


class MapCache:
    """Item-level memo table consulted by :meth:`ExperimentExecutor.map`.

    Subclasses bind a :class:`repro.store.ResultStore` to one family of
    items by implementing :meth:`key` (the content digest of everything that
    determines the item's result) plus the ``encode``/``decode`` pair that
    converts results to/from JSON payloads.  ``lookup`` returning ``None``
    means *miss* (map results are never ``None``).
    """

    def __init__(self, store: ResultStore):
        self._store = store

    def key(self, item: object) -> str:
        """Content-addressed key of one item (subclass responsibility)."""
        raise NotImplementedError

    def encode(self, result: object) -> dict:
        """JSON payload of one result (subclass responsibility)."""
        raise NotImplementedError

    def decode(self, payload: dict) -> object:
        """Inverse of :meth:`encode` (subclass responsibility)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def lookup(self, item: object) -> Optional[object]:
        """The cached result for ``item``, or ``None`` on miss/corruption."""
        key = self.key(item)
        payload = self._store.get(key)
        if payload is None:
            return None
        try:
            return self.decode(payload)
        except Exception:
            # A payload the current decoder cannot read (e.g. written by a
            # code state whose fingerprint collided — practically a format
            # bug) must degrade to a recompute, never crash a campaign.
            # Discard the poisoned entry like ResultStore.get does for
            # unparsable ones, so it cannot re-hit on every future run.
            self._store.stats.hits -= 1
            self._store.stats.misses += 1
            self._store.stats.corrupt += 1
            self._store.discard(key)
            _OBS.count("repro_store_decode_corrupt_total")
            return None

    def save(self, item: object, result: object) -> None:
        """Persist one freshly computed result."""
        self._store.put(self.key(item), self.encode(result))


@dataclass
class ExecutorStats:
    """Fault-recovery counters of one :class:`ExperimentExecutor`.

    ``worker_deaths`` counts pool breakages (a worker process died hard —
    OOM kill, ``os._exit``, segfault); ``cell_retries`` counts the cells
    resubmitted individually to a fresh pool after a breakage poisoned
    their chunk; ``inline_recoveries`` counts the cells that ultimately ran
    inline in the calling process because their retry broke the pool again
    (the poisoned cell itself, typically).  Purely observational — recovery
    never changes results, only where they compute.

    Like :class:`repro.store.StoreStats`, this is the per-executor *view*
    of events the process-wide telemetry registry also aggregates: the
    ``record_*`` methods bump the plain ints and mirror into the
    ``repro_executor_*`` counters when the recorder is enabled.
    """

    worker_deaths: int = 0
    cell_retries: int = 0
    inline_recoveries: int = 0

    def record_worker_death(self) -> None:
        self.worker_deaths += 1
        _OBS.count("repro_executor_worker_deaths_total")

    def record_cell_retry(self) -> None:
        self.cell_retries += 1
        _OBS.count("repro_executor_cell_retries_total")

    def record_inline_recovery(self) -> None:
        self.inline_recoveries += 1
        _OBS.count("repro_executor_inline_recoveries_total")

    def as_dict(self) -> dict:
        """Plain-dict view for status reports."""
        return {
            "worker_deaths": self.worker_deaths,
            "cell_retries": self.cell_retries,
            "inline_recoveries": self.inline_recoveries,
        }


class ExperimentExecutor:
    """Reusable worker pool behind ``map_parallel`` / ``run_grid``.

    Context manager; the underlying :class:`ProcessPoolExecutor` is spawned
    lazily on the first parallel map and reused by every subsequent call, so
    a campaign of many small grids pays the process start-up cost once.
    ``workers`` follows :func:`resolve_workers` (``None``/``1`` serial,
    ``0`` one per CPU); with one worker every map runs inline and no pool is
    ever spawned.

    Determinism: results are always collected in submission order, and the
    items are dispatched as contiguous chunks, so a map through an executor
    is element-for-element identical to the serial loop whatever the worker
    count (asserted by ``tests/test_experiment_executor.py``).
    """

    def __init__(self, workers: int | None = None):
        self._n_workers = resolve_workers(workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self.stats = ExecutorStats()

    @property
    def n_workers(self) -> int:
        """Resolved worker-process count (1 = serial inline execution)."""
        return self._n_workers

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ExperimentExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down (idempotent); further maps are an error."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise ValidationError("ExperimentExecutor is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._n_workers)
        return self._pool

    # ------------------------------------------------------------------ #
    def map(
        self,
        fn: Callable[..., _R],
        items: Sequence[_T],
        *,
        progress: Optional[Callable[[int, _T, _R], None]] = None,
        shared: object = _NO_SHARED,
        cache: Optional[MapCache] = None,
        cost_hint: Optional[float] = None,
    ) -> list[_R]:
        """Map ``fn`` over ``items`` on the (shared) pool.

        Without ``shared``, ``fn(item)`` is called per item.  With
        ``shared``, ``fn(shared, item)`` is called instead and the payload
        travels with the chunk submissions instead of with every cell — the
        idiom for grids whose cells reference the same large immutable
        platform/workload state.  A quiet shared map uses exactly one chunk
        per worker (payload serialized once per worker); when ``progress``
        is given, two chunks per worker are used instead, trading one extra
        payload copy per worker for streaming granularity and load
        balancing.  Either way the payload-copy count is O(workers), never
        O(cells).  The flip side of static contiguous chunks is skew: a
        quiet map whose expensive cells cluster in one chunk leaves the
        other workers idle at the tail — pass ``progress`` (finer chunks)
        or skip ``shared`` (pure load-balanced dispatch) for strongly
        heterogeneous cell costs.

        ``progress(index, item, result)`` fires in the caller's process in
        submission order as results drain — one call per item, delivered as
        each chunk completes.

        ``cache`` (a :class:`MapCache`) short-circuits items whose results
        are already in the result store: hits are served without dispatching
        anything (their ``progress`` fires first, in submission order), the
        remaining misses run through the pool exactly as above, and each
        miss is written back to the store *as it drains* — so an interrupted
        map resumes from every cell that already landed.  The returned list
        is always in submission order, element-for-element identical to an
        uncached map.

        ``cost_hint`` is the caller's estimate of one item's serial cost in
        seconds; when ``cost_hint * len(items)`` falls below
        :data:`_SERIAL_FALLBACK_SECONDS` the map runs inline even with a
        pool configured — dispatch overhead would dominate such maps.  The
        fallback never changes results (pooled and serial maps are
        element-for-element identical by contract), only where they compute.

        Worker death (e.g. the OOM killer, a hard ``os._exit``) surfaces as
        :class:`BrokenProcessPool` on every in-flight chunk.  The map does
        not die with the pool: the broken pool is discarded and every cell
        of an affected chunk is retried *individually* on a fresh pool, so
        one poisoned cell costs one retry round, not a serial rerun of its
        whole chunk — only a cell whose own retry breaks the pool again
        falls back to running inline in the calling process.  Every cell
        still lands (cache write-back rides the normal drain path) and the
        recovery is counted in :attr:`stats`.  Real exceptions raised by
        ``fn`` propagate unchanged.
        """
        if self._closed:
            raise ValidationError("ExperimentExecutor is closed")
        items = list(items)
        if cache is not None:
            results_by_index: list[Optional[_R]] = [
                cache.lookup(item) for item in items
            ]
            miss_indexes = [
                i for i, result in enumerate(results_by_index) if result is None
            ]
            if _OBS.enabled:
                _OBS.count(
                    "repro_executor_cache_hits_total",
                    len(items) - len(miss_indexes),
                )
                _OBS.count("repro_executor_cache_misses_total", len(miss_indexes))
            if progress is not None:
                for i, result in enumerate(results_by_index):
                    if result is not None:
                        progress(i, items[i], result)

            def on_miss(position: int, item: _T, result: _R) -> None:
                index = miss_indexes[position]
                cache.save(item, result)
                results_by_index[index] = result
                if progress is not None:
                    progress(index, item, result)

            # Write-back rides the progress hook so it happens incrementally
            # as chunks drain, not after the whole map joins.
            self.map(
                fn,
                [items[i] for i in miss_indexes],
                progress=on_miss,
                shared=shared,
                cost_hint=cost_hint,
            )
            return results_by_index  # type: ignore[return-value]
        has_shared = shared is not _NO_SHARED
        n = len(items)
        run_serial = self._n_workers <= 1 or n <= 1
        if (
            not run_serial
            and cost_hint is not None
            and cost_hint * n < _SERIAL_FALLBACK_SECONDS
        ):
            run_serial = True
        if run_serial:
            results: list[_R] = []
            for index, item in enumerate(items):
                result = fn(shared, item) if has_shared else fn(item)
                if progress is not None:
                    progress(index, item, result)
                results.append(result)
            return results

        # Chunked dispatch.  Chunks are contiguous, so flattening the chunk
        # results in submission order reproduces the serial output order.
        if has_shared:
            per_worker = 1 if progress is None else _SHARED_CHUNKS_PER_WORKER
            n_chunks = min(self._n_workers * per_worker, n)
        else:
            n_chunks = min(self._n_workers * _CHUNKS_PER_WORKER, n)
        _OBS.count("repro_executor_chunks_total", n_chunks)
        _OBS.count("repro_executor_dispatched_items_total", n)
        base, extra = divmod(n, n_chunks)
        pool = self._ensure_pool()
        futures = []
        start = 0
        for i in range(n_chunks):
            stop = start + base + (1 if i < extra else 0)
            chunk = items[start:stop]
            if has_shared:
                futures.append(
                    (
                        start,
                        chunk,
                        _submit_or_broken(pool, _run_shared_chunk, fn, shared, chunk),
                    )
                )
            else:
                futures.append(
                    (start, chunk, _submit_or_broken(pool, _run_plain_chunk, fn, chunk))
                )
            start = stop

        results = []
        with _OBS.span(
            "executor.map", category="executor", items=n, chunks=n_chunks
        ):
            for chunk_start, chunk, future in futures:
                try:
                    chunk_results = future.result()
                except BrokenProcessPool:
                    # A worker died mid-chunk (killed, crashed, os._exit):
                    # the pool is unusable and every other in-flight future
                    # will raise the same error.  Drop the pool — counting
                    # the death only when this future's pool is still the
                    # live one, so the sibling chunks poisoned by the same
                    # death don't recount it or tear down the replacement
                    # pool — then retry the chunk's cells individually on a
                    # fresh pool.
                    if self._pool is pool:
                        self.stats.record_worker_death()
                        self._pool.shutdown(wait=False)
                        self._pool = None
                    chunk_results = self._recover_chunk(
                        fn, chunk, has_shared, shared
                    )
                for offset, result in enumerate(chunk_results):
                    if progress is not None:
                        index = chunk_start + offset
                        progress(index, items[index], result)
                    results.append(result)
        return results

    def _recover_chunk(
        self,
        fn: Callable[..., _R],
        chunk: list[_T],
        has_shared: bool,
        shared: object,
    ) -> list[_R]:
        """Per-cell recovery of one chunk poisoned by a worker death.

        The cells are resubmitted as single-cell tasks on a fresh pool, so
        the innocent cells of the chunk stay parallel; a cell whose retry
        breaks the pool *again* (a reliably crashing "poisoned" cell) runs
        inline in the calling process, and the cells queued behind it move
        to yet another fresh pool.  Results are returned in chunk order —
        identical to what the original chunk would have produced.
        """
        results: list[_R] = []
        pending = list(chunk)
        while pending:
            if self._n_workers <= 1 or len(pending) == 1:
                for item in pending:
                    self.stats.record_inline_recovery()
                    results.append(
                        fn(shared, item) if has_shared else fn(item)
                    )
                return results
            pool = self._ensure_pool()
            futures = []
            for item in pending:
                self.stats.record_cell_retry()
                if has_shared:
                    futures.append(
                        _submit_or_broken(pool, _run_shared_chunk, fn, shared, [item])
                    )
                else:
                    futures.append(
                        _submit_or_broken(pool, _run_plain_chunk, fn, [item])
                    )
            advanced = 0
            for item, future in zip(pending, futures):
                try:
                    results.append(future.result()[0])
                    advanced += 1
                except BrokenProcessPool:
                    # This cell's own retry killed a worker: run it inline
                    # (a real exception from fn propagates from here), then
                    # resubmit whatever was queued behind it.
                    if self._pool is pool:
                        self.stats.record_worker_death()
                        self._pool.shutdown(wait=False)
                        self._pool = None
                    self.stats.record_inline_recovery()
                    results.append(
                        fn(shared, item) if has_shared else fn(item)
                    )
                    advanced += 1
                    break
            pending = pending[advanced:]
        return results


def map_parallel(
    fn: Callable[..., _R],
    items: Sequence[_T],
    *,
    workers: int | None = None,
    progress: Optional[Callable[[int, _T, _R], None]] = None,
    executor: Optional[ExperimentExecutor] = None,
    shared: object = _NO_SHARED,
    cache: Optional[MapCache] = None,
    cost_hint: Optional[float] = None,
) -> list[_R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Results come back in input order regardless of completion order, so
    callers observe exactly the serial semantics.  ``fn`` and the items must
    be picklable (module-level function, plain-data arguments) when more
    than one process is involved.

    ``executor`` reuses a caller-owned :class:`ExperimentExecutor` (its
    worker count wins; ``workers`` is ignored) instead of spawning and
    tearing down a pool for this one call.  ``shared`` switches to the
    shared-payload calling convention ``fn(shared, item)`` — see
    :meth:`ExperimentExecutor.map`.  ``cache`` memoizes items through the
    result store (see :class:`MapCache`).

    ``progress(index, item, result)`` is invoked in the caller's process,
    once per item in submission order — in parallel runs results drain as
    each dispatched chunk completes, so long maps report in chunk-sized
    bursts instead of staying silent until the pool joins.
    """
    if executor is not None:
        return executor.map(fn, items, progress=progress, shared=shared,
                            cache=cache, cost_hint=cost_hint)
    # Ephemeral pool for this one call: never spawn more workers than there
    # are items (a persistent executor keeps its full size because later
    # maps may be larger).
    items = list(items)
    n_workers = max(1, min(resolve_workers(workers), len(items)))
    with ExperimentExecutor(n_workers) as pool:
        return pool.map(fn, items, progress=progress, shared=shared,
                        cache=cache, cost_hint=cost_hint)


@dataclass(frozen=True)
class SchedulerCase:
    """One scheduler column of an experiment.

    Attributes
    ----------
    name:
        Scheduler name understood by
        :func:`repro.online.registry.make_scheduler` (also the display name).
    use_burst_buffer:
        Run the scenario on its platform's burst-buffer configuration.  The
        scenario's platform must carry a burst-buffer spec (the runner swaps
        in ``burst_buffer_platform`` when provided).
    burst_buffer_platform:
        Optional platform override supplying the burst-buffer spec (e.g.
        ``core.intrepid(with_burst_buffer=True)``).
    label:
        Display label; defaults to ``name`` plus a ``+BB`` suffix when the
        burst buffer is enabled.
    """

    name: str
    use_burst_buffer: bool = False
    burst_buffer_platform: Optional[Platform] = None
    label: Optional[str] = None

    @property
    def display(self) -> str:
        """Label shown in tables."""
        if self.label is not None:
            return self.label
        return f"{self.name}+BB" if self.use_burst_buffer else self.name

    def build_scheduler(self) -> SchedulerProtocol:
        """Fresh scheduler instance for one run."""
        return make_scheduler(self.name)


@dataclass(frozen=True)
class CaseResult:
    """Objectives of one (scenario, scheduler) cell.

    ``makespan`` is in seconds of simulated time; ``n_events`` counts the
    discrete events the engine processed (each one triggers a scheduler
    reallocation).
    """

    scenario_label: str
    scheduler_label: str
    summary: ObjectiveSummary
    makespan: float
    n_events: int
    #: Resilience metrics when the scenario carried a fault model
    #: (``None`` for healthy cells, which keeps their payloads byte-stable).
    faults: Optional[FaultStats] = None

    @property
    def system_efficiency(self) -> float:
        """SysEfficiency as a percentage (0–100, the paper's convention)."""
        return self.summary.system_efficiency

    @property
    def dilation(self) -> float:
        """Worst per-application slowdown (ratio >= 1; 1 = no slowdown)."""
        return self.summary.dilation

    @property
    def upper_limit(self) -> float:
        """Upper limit of SysEfficiency as a percentage (congestion-free bound)."""
        return self.summary.upper_limit


@dataclass
class ExperimentGrid:
    """All cells of a (scenarios × schedulers) experiment."""

    cases: list[CaseResult] = field(default_factory=list)

    def add(self, result: CaseResult) -> None:
        """Append one cell (cells keep submission order)."""
        self.cases.append(result)

    # ------------------------------------------------------------------ #
    def schedulers(self) -> list[str]:
        """Scheduler labels in first-appearance order."""
        seen: list[str] = []
        for case in self.cases:
            if case.scheduler_label not in seen:
                seen.append(case.scheduler_label)
        return seen

    def scenarios(self) -> list[str]:
        """Scenario labels in first-appearance order."""
        seen: list[str] = []
        for case in self.cases:
            if case.scenario_label not in seen:
                seen.append(case.scenario_label)
        return seen

    def cell(self, scenario_label: str, scheduler_label: str) -> CaseResult:
        """The cell for one scenario and scheduler."""
        for case in self.cases:
            if (
                case.scenario_label == scenario_label
                and case.scheduler_label == scheduler_label
            ):
                return case
        raise KeyError(f"no cell for ({scenario_label!r}, {scheduler_label!r})")

    def series(self, scheduler_label: str, metric: str) -> list[float]:
        """Per-scenario series of one metric for one scheduler.

        ``metric`` is ``"system_efficiency"``, ``"dilation"`` or
        ``"upper_limit"``.
        """
        order = self.scenarios()
        values = {c.scenario_label: getattr(c, metric) for c in self.cases
                  if c.scheduler_label == scheduler_label}
        missing = [s for s in order if s not in values]
        if missing:
            raise KeyError(f"scheduler {scheduler_label!r} missing scenarios {missing}")
        return [values[s] for s in order]

    def mean(self, scheduler_label: str, metric: str) -> float:
        """Average of one metric over all scenarios for one scheduler."""
        return float(np.mean(self.series(scheduler_label, metric)))

    def averages(self) -> dict[str, dict[str, float]]:
        """``{scheduler: {metric: mean}}`` over all scenarios."""
        out: dict[str, dict[str, float]] = {}
        for scheduler in self.schedulers():
            out[scheduler] = {
                metric: self.mean(scheduler, metric)
                for metric in ("system_efficiency", "dilation", "upper_limit")
            }
        return out


# ---------------------------------------------------------------------- #
def run_case(
    scenario: Scenario,
    case: SchedulerCase,
    *,
    max_time: float = float("inf"),
    return_result: bool = False,
    engine: str | None = None,
) -> CaseResult | tuple[CaseResult, SimulationResult]:
    """Run one scenario under one scheduler case.

    ``engine`` selects the simulation kernel (``"heap"``, ``"batched"`` or
    the width-dispatching ``"auto"``, default :data:`DEFAULT_ENGINE`); every
    selector produces bit-identical results.
    """
    run_simulation = _ENGINE_RUNNERS[resolve_engine(engine)]
    run_scenario = scenario
    if case.use_burst_buffer:
        platform = case.burst_buffer_platform or scenario.platform
        if platform.burst_buffer is None:
            raise ValidationError(
                f"case {case.display!r} requires a burst buffer but platform "
                f"{platform.name!r} does not define one"
            )
        run_scenario = scenario.with_platform(platform)
    config = SimulatorConfig(use_burst_buffer=case.use_burst_buffer, max_time=max_time)
    if not _OBS.enabled:
        result = run_simulation(run_scenario, case.build_scheduler(), config)
    else:
        dispatched = dispatch_engine(engine, len(run_scenario.applications))
        with _OBS.span(
            "cell",
            category="cell",
            observe="repro_cell_seconds",
            scenario=scenario.label,
            scheduler=case.display,
            engine=dispatched,
        ):
            result = run_simulation(run_scenario, case.build_scheduler(), config)
        _OBS.count("repro_cells_total", engine=dispatched)
        _OBS.count(
            "repro_cell_events_total", float(result.n_events), engine=dispatched
        )
    case_result = CaseResult(
        scenario_label=scenario.label,
        scheduler_label=case.display,
        summary=result.summary(),
        makespan=result.makespan,
        n_events=result.n_events,
        faults=result.fault_stats,
    )
    if return_result:
        return case_result, result
    return case_result


def encode_case_result(result: CaseResult) -> dict:
    """JSON payload of one grid cell (inverse of :func:`decode_case_result`).

    Values survive a JSON round trip bit-for-bit (floats re-serialize to the
    same shortest ``repr``), so a cell served from the result store yields a
    byte-identical artefact.
    """
    payload = {
        "scenario_label": result.scenario_label,
        "scheduler_label": result.scheduler_label,
        "summary": result.summary.as_dict(),
        "makespan": result.makespan,
        "n_events": result.n_events,
    }
    if result.faults is not None:
        # Key present only for faulted cells: healthy payloads (and their
        # stored bytes) are unchanged by the fault subsystem's existence.
        payload["faults"] = result.faults.as_dict()
    return payload


def decode_case_result(payload: dict) -> CaseResult:
    """Rebuild a :class:`CaseResult` from its stored payload."""
    faults = payload.get("faults")
    return CaseResult(
        scenario_label=payload["scenario_label"],
        scheduler_label=payload["scheduler_label"],
        summary=ObjectiveSummary.from_dict(payload["summary"]),
        makespan=payload["makespan"],
        n_events=int(payload["n_events"]),
        faults=FaultStats.from_dict(faults) if faults is not None else None,
    )


def grid_cell_keys(
    scenarios: Sequence[Scenario],
    cases: Sequence[SchedulerCase],
    *,
    max_time: float = float("inf"),
    engine: str | None = None,
) -> list[list[str]]:
    """Content-addressed store key of every ``(scenario, case)`` grid cell.

    ``result[i][j]`` keys the cell of ``scenarios[i]`` under ``cases[j]``.
    Keys are *per-cell*, not per-grid: each digests its own canonical
    scenario and scheduler case (plus the horizon and the producing-code
    fingerprint), so adding a scenario to a campaign, reordering the axes,
    or sharing cells across different specs all hit whatever overlaps.
    This is the single key derivation behind every consumer — the in-run
    memo table of :func:`run_grid` and the sharded campaign coordinator of
    :mod:`repro.campaign` — which is what makes stores written by campaign
    workers on other hosts serve a local serial rerun with 100% hits.

    The engine lands in the key prefix: all engines are pinned
    bit-identical, but a stored cell should stay honest about the kernel
    that produced it, so an engine switch recomputes rather than silently
    re-labelling old results.  The "auto" selector is resolved per scenario
    *before* keying — an auto cell stores under the kernel that actually
    ran it, so auto campaigns share cells with explicit heap/batched
    campaigns of the same width.
    """
    engine = resolve_engine(engine)
    fingerprint = code_fingerprint()
    prefixes = [
        digest(
            "grid-cell",
            fingerprint,
            max_time,
            dispatch_engine(engine, len(scenario.applications)),
        )
        for scenario in scenarios
    ]
    scenario_texts = [canonical_json(s) for s in scenarios]
    case_texts = [canonical_json(c) for c in cases]
    return [
        [digest(prefixes[i], s_text, c_text) for c_text in case_texts]
        for i, s_text in enumerate(scenario_texts)
    ]


class _GridCellCache(MapCache):
    """Memo table for :func:`run_grid` cells (keys: :func:`grid_cell_keys`)."""

    def __init__(
        self,
        store: ResultStore,
        scenarios: Sequence[Scenario],
        cases: Sequence[SchedulerCase],
        max_time: float,
        engine: str,
    ):
        super().__init__(store)
        self._keys = grid_cell_keys(
            scenarios, cases, max_time=max_time, engine=engine
        )

    def key(self, item: tuple[int, int]) -> str:
        i, j = item
        return self._keys[i][j]

    def encode(self, result: CaseResult) -> dict:
        return encode_case_result(result)

    def decode(self, payload: dict) -> CaseResult:
        return decode_case_result(payload)


def _run_grid_cell_shared(
    shared: tuple[tuple[Scenario, ...], tuple[SchedulerCase, ...], float, str],
    cell: tuple[int, int],
) -> CaseResult:
    """Shared-payload grid cell: the axes travel once per worker, not per cell."""
    scenarios, cases, max_time, engine = shared
    i, j = cell
    return run_case(scenarios[i], cases[j], max_time=max_time, engine=engine)


#: Rough per-event simulation cost backing the grid's serial-fallback hint.
#: Deliberately coarse — it only needs to separate millisecond grids (where
#: pool dispatch dominates) from second-plus grids (where workers pay off).
_EVENT_COST_SECONDS = 2e-6


def estimate_cell_seconds(scenario: Scenario) -> float:
    """Estimated serial seconds of one grid cell over ``scenario``.

    Event count scales with the total instance count and per-event work
    scales with the number of concurrent applications, so a cell costs
    roughly ``n_apps * n_instances`` event-units.  Deliberately coarse — it
    backs the executor's serial-fallback hint and the campaign
    coordinator's per-cell timeout watchdog, both of which only need the
    right order of magnitude.
    """
    return _EVENT_COST_SECONDS * len(scenario.applications) * sum(
        len(a.instances) for a in scenario.applications
    )


def _grid_cost_hint(scenarios: Sequence[Scenario]) -> float:
    """Estimated serial seconds of one *average* grid cell."""
    if not scenarios:
        return 0.0
    per_cell = [estimate_cell_seconds(s) for s in scenarios]
    return sum(per_cell) / len(per_cell)


def run_grid(
    scenarios: Sequence[Scenario],
    cases: Sequence[SchedulerCase],
    *,
    max_time: float = float("inf"),
    workers: int | None = None,
    progress: Optional[Callable[[str], None]] = None,
    executor: Optional[ExperimentExecutor] = None,
    store: Optional[ResultStore] = None,
    engine: str | None = None,
) -> ExperimentGrid:
    """Run every scenario under every scheduler case.

    Parameters
    ----------
    scenarios, cases:
        The grid axes; every (scenario, case) pair becomes one cell.
    max_time:
        Simulation horizon passed to every cell.
    workers:
        Number of worker processes (see :func:`resolve_workers`; ``None`` or
        ``1`` runs serially, ``0`` uses every CPU).  Cells are independent
        and deterministic — scenario randomness is fixed when the scenarios
        are built — and results are collected in submission order, so the
        grid is identical whatever the worker count.
    progress:
        Optional callback receiving one human-readable line per completed
        cell (``cell 3/9: mixA x MaxSysEff ...``), so long campaigns stream
        status instead of staying silent until the grid finishes (parallel
        runs deliver the lines in chunk-sized bursts, in submission order).
        Called in the driving process only; it does not affect results.
    executor:
        Reuse a caller-owned :class:`ExperimentExecutor` (``workers`` is
        then ignored) so consecutive grids share one pool.  Either way the
        grid axes are shipped to the workers as a per-chunk shared payload
        (once per worker, a few times with progress streaming); the
        per-cell messages are just index pairs.
    store:
        Optional :class:`repro.store.ResultStore`: cells whose keys are
        already stored are served without simulating anything, and fresh
        cells are written back as they complete.  Cached grids are
        cell-for-cell identical to cold ones (the key covers the canonical
        scenario, case, horizon, engine and producing-code fingerprint).
    engine:
        Simulation kernel for every cell (``"heap"``, ``"batched"`` or
        ``"auto"``, which picks per scenario by application count;
        ``None`` uses :data:`DEFAULT_ENGINE`).  Every selector is pinned
        bit-identical, so this is purely a speed knob.
    """
    if not scenarios:
        raise ValidationError("run_grid needs at least one scenario")
    if not cases:
        raise ValidationError("run_grid needs at least one scheduler case")
    engine = resolve_engine(engine)
    shared = (tuple(scenarios), tuple(cases), max_time, engine)
    cells = [
        (i, j) for i in range(len(scenarios)) for j in range(len(cases))
    ]
    cache = None
    if store is not None:
        cache = _GridCellCache(store, shared[0], shared[1], max_time, engine)

    on_cell = None
    if progress is not None:
        n_cells = len(cells)

        def on_cell(index: int, cell, result: CaseResult) -> None:
            from repro.experiments.reporting import percent, ratio

            progress(
                f"cell {index + 1}/{n_cells}: {result.scenario_label} x "
                f"{result.scheduler_label} — SysEff "
                f"{percent(result.system_efficiency)}%, dilation "
                f"{ratio(result.dilation)}"
            )

    grid = ExperimentGrid()
    with _OBS.span(
        "run_grid",
        category="grid",
        scenarios=len(scenarios),
        cases=len(cases),
        engine=engine,
    ):
        for result in map_parallel(
            _run_grid_cell_shared,
            cells,
            workers=workers,
            progress=on_cell,
            executor=executor,
            shared=shared,
            cache=cache,
            cost_hint=_grid_cost_hint(scenarios),
        ):
            _OBS.count("repro_grid_cells_total")
            grid.add(result)
    return grid

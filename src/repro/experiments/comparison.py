"""Heuristic-comparison experiments: Figure 6 and Tables 1–2 / Figures 8–13.

Two experiment shapes:

* :func:`figure6_experiment` — generate many random application mixes of a
  given shape (10 large apps, or 50 small + 5 large) and report the mean
  SysEfficiency and Dilation of every heuristic, as in Figure 6.
* :func:`congested_moments_experiment` — replay the Intrepid / Mira
  congested-moment series under the heuristics, the machine's native
  scheduler (with burst buffers) and record the upper limit, producing both
  the per-moment series of Figures 8–13 and the averages of Tables 1–2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal, Optional, Sequence

import numpy as np

from repro.core.platform import Platform, intrepid, mira
from repro.experiments.runner import (
    ExperimentExecutor,
    ExperimentGrid,
    SchedulerCase,
    run_grid,
)
from repro.store import ResultStore
from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import ValidationError
from repro.workload.congested import (
    intrepid_congested_moments,
    mira_congested_moments,
)
from repro.workload.generator import figure6_mix

__all__ = [
    "HeuristicAverages",
    "Figure6Result",
    "figure6_experiment",
    "FIGURE6_SCENARIOS",
    "CongestedMomentsResult",
    "congested_moments_experiment",
    "TABLE_SCHEDULERS",
]

#: The three panels of Figure 6.
FIGURE6_SCENARIOS: tuple[str, ...] = (
    "10large-20",
    "50small5large-20",
    "50small5large-35",
)

#: The eight series of Figure 6 (four heuristics, plain and Priority).
FIGURE6_SCHEDULERS: tuple[str, ...] = (
    "RoundRobin",
    "Priority-RoundRobin",
    "MinDilation",
    "Priority-MinDilation",
    "MaxSysEff",
    "Priority-MaxSysEff",
    "MinMax-0.5",
    "Priority-MinMax-0.5",
)

#: The scheduler rows of Tables 1 and 2 (plus their Priority variants).
TABLE_SCHEDULERS: tuple[str, ...] = (
    "MaxSysEff",
    "Priority-MaxSysEff",
    "MinMax-0.25",
    "Priority-MinMax-0.25",
    "MinMax-0.5",
    "Priority-MinMax-0.5",
    "MinMax-0.75",
    "Priority-MinMax-0.75",
    "MinDilation",
    "Priority-MinDilation",
)


@dataclass(frozen=True)
class HeuristicAverages:
    """Mean objectives of one scheduler over a set of scenarios."""

    scheduler: str
    system_efficiency: float
    dilation: float
    upper_limit: float


@dataclass
class Figure6Result:
    """Mean objectives per heuristic for one Figure 6 panel."""

    scenario: str
    n_repetitions: int
    averages: dict[str, HeuristicAverages] = field(default_factory=dict)

    def ranked_by_system_efficiency(self) -> list[HeuristicAverages]:
        """Heuristics from best to worst SysEfficiency."""
        return sorted(self.averages.values(), key=lambda a: -a.system_efficiency)

    def ranked_by_dilation(self) -> list[HeuristicAverages]:
        """Heuristics from best (lowest) to worst Dilation."""
        return sorted(self.averages.values(), key=lambda a: a.dilation)


def figure6_experiment(
    scenario: str,
    *,
    n_repetitions: int = 20,
    schedulers: Sequence[str] = FIGURE6_SCHEDULERS,
    platform: Optional[Platform] = None,
    rng: RngLike = None,
    workers: int | None = None,
    max_time: float = float("inf"),
    progress: Optional[Callable[[str], None]] = None,
    executor: Optional[ExperimentExecutor] = None,
    store: Optional[ResultStore] = None,
    engine: Optional[str] = None,
) -> Figure6Result:
    """Reproduce one panel of Figure 6.

    The paper averages 200 random mixes per panel; ``n_repetitions`` defaults
    to a laptop-friendly 20, which is already enough for stable orderings
    (the benchmark harness exposes the full setting).

    ``workers`` fans the (mix × heuristic) grid out over processes (see
    :func:`repro.experiments.runner.run_grid`); every repetition's mix is
    generated from its own spawned seed *before* the grid runs, so results
    are identical whatever the worker count.  ``max_time`` truncates every
    cell at a simulated-time horizon (seconds); the default runs every mix
    to completion.  ``executor`` reuses a caller-owned pool (multi-panel
    campaigns pass one executor to every panel).  ``store`` memoizes the
    grid cells through the content-addressed result store (see
    :func:`repro.experiments.runner.run_grid`).  ``engine`` selects the
    simulation kernel per cell (``"heap"`` or ``"batched"``; ``None`` uses
    the default engine) — both are bit-identical, so it only affects speed.
    """
    if scenario not in FIGURE6_SCENARIOS:
        raise ValidationError(
            f"unknown Figure 6 scenario {scenario!r}; choose one of {FIGURE6_SCENARIOS}"
        )
    if n_repetitions <= 0:
        raise ValidationError("n_repetitions must be positive")
    platform = platform or intrepid()
    rngs = spawn_rngs(rng, n_repetitions)
    scenarios = [
        figure6_mix(scenario, platform, rep_rng, label=f"{scenario}-rep{i:03d}")
        for i, rep_rng in enumerate(rngs)
    ]
    cases = [SchedulerCase(name=name) for name in schedulers]
    grid = run_grid(scenarios, cases, max_time=max_time, workers=workers,
                    progress=progress, executor=executor, store=store,
                    engine=engine)
    result = Figure6Result(scenario=scenario, n_repetitions=n_repetitions)
    for scheduler, metrics in grid.averages().items():
        result.averages[scheduler] = HeuristicAverages(
            scheduler=scheduler,
            system_efficiency=metrics["system_efficiency"],
            dilation=metrics["dilation"],
            upper_limit=metrics["upper_limit"],
        )
    return result


# ---------------------------------------------------------------------- #
@dataclass
class CongestedMomentsResult:
    """Per-moment series and averages for a congested-moment campaign."""

    machine: str
    grid: ExperimentGrid
    baseline_label: str

    def series(self, scheduler_label: str, metric: str) -> list[float]:
        """Per-moment series (Figures 8–13)."""
        return self.grid.series(scheduler_label, metric)

    def upper_limit_series(self) -> list[float]:
        """The per-moment upper limit (identical for every scheduler)."""
        return self.grid.series(self.baseline_label, "upper_limit")

    def table(self) -> dict[str, HeuristicAverages]:
        """The Table 1 / Table 2 averages."""
        out: dict[str, HeuristicAverages] = {}
        for scheduler, metrics in self.grid.averages().items():
            out[scheduler] = HeuristicAverages(
                scheduler=scheduler,
                system_efficiency=metrics["system_efficiency"],
                dilation=metrics["dilation"],
                upper_limit=metrics["upper_limit"],
            )
        return out

    def mean_upper_limit(self) -> float:
        """Average upper limit over the moments (the tables' last row)."""
        return float(np.mean(self.upper_limit_series()))


def congested_moments_experiment(
    machine: Literal["intrepid", "mira"] = "intrepid",
    *,
    n_moments: Optional[int] = None,
    schedulers: Sequence[str] = TABLE_SCHEDULERS,
    rng: RngLike = None,
    priority_only: bool = False,
    workers: int | None = None,
    max_time: float = float("inf"),
    progress: Optional[Callable[[str], None]] = None,
    executor: Optional[ExperimentExecutor] = None,
    store: Optional[ResultStore] = None,
    engine: Optional[str] = None,
) -> CongestedMomentsResult:
    """Reproduce the congested-moment campaigns (Tables 1–2, Figures 8–13).

    The native machine scheduler is always included, run **with** burst
    buffers on the machine's burst-buffer platform — this is the key
    comparison of the paper: the heuristics run without burst buffers and
    still match or beat it.

    ``workers`` parallelizes the (moment × scheduler) grid; the moments are
    generated up front from the seed, so the tables are identical whatever
    the worker count.  ``max_time`` truncates every cell at a simulated-time
    horizon (seconds).  ``executor`` reuses a caller-owned pool.
    """
    if machine == "intrepid":
        moments = intrepid_congested_moments(n_moments or 56, rng)
        bb_platform = intrepid(with_burst_buffer=True)
        baseline = "Intrepid"
    elif machine == "mira":
        moments = mira_congested_moments(n_moments or 11, rng)
        bb_platform = mira(with_burst_buffer=True)
        baseline = "Mira"
    else:
        raise ValidationError(f"unknown machine {machine!r}")
    chosen = [s for s in schedulers if not priority_only or s.startswith("Priority-")]
    cases = [SchedulerCase(name=name) for name in chosen]
    cases.append(
        SchedulerCase(
            name=baseline,
            use_burst_buffer=True,
            burst_buffer_platform=bb_platform,
            label=baseline,
        )
    )
    grid = run_grid(moments, cases, max_time=max_time, workers=workers,
                    progress=progress, executor=executor, store=store,
                    engine=engine)
    return CongestedMomentsResult(machine=machine, grid=grid, baseline_label=baseline)

"""Engine-scaling microbenchmark: events/sec of the simulator hot path.

The paper's campaigns replay thousands of (scenario × scheduler) cells, so
the events-per-second throughput of the discrete-event engine bounds every
experiment in this repository.  This module builds synthetic congested
scenarios of controlled size, times the batched numpy engine
(:mod:`repro.simulator.batched`) and the event-heap engine
(:mod:`repro.simulator.engine`) against the preserved seed engine
(:mod:`repro.simulator.reference`) on identical windows, and emits a
machine-readable payload (``BENCH_engine.json``) that future PRs diff to
track the performance trajectory.

Two entry points consume it:

* ``benchmarks/bench_engine_scaling.py`` — the pytest-benchmark harness;
* ``benchmarks/run_bench.py`` — a one-command CLI suitable for a CI perf job.

Methodology
-----------
Each cell simulates the *same* scenario under the *same* scheduler with every
engine, truncated at the same ``max_time`` horizon (chosen so a cell stays
benchmark-sized even at 500 applications × 100 instances — a full run of the
largest cell takes minutes on the seed engine, which is exactly the problem
the optimized engines address).  All engines traverse the identical event
timeline —
the suite asserts equal event counts and makespans, piggybacking a coarse
equivalence check onto every benchmark run — so events/sec ratios compare
like with like.
"""

from __future__ import annotations

import platform as _platform
import time
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.core.application import Application
from repro.core.platform import Platform
from repro.core.scenario import Scenario
from repro.online.registry import make_scheduler
from repro.simulator.batched import batched_simulate
from repro.simulator.engine import SimulatorConfig, simulate
from repro.simulator.metrics import SimulationResult
from repro.simulator.reference import reference_simulate
from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "DEFAULT_GRID",
    "scaling_scenario",
    "cell_horizon",
    "measure_cell",
    "run_scaling_suite",
    "run_bench_cli",
    "write_bench_json",
]

#: The (n_apps, n_instances) cells of the scaling grid.  500 × 100 is the
#: headline cell: large enough that the seed engine's O(n_apps × n_instances)
#: per-event cost dominates, small enough to stay benchmark-sized.
DEFAULT_GRID: tuple[tuple[int, int], ...] = (
    (10, 10),
    (10, 100),
    (100, 10),
    (100, 100),
    (500, 10),
    (500, 100),
)

#: Scenario shape knobs: every application owns this many processors, and the
#: back-end is sized so the aggregate demand oversubscribes it 3× — sustained
#: congestion, the regime the paper's heuristics (and the engine) live in.
_PROCS_PER_APP = 8
_OVERSUBSCRIPTION = 3.0


def scaling_scenario(
    n_apps: int,
    n_instances: int,
    *,
    seed: int = 2015,
) -> Scenario:
    """A congested synthetic scenario with ``n_apps × n_instances`` shape.

    Applications are periodic (the paper's dominant pattern) with randomized
    work lengths, I/O volumes around 50 s of dedicated transfer time, and
    staggered releases, so the engine sees a realistic mix of release,
    compute-completion and I/O events under steady 3× back-end congestion.
    Deterministic in ``seed``.
    """
    check_positive("n_apps", n_apps)
    check_positive("n_instances", n_instances)
    rng = np.random.default_rng(seed)
    node_bw = 1e6
    system_bw = n_apps * _PROCS_PER_APP * node_bw / _OVERSUBSCRIPTION
    plat = Platform(
        name=f"bench-{n_apps}x{n_instances}",
        total_processors=n_apps * _PROCS_PER_APP,
        node_bandwidth=node_bw,
        system_bandwidth=system_bw,
    )
    peak = _PROCS_PER_APP * node_bw
    apps = tuple(
        Application.periodic(
            name=f"app-{i:04d}",
            processors=_PROCS_PER_APP,
            work=float(rng.uniform(30.0, 90.0)),
            io_volume=float(rng.uniform(0.5, 1.5)) * 50.0 * peak,
            n_instances=n_instances,
            release_time=float(rng.uniform(0.0, 60.0)),
        )
        for i in range(n_apps)
    )
    return Scenario(
        platform=plat,
        applications=apps,
        label=f"scaling-{n_apps}x{n_instances}",
        metadata={"seed": seed, "oversubscription": _OVERSUBSCRIPTION},
    )


def cell_horizon(scenario: Scenario, events_budget: int) -> float:
    """A ``max_time`` horizon producing roughly ``events_budget`` events.

    Under sustained congestion one "round" (every application completing one
    instance) takes about ``mean_work + n_apps * mean_volume / B`` seconds
    and costs about 2.5 events per application (compute end, I/O completion,
    and the odd release / reallocation split).  The estimate only has to be
    in the right ballpark — both engines are always measured over the same
    horizon, so the comparison is exact even when the budget is not.
    """
    check_positive("events_budget", events_budget)
    apps = scenario.applications
    n_apps = len(apps)
    mean_work = float(np.mean([app.instances[0].work for app in apps]))
    mean_vol = float(np.mean([app.instances[0].io_volume for app in apps]))
    round_seconds = mean_work + n_apps * mean_vol / scenario.platform.system_bandwidth
    rounds = events_budget / (2.5 * n_apps)
    rounds = max(1.0, min(float(apps[0].n_instances), rounds))
    release_span = max(app.release_time for app in apps)
    return release_span + rounds * round_seconds


def _timed(
    runner: Callable[..., SimulationResult],
    scenario: Scenario,
    scheduler_name: str,
    max_time: float,
) -> dict:
    scheduler = make_scheduler(scheduler_name)
    config = SimulatorConfig(max_time=max_time)
    start = time.perf_counter()
    result = runner(scenario, scheduler, config)
    seconds = time.perf_counter() - start
    return {
        "n_events": result.n_events,
        "seconds": seconds,
        "events_per_sec": result.n_events / seconds if seconds > 0 else float("inf"),
        "makespan": result.makespan,
    }


def measure_cell(
    n_apps: int,
    n_instances: int,
    *,
    scheduler: str = "MaxSysEff",
    seed: int = 2015,
    events_budget: int = 4000,
    include_reference: bool = True,
) -> dict:
    """Time one grid cell on the heap and batched engines (and the oracle).

    Returns a JSON-ready mapping with per-engine ``n_events`` / ``seconds`` /
    ``events_per_sec`` (keys ``engine`` for the heap engine — the historical
    name, kept so BENCH diffs stay readable — and ``batched`` for the
    columnar numpy engine), the ``batched_speedup_vs_heap`` ratio, and, when
    the reference runs too, the ``speedup`` / ``batched_speedup`` ratios
    against it plus an ``identical`` flag (equal event counts and makespans
    across *all* engines run — they must traverse the same timeline or the
    ratios are meaningless).
    """
    scenario = scaling_scenario(n_apps, n_instances, seed=seed)
    max_time = cell_horizon(scenario, events_budget)
    cell: dict = {
        "n_apps": n_apps,
        "n_instances": n_instances,
        "scheduler": scheduler,
        "seed": seed,
        "max_time": max_time,
        "engine": _timed(simulate, scenario, scheduler, max_time),
        "batched": _timed(batched_simulate, scenario, scheduler, max_time),
    }
    cell["batched_speedup_vs_heap"] = (
        cell["batched"]["events_per_sec"] / cell["engine"]["events_per_sec"]
    )
    identical = (
        cell["engine"]["n_events"] == cell["batched"]["n_events"]
        and cell["engine"]["makespan"] == cell["batched"]["makespan"]
    )
    if include_reference:
        cell["reference"] = _timed(reference_simulate, scenario, scheduler, max_time)
        cell["speedup"] = (
            cell["engine"]["events_per_sec"] / cell["reference"]["events_per_sec"]
        )
        cell["batched_speedup"] = (
            cell["batched"]["events_per_sec"] / cell["reference"]["events_per_sec"]
        )
        identical = identical and (
            cell["engine"]["n_events"] == cell["reference"]["n_events"]
            and cell["engine"]["makespan"] == cell["reference"]["makespan"]
        )
    cell["identical"] = identical
    return cell


def run_scaling_suite(
    grid: Sequence[tuple[int, int]] = DEFAULT_GRID,
    *,
    scheduler: str = "MaxSysEff",
    seed: int = 2015,
    events_budget: int = 4000,
    include_reference: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Measure every cell of ``grid`` and assemble the benchmark payload.

    The payload is what ``BENCH_engine.json`` serializes: suite-level
    metadata plus one entry per cell (see :func:`measure_cell`).  Pass
    ``progress`` (e.g. ``print``) to follow long suites.
    """
    if not grid:
        raise ValidationError("run_scaling_suite needs at least one grid cell")
    cells = []
    for n_apps, n_instances in grid:
        cell = measure_cell(
            n_apps,
            n_instances,
            scheduler=scheduler,
            seed=seed,
            events_budget=events_budget,
            include_reference=include_reference,
        )
        cells.append(cell)
        if progress is not None:
            line = (
                f"{n_apps:4d} apps x {n_instances:3d} inst: "
                f"batched {cell['batched']['events_per_sec']:8.0f} ev/s, "
                f"heap {cell['engine']['events_per_sec']:8.0f} ev/s "
                f"({cell['batched_speedup_vs_heap']:.2f}x)"
            )
            if include_reference:
                line += (
                    f"  (reference {cell['reference']['events_per_sec']:8.0f} ev/s, "
                    f"batched speedup {cell['batched_speedup']:.2f}x)"
                )
            progress(line)
    return {
        "benchmark": "engine_scaling",
        "scheduler": scheduler,
        "seed": seed,
        "events_budget": events_budget,
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "cells": cells,
    }


def run_bench_cli(
    *,
    out: str = "BENCH_engine.json",
    scale: int = 1,
    scheduler: str = "MaxSysEff",
    include_reference: bool = True,
    progress: Optional[Callable[[str], None]] = print,
    error: Optional[Callable[[str], None]] = None,
    grid_out: Optional[str] = "BENCH_grid.json",
    include_engine: bool = True,
) -> int:
    """Shared driver behind ``repro bench`` and ``benchmarks/run_bench.py``.

    Runs the engine-scaling suite (event budget ``4000 * scale``; ``scale``
    and ``scheduler`` are validated up front, raising ``ValidationError``)
    and the end-to-end grid benchmark
    (:func:`repro.experiments.grid_bench.run_grid_bench` — serial vs pooled
    spec runs plus the warm-vs-naive period sweep), writing ``out`` and
    ``grid_out`` respectively.  ``grid_out=None`` skips the grid half;
    ``include_engine=False`` skips the engine half.

    Returns the process exit status: 0 on success, 1 when any ``identical``
    flag in either payload is false — a determinism regression (the
    optimized engine diverged from the reference timeline, a pooled run
    diverged from serial, or the warm-started sweep diverged from the naive
    one).  ``error`` receives the mismatch report (defaults to stderr).
    """
    import sys

    if error is None:
        error = lambda message: print(message, file=sys.stderr)  # noqa: E731
    if scale < 1:
        raise ValidationError(f"scale must be >= 1, got {scale}")
    try:
        make_scheduler(scheduler)
    except (KeyError, ValueError) as exc:
        # Fail before the (slow) suite runs, with a friendly message both
        # entry points (`repro bench`, benchmarks/run_bench.py) can print.
        message = exc.args[0] if exc.args else str(exc)
        raise ValidationError(f"scheduler: {message}") from exc

    status = 0
    if include_engine:
        payload = run_scaling_suite(
            scheduler=scheduler,
            events_budget=4000 * scale,
            include_reference=include_reference,
            progress=progress,
        )
        path = write_bench_json(payload, out)
        if progress is not None:
            progress(f"wrote {path}")
        broken = [
            f"{c['n_apps']}x{c['n_instances']}"
            for c in payload["cells"]
            if not c["identical"]
        ]
        if broken:
            error(
                f"ENGINE MISMATCH on cells: {', '.join(broken)} — an "
                "optimized engine no longer reproduces the reference timeline"
            )
            status = 1

    if grid_out is not None:
        from repro.experiments.grid_bench import grid_bench_broken, run_grid_bench

        grid_payload = run_grid_bench(scale=scale, progress=progress)
        path = write_bench_json(grid_payload, grid_out)
        if progress is not None:
            progress(f"wrote {path}")
        broken = grid_bench_broken(grid_payload)
        if broken:
            error(
                f"GRID MISMATCH on: {', '.join(broken)} — a pooled or "
                "warm-started run no longer reproduces the serial/naive "
                "results"
            )
            status = 1
    return status


def write_bench_json(payload: Mapping, path: str = "BENCH_engine.json") -> str:
    """Serialize a suite payload to ``path`` (pretty-printed) and return it.

    Delegates to :func:`repro.experiments.reporting.write_json`: parent
    directories are created (a fresh checkout can write straight to e.g.
    ``perf/BENCH_engine.json`` without losing a finished run) and
    non-finite floats are made strict-JSON safe.
    """
    from repro.experiments.reporting import write_json

    return str(write_json(payload, path))

"""Plain-text and structured reporting of experiment results.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that formatting in one place so every benchmark and example
produces consistent, diff-able output.

Two families of helpers live here:

* **text** — :func:`format_table` / :func:`format_series` /
  :func:`format_mapping`, aligned plain text for terminals and diffs;
* **structured** — :func:`grid_records` flattens an
  :class:`~repro.experiments.runner.ExperimentGrid` into one dict per cell,
  and :func:`write_json` / :func:`write_csv` dump payloads to disk (the
  ``repro run`` CLI's ``--out`` path ends up here).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence, Union

from repro.utils.io import atomic_write_text
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us not)
    from repro.experiments.runner import ExperimentGrid

__all__ = [
    "format_table",
    "format_series",
    "format_mapping",
    "percent",
    "ratio",
    "grid_records",
    "resilience_records",
    "write_json",
    "write_csv",
]

#: Label suffix marking the faulted twin of a baseline scenario (see
#: :func:`repro.config.build.build_grid_scenarios`).
FAULTED_SUFFIX = "+faults"


def percent(value: float) -> str:
    """Format a 0–100 efficiency value the way the paper's tables do.

    A truncated run can produce a non-finite efficiency; it renders exactly
    like :func:`ratio` (``-`` for NaN, ``inf``/``-inf`` spelled out) instead
    of pushing ``nan`` through the ``:.2f`` float path.
    """
    return ratio(value)


def ratio(value: float) -> str:
    """Format a dilation value."""
    if value != value:  # NaN
        return "-"
    if value in (float("inf"), float("-inf")):
        return "inf" if value > 0 else "-inf"
    return f"{value:.2f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    ``rows`` may contain strings or numbers; numbers are formatted with two
    decimals (non-finite ones through :func:`ratio`, so a NaN dilation from a
    truncated run prints as ``-`` rather than ``nan``).  The result always
    ends with a newline so benchmarks can print it directly.
    """
    if not headers:
        raise ValueError("format_table needs at least one header")
    rendered_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        rendered_rows.append(
            [c if isinstance(c, str) else ratio(float(c)) for c in row]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines) + "\n"


def format_series(
    name: str, values: Iterable[float], *, precision: int = 2
) -> str:
    """Render one named series (a figure curve) on a single line."""
    body = ", ".join(f"{v:.{precision}f}" for v in values)
    return f"{name}: [{body}]"


def format_mapping(
    mapping: Mapping[str, float], *, precision: int = 2, sort: bool = False
) -> str:
    """Render a name->value mapping, one entry per line."""
    items = sorted(mapping.items()) if sort else list(mapping.items())
    width = max((len(k) for k, _ in items), default=0)
    return "\n".join(f"{k.ljust(width)}  {v:.{precision}f}" for k, v in items) + "\n"


# ---------------------------------------------------------------------- #
# Structured output (JSON / CSV)
# ---------------------------------------------------------------------- #
def grid_records(grid: "ExperimentGrid") -> list[dict[str, object]]:
    """Flatten a grid into one JSON/CSV-ready dict per cell.

    Each record carries the cell coordinates (``scenario``, ``scheduler``)
    and the full objective vector: ``system_efficiency`` and ``upper_limit``
    as percentages (0–100, the paper's convention), ``dilation`` as a ratio
    (>= 1), ``makespan`` in seconds and the simulator's ``n_events``.

    Cells simulated under fault injection additionally carry flat
    resilience columns (``fault_crashes``, ``fault_brownout_time``,
    ``fault_blackout_time``, ``fault_stall_time``, ``fault_recovery_io``);
    healthy cells omit them, so existing artefacts stay byte-identical.
    """
    records: list[dict[str, object]] = []
    for case in grid.cases:
        record: dict[str, object] = {
            "scenario": case.scenario_label,
            "scheduler": case.scheduler_label,
            "system_efficiency": case.system_efficiency,
            "dilation": case.dilation,
            "upper_limit": case.upper_limit,
            "makespan": case.makespan,
            "n_events": case.n_events,
        }
        if case.faults is not None:
            record["fault_crashes"] = case.faults.n_crashes
            record["fault_brownout_time"] = case.faults.brownout_time
            record["fault_blackout_time"] = case.faults.blackout_time
            record["fault_stall_time"] = case.faults.stall_time
            record["fault_recovery_io"] = case.faults.recovery_io
        records.append(record)
    return records


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


def resilience_records(grid: "ExperimentGrid") -> list[dict[str, object]]:
    """Per-scheduler resilience summary of a grid's faulted cells.

    Empty when the grid has no faulted cells.  One record per scheduler
    (first-appearance order) with:

    * ``throughput_retained`` — mean over scenario pairs of the faulted
      cell's SysEfficiency as a percentage of its healthy twin's (pairs a
      ``"<label>+faults"`` scenario with ``"<label>"``; NaN when the grid
      was built without baselines so no pair exists);
    * ``total_crashes`` / ``restarts`` — applied crash count, total and per
      application (summed over the scheduler's faulted cells);
    * ``mean_brownout_time`` / ``mean_stall_time`` — seconds of degraded
      bandwidth and of degraded-while-wanting-I/O per faulted cell;
    * ``mean_recovery_io`` — bytes of checkpoint re-reads per faulted cell.
    """
    records: list[dict[str, object]] = []
    for scheduler in grid.schedulers():
        faulted = [
            c for c in grid.cases
            if c.scheduler_label == scheduler and c.faults is not None
        ]
        if not faulted:
            continue
        retained: list[float] = []
        for case in faulted:
            if not case.scenario_label.endswith(FAULTED_SUFFIX):
                continue
            base_label = case.scenario_label[: -len(FAULTED_SUFFIX)]
            try:
                healthy = grid.cell(base_label, scheduler)
            except KeyError:
                continue
            if healthy.system_efficiency > 0:
                retained.append(
                    100.0 * case.system_efficiency / healthy.system_efficiency
                )
        restarts: dict[str, int] = {}
        for case in faulted:
            for app, n in case.faults.restarts.items():
                restarts[app] = restarts.get(app, 0) + n
        records.append(
            {
                "scheduler": scheduler,
                "n_faulted_cells": len(faulted),
                "throughput_retained": _mean(retained),
                "total_crashes": sum(c.faults.n_crashes for c in faulted),
                "restarts": restarts,
                "mean_brownout_time": _mean(
                    [c.faults.brownout_time for c in faulted]
                ),
                "mean_stall_time": _mean([c.faults.stall_time for c in faulted]),
                "mean_recovery_io": _mean([c.faults.recovery_io for c in faulted]),
            }
        )
    return records


def _jsonable(value: object) -> object:
    """Best-effort conversion of numpy scalars / non-finite floats for JSON."""
    if isinstance(value, float):
        if value != value:
            return None
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _jsonable(value.item())
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _writable(path: Union[str, Path]) -> Path:
    """Create the parent directory, wrapping OSError for friendly reporting.

    A bad output path must surface as a :class:`ValidationError` (which the
    CLI turns into ``error: ...`` + exit 2), not a raw traceback that
    discards a completed run's results.
    """
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ValidationError(f"cannot write results to {path}: {exc}") from exc
    return path


def write_json(payload: Mapping[str, object], path: Union[str, Path]) -> Path:
    """Dump a result payload to a JSON file (parent dirs created).

    Non-finite floats — legal in Python, illegal in strict JSON — are
    rewritten: NaN becomes ``null``, infinities become the strings
    ``"inf"`` / ``"-inf"``.  The write is atomic (temp sibling +
    ``os.replace``), so an interrupted run can never leave a truncated
    artefact behind — a reader sees the previous file or the complete new
    one.  An unwritable path raises
    :class:`~repro.utils.validation.ValidationError`.
    """
    path = _writable(path)
    try:
        atomic_write_text(
            path,
            json.dumps(_jsonable(dict(payload)), indent=2, sort_keys=False) + "\n",  # reprolint: ignore[D004] — artefact sections keep construction order for readers; never digested
        )
    except OSError as exc:
        raise ValidationError(f"cannot write results to {path}: {exc}") from exc
    return path


def write_csv(
    records: Sequence[Mapping[str, object]], path: Union[str, Path]
) -> Path:
    """Dump flat records (as produced by :func:`grid_records`) to a CSV file.

    The header is the union of keys across records, in first-appearance
    order, so heterogeneous record lists stay loadable.  The rows are
    rendered in memory and written atomically, like :func:`write_json`.
    An unwritable path raises
    :class:`~repro.utils.validation.ValidationError`.
    """
    path = _writable(path)
    fieldnames: list[str] = []
    for record in records:
        for key in record:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO(newline="")
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for record in records:
        writer.writerow({k: record.get(k, "") for k in fieldnames})
    try:
        atomic_write_text(path, buffer.getvalue())
    except OSError as exc:
        raise ValidationError(f"cannot write results to {path}: {exc}") from exc
    return path

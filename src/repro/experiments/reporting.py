"""Plain-text and structured reporting of experiment results.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that formatting in one place so every benchmark and example
produces consistent, diff-able output.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_mapping", "percent", "ratio"]


def percent(value: float) -> str:
    """Format a 0–100 efficiency value the way the paper's tables do."""
    return f"{value:.2f}"


def ratio(value: float) -> str:
    """Format a dilation value."""
    if value != value:  # NaN
        return "-"
    if value == float("inf"):
        return "inf"
    return f"{value:.2f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    ``rows`` may contain strings or numbers; numbers are formatted with two
    decimals.  The result always ends with a newline so benchmarks can print
    it directly.
    """
    if not headers:
        raise ValueError("format_table needs at least one header")
    rendered_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        rendered_rows.append(
            [c if isinstance(c, str) else f"{float(c):.2f}" for c in row]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines) + "\n"


def format_series(
    name: str, values: Iterable[float], *, precision: int = 2
) -> str:
    """Render one named series (a figure curve) on a single line."""
    body = ", ".join(f"{v:.{precision}f}" for v in values)
    return f"{name}: [{body}]"


def format_mapping(
    mapping: Mapping[str, float], *, precision: int = 2, sort: bool = False
) -> str:
    """Render a name->value mapping, one entry per line."""
    items = sorted(mapping.items()) if sort else list(mapping.items())
    width = max((len(k) for k, _ in items), default=0)
    return "\n".join(f"{k.ljust(width)}  {v:.{precision}f}" for k, v in items) + "\n"

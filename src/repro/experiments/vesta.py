"""Vesta experiment emulation (Section 5, Figures 14–16).

The paper's Section 5 runs a modified IOR benchmark on Argonne's Vesta
machine: groups of IOR processes act as independent applications, a
scheduler thread implements the Priority variants of MaxSysEff and
MinDilation, and every node mix of :data:`repro.workload.ior.VESTA_SCENARIOS`
is executed under six configurations — {stock IOR, MaxSysEff, MinDilation}
× {bypassing, using} the burst buffers.

We cannot run on Vesta; the emulation replays exactly the same grid through
the simulator:

* "IOR" is the uncoordinated fair-share baseline with interference — the
  behaviour of concurrent, unscheduled IOR groups on a shared file system;
* the heuristics run through the engine as usual and are charged the
  scheduler-thread overhead measured in Figure 14 (see
  :mod:`repro.experiments.overhead`), scored against the original
  application parameters so the overhead shows up as lost efficiency;
* the ``BB*`` variants run on the Vesta burst-buffer platform with
  ``use_burst_buffer=True``.

Outputs map one-to-one onto the paper's artefacts: Figure 14 (overhead per
scenario), Figure 15 (SysEfficiency and Dilation per scenario and
configuration) and Figure 16 (per-application dilation in the
``512/256/256/32`` mix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.objectives import (
    ApplicationOutcome,
    ObjectiveSummary,
    summarize,
)
from repro.core.platform import Platform, vesta
from repro.core.scenario import Scenario
from repro.experiments.overhead import (
    DEFAULT_OVERHEAD,
    OverheadModel,
    scenario_overhead_fractions,
)
from repro.experiments.runner import (
    ExperimentExecutor,
    MapCache,
    engine_runner,
    map_parallel,
    resolve_engine,
)
from repro.online.baselines import ior_scheduler
from repro.online.registry import make_scheduler
from repro.simulator.engine import SimulatorConfig
from repro.simulator.metrics import SimulationResult
from repro.store import ResultStore, canonical_json, code_fingerprint, digest
from repro.utils.rng import RngLike
from repro.utils.validation import ValidationError
from repro.workload.ior import VESTA_SCENARIOS, ior_scenario

__all__ = [
    "VESTA_CONFIGURATIONS",
    "VestaCase",
    "VestaExperimentResult",
    "score_with_overhead",
    "run_vesta_case",
    "vesta_experiment",
    "figure14_overheads",
    "figure16_per_application_dilation",
]

#: The six configurations of Figure 15 (three schedulers × burst buffers off/on).
VESTA_CONFIGURATIONS: tuple[str, ...] = (
    "IOR",
    "MaxSysEff",
    "MinDilation",
    "BBIOR",
    "BBMaxSysEff",
    "BBMinDilation",
)

#: The Section 5 heuristics are the Priority variants (Vesta uses disks).
_HEURISTIC_NAMES = {
    "MaxSysEff": "Priority-MaxSysEff",
    "MinDilation": "Priority-MinDilation",
}


@dataclass(frozen=True)
class VestaCase:
    """One cell of the Vesta grid: a node mix under one configuration."""

    scenario: str
    configuration: str
    summary: ObjectiveSummary
    per_application_dilation: dict[str, float]
    makespan: float


@dataclass
class VestaExperimentResult:
    """All cells of the Vesta grid, indexed like Figure 15."""

    cases: list[VestaCase] = field(default_factory=list)

    def cell(self, scenario: str, configuration: str) -> VestaCase:
        """Look one cell up."""
        for case in self.cases:
            if case.scenario == scenario and case.configuration == configuration:
                return case
        raise KeyError(f"no Vesta cell for ({scenario!r}, {configuration!r})")

    def scenarios(self) -> list[str]:
        """Scenario labels in first-appearance order."""
        seen: list[str] = []
        for case in self.cases:
            if case.scenario not in seen:
                seen.append(case.scenario)
        return seen

    def series(self, configuration: str, metric: str) -> list[float]:
        """Per-scenario series of ``system_efficiency`` or ``dilation``."""
        values = []
        for scenario in self.scenarios():
            values.append(getattr(self.cell(scenario, configuration).summary, metric))
        return values


# ---------------------------------------------------------------------- #
def score_with_overhead(
    original: Scenario, result: SimulationResult
) -> tuple[ObjectiveSummary, dict[str, float]]:
    """Score an overhead-inflated run against the original application parameters.

    The overhead model lengthens instances with unproductive serial time; if
    the run were scored on the inflated work, the overhead would count as
    useful computation.  Instead we rebuild each outcome with the original
    ``executed_work`` and dedicated I/O time, keeping the (later) completion
    times from the run — so the overhead translates into lower efficiency
    and higher dilation, as it does on the real machine.
    """
    outcomes: list[ApplicationOutcome] = []
    dilations: dict[str, float] = {}
    for app in original.applications:
        record = result.record(app.name)
        peak = original.platform.peak_application_bandwidth(app.processors)
        outcome = ApplicationOutcome(
            name=app.name,
            processors=app.processors,
            release_time=app.release_time,
            completion_time=record.completion_time,
            executed_work=app.total_work,
            dedicated_io_time=app.total_io_volume / peak if peak > 0 else 0.0,
        )
        outcomes.append(outcome)
        achieved = outcome.executed_work / max(outcome.elapsed, 1e-12)
        optimal = outcome.executed_work / (
            outcome.executed_work + outcome.dedicated_io_time
        )
        dilations[app.name] = optimal / max(achieved, 1e-12)
    return summarize(outcomes), dilations


def run_vesta_case(
    scenario_name: str,
    configuration: str,
    *,
    platform: Optional[Platform] = None,
    overhead: OverheadModel = DEFAULT_OVERHEAD,
    rng: RngLike = 0,
    jitter: float = 0.05,
    engine: Optional[str] = None,
) -> VestaCase:
    """Run one (node mix, configuration) cell of the Vesta grid.

    ``engine`` selects the simulation kernel (``"heap"`` or ``"batched"``;
    ``None`` uses the default engine) — bit-identical either way.
    """
    if configuration not in VESTA_CONFIGURATIONS:
        raise ValidationError(
            f"unknown Vesta configuration {configuration!r}; "
            f"choose one of {VESTA_CONFIGURATIONS}"
        )
    use_bb = configuration.startswith("BB")
    scheduler_key = configuration[2:] if use_bb else configuration
    base_platform = platform or vesta(with_burst_buffer=use_bb)
    if use_bb and base_platform.burst_buffer is None:
        raise ValidationError(
            f"configuration {configuration!r} needs a burst-buffer platform"
        )
    scenario = ior_scenario(scenario_name, base_platform, rng=rng, jitter=jitter)
    config = SimulatorConfig(use_burst_buffer=use_bb)
    run_simulation = engine_runner(engine)

    if scheduler_key == "IOR":
        result = run_simulation(scenario, ior_scheduler(), config)
        summary = result.summary()
        dilations = result.dilations()
        makespan = result.makespan
    else:
        scheduler = make_scheduler(_HEURISTIC_NAMES[scheduler_key])
        inflated = overhead.apply_to_scenario(scenario)
        result = run_simulation(inflated, scheduler, config)
        summary, dilations = score_with_overhead(scenario, result)
        makespan = result.makespan
    return VestaCase(
        scenario=scenario_name,
        configuration=configuration,
        summary=summary,
        per_application_dilation=dilations,
        makespan=makespan,
    )


class _VestaCellCache(MapCache):
    """Memo table for Vesta grid cells.

    A Vesta cell rebuilds its jittered IOR scenario *inside* the worker from
    the shared seed, so the key digests the seed and the overhead model
    alongside the (node mix, configuration) coordinates — plus the
    producing-code fingerprint, like every store key.  Only seed-like
    ``rng`` values are cacheable; live generators advance across cells and
    have no canonical form (the caller skips caching for them).
    """

    def __init__(
        self,
        store: ResultStore,
        overhead: OverheadModel,
        seed: object,
        engine: str,
    ):
        super().__init__(store)
        self._prefix = digest(
            "vesta-cell", code_fingerprint(), canonical_json(overhead), seed,
            engine,
        )

    def key(self, item: tuple[str, str]) -> str:
        return digest(self._prefix, item[0], item[1])

    def encode(self, result: VestaCase) -> dict:
        return {
            "scenario": result.scenario,
            "configuration": result.configuration,
            "summary": result.summary.as_dict(),
            "per_application_dilation": dict(result.per_application_dilation),
            "makespan": result.makespan,
        }

    def decode(self, payload: dict) -> VestaCase:
        return VestaCase(
            scenario=payload["scenario"],
            configuration=payload["configuration"],
            summary=ObjectiveSummary.from_dict(payload["summary"]),
            per_application_dilation=dict(payload["per_application_dilation"]),
            makespan=payload["makespan"],
        )


def _run_vesta_cell_shared(
    shared: tuple[OverheadModel, RngLike, str], cell: tuple[str, str]
) -> VestaCase:
    """Shared-payload Vesta cell: overhead, seed and engine travel once."""
    overhead, rng, engine = shared
    scenario, configuration = cell
    return run_vesta_case(
        scenario, configuration, overhead=overhead, rng=rng, engine=engine
    )


def _check_parallel_rng(
    rng: RngLike,
    workers: int | None,
    executor: Optional[ExperimentExecutor] = None,
) -> None:
    """Refuse a live generator in a parallel run.

    A ``Generator``'s state advances across cells in a serial run; pickling
    it into worker processes would replay the *same* state in every cell and
    silently change results.  Seed-like values (int / SeedSequence / None)
    rebuild identically per cell, so only live generators are rejected.
    """
    import numpy as np

    from repro.experiments.runner import resolve_workers

    n_workers = (
        executor.n_workers if executor is not None else resolve_workers(workers)
    )
    if n_workers > 1 and isinstance(rng, np.random.Generator):
        raise ValidationError(
            "workers > 1 requires a seed-like rng (int, SeedSequence or "
            "None): a live numpy Generator cannot advance across worker "
            "processes, so parallel results would silently diverge from "
            "serial ones"
        )


def vesta_experiment(
    scenarios: Sequence[str] = VESTA_SCENARIOS,
    configurations: Sequence[str] = VESTA_CONFIGURATIONS,
    *,
    overhead: OverheadModel = DEFAULT_OVERHEAD,
    rng: RngLike = 0,
    workers: int | None = None,
    progress: Optional[Callable[[str], None]] = None,
    executor: Optional[ExperimentExecutor] = None,
    store: Optional[ResultStore] = None,
    engine: Optional[str] = None,
) -> VestaExperimentResult:
    """The full Figure 15 grid.

    ``workers`` fans the (node mix × configuration) cells out over processes
    (see :func:`repro.experiments.runner.map_parallel`).  With a seed-like
    ``rng`` (an integer, the default) every cell rebuilds its jittered IOR
    scenario from that seed, so the grid is identical whatever the worker
    count; a live ``Generator`` is accepted only in serial runs (where its
    state advances across cells exactly as before) and rejected otherwise.
    ``progress`` receives one line per completed cell, in submission order.
    ``executor`` reuses a caller-owned pool; the overhead model and seed
    travel as one shared payload per worker.  ``store`` memoizes cells in
    the content-addressed result store — integer ``rng`` seeds only (a live
    generator has no canonical form, and ``rng=None`` means fresh entropy
    per run; both run silently uncached).
    """
    _check_parallel_rng(rng, workers, executor)
    engine = resolve_engine(engine)
    cells = [
        (scenario, configuration)
        for scenario in scenarios
        for configuration in configurations
    ]

    on_cell = None
    if progress is not None:
        n_cells = len(cells)

        def on_cell(index: int, cell, case: VestaCase) -> None:
            progress(
                f"cell {index + 1}/{n_cells}: {case.scenario} x "
                f"{case.configuration} done"
            )

    cache = None
    # Integer seeds only: rng=None documents "fresh OS entropy per run", so
    # memoizing it would freeze one run's random draw forever; live
    # generators have no canonical form.  Both run uncached.
    if store is not None and isinstance(rng, int) and not isinstance(rng, bool):
        cache = _VestaCellCache(store, overhead, rng, engine)
    result = VestaExperimentResult()
    result.cases.extend(
        map_parallel(
            _run_vesta_cell_shared,
            cells,
            workers=workers,
            progress=on_cell,
            executor=executor,
            shared=(overhead, rng, engine),
            cache=cache,
        )
    )
    return result


def _build_ior_mix_shared(rng: RngLike, name: str) -> Scenario:
    """Picklable adapter: build one jittered IOR mix (seed sent per worker)."""
    return ior_scenario(name, vesta(), rng=rng)


def figure14_overheads(
    scenarios: Sequence[str] = VESTA_SCENARIOS,
    *,
    overhead: OverheadModel = DEFAULT_OVERHEAD,
    rng: RngLike = 0,
    workers: int | None = None,
    executor: Optional[ExperimentExecutor] = None,
) -> dict[str, float]:
    """Figure 14: relative execution-time overhead (%) per node mix.

    ``workers`` parallelizes the per-mix scenario generation (the costly
    part; the overhead model itself is pure arithmetic, evaluated in batch
    afterwards).  Deterministic for seed-like ``rng``; a live ``Generator``
    is rejected in parallel runs, see :func:`vesta_experiment`.
    ``executor`` reuses a caller-owned pool.
    """
    _check_parallel_rng(rng, workers, executor)
    built = map_parallel(
        _build_ior_mix_shared,
        list(scenarios),
        workers=workers,
        executor=executor,
        shared=rng,
    )
    fractions = scenario_overhead_fractions(built, overhead=overhead)
    return {
        name: 100.0 * fraction for name, fraction in zip(scenarios, fractions)
    }


def figure16_per_application_dilation(
    scenario_name: str = "512/256/256/32",
    *,
    overhead: OverheadModel = DEFAULT_OVERHEAD,
    rng: RngLike = 0,
) -> dict[str, dict[str, float]]:
    """Figure 16: per-application dilation under each heuristic and under IOR.

    Returns ``{configuration: {application: dilation}}`` for the congested
    ``512/256/256/32`` mix, which is where the paper discusses how
    MaxSysEff sacrifices the small application while MinDilation spreads the
    slowdown evenly.
    """
    out: dict[str, dict[str, float]] = {}
    for configuration in ("IOR", "MaxSysEff", "MinDilation"):
        case = run_vesta_case(
            scenario_name, configuration, overhead=overhead, rng=rng
        )
        out[configuration] = dict(case.per_application_dilation)
    return out

"""Experiment harness: the code behind every table and figure of the paper.

* :mod:`repro.experiments.runner` — generic (scenario × scheduler) grids;
* :mod:`repro.experiments.comparison` — Figure 6 mixes and the
  congested-moment campaigns of Tables 1–2 / Figures 8–13;
* :mod:`repro.experiments.overhead` — the scheduler-request overhead model
  of Figure 14;
* :mod:`repro.experiments.vesta` — the Vesta / modified-IOR emulation of
  Figures 14–16;
* :mod:`repro.experiments.reporting` — plain-text tables and series.
"""

from repro.experiments.comparison import (
    FIGURE6_SCENARIOS,
    FIGURE6_SCHEDULERS,
    TABLE_SCHEDULERS,
    CongestedMomentsResult,
    Figure6Result,
    HeuristicAverages,
    congested_moments_experiment,
    figure6_experiment,
)
from repro.experiments.overhead import (
    DEFAULT_OVERHEAD,
    OverheadModel,
    scenario_overhead_fractions,
)
from repro.experiments.reporting import (
    format_mapping,
    format_series,
    format_table,
    grid_records,
    percent,
    ratio,
    write_csv,
    write_json,
)
from repro.experiments.runner import (
    CaseResult,
    ExperimentGrid,
    SchedulerCase,
    map_parallel,
    resolve_workers,
    run_case,
    run_grid,
)
from repro.experiments.vesta import (
    VESTA_CONFIGURATIONS,
    VestaCase,
    VestaExperimentResult,
    figure14_overheads,
    figure16_per_application_dilation,
    run_vesta_case,
    score_with_overhead,
    vesta_experiment,
)

__all__ = [
    "SchedulerCase",
    "CaseResult",
    "ExperimentGrid",
    "run_case",
    "run_grid",
    "map_parallel",
    "resolve_workers",
    "scenario_overhead_fractions",
    "Figure6Result",
    "HeuristicAverages",
    "figure6_experiment",
    "FIGURE6_SCENARIOS",
    "FIGURE6_SCHEDULERS",
    "TABLE_SCHEDULERS",
    "CongestedMomentsResult",
    "congested_moments_experiment",
    "OverheadModel",
    "DEFAULT_OVERHEAD",
    "VestaCase",
    "VestaExperimentResult",
    "VESTA_CONFIGURATIONS",
    "run_vesta_case",
    "vesta_experiment",
    "figure14_overheads",
    "figure16_per_application_dilation",
    "score_with_overhead",
    "format_table",
    "format_series",
    "format_mapping",
    "percent",
    "ratio",
    "grid_records",
    "write_json",
    "write_csv",
]

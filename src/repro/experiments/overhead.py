"""Scheduler-request overhead model (Figure 14).

In the Vesta implementation, every application process sends a request to
the scheduler thread before each write and a confirmation after it; the
request round-trips plus the scheduler's bookkeeping add latency to every
instance even when no congestion occurs.  Figure 14 measures that overhead
by comparing the modified IOR benchmark (scheduler always answering "go
ahead") against stock IOR: it ranges from about 1% to 5.3% of the execution
time, and "in general, for a larger number of applications, the execution
time overhead remains under 3%".

We model the overhead mechanistically so it produces the same range and the
same trend:

* every instance pays a fixed request/confirmation round-trip latency;
* on top of that, the scheduler thread serializes the per-process requests
  of the group, so the cost grows with the application's node count — but
  when several applications share the system their requests coalesce at the
  same events and the per-application share of the serialization shrinks.

With the default calibration a lone 512-node group pays ~5%, a lone 32-node
group ~1%, and the four-application mixes stay below ~3% — the Figure 14
envelope.

The Vesta emulation charges this overhead to the heuristics only (the
baseline runs unmodified IOR and pays nothing), and scores the runs against
the *original* application parameters so the overhead shows up as lost
efficiency rather than as extra "useful" work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.application import Application
from repro.core.scenario import Scenario
from repro.utils.validation import check_non_negative

__all__ = ["OverheadModel", "DEFAULT_OVERHEAD", "scenario_overhead_fractions"]


@dataclass(frozen=True)
class OverheadModel:
    """Per-instance overhead of the scheduler thread.

    Attributes
    ----------
    request_latency:
        Fixed round-trip latency of one request/confirmation pair (seconds).
    per_node_cost:
        Serialized handling time per compute node of the requesting
        application (seconds); shared across the applications present.
    """

    request_latency: float = 0.75
    per_node_cost: float = 0.025

    def __post_init__(self) -> None:
        check_non_negative("request_latency", self.request_latency)
        check_non_negative("per_node_cost", self.per_node_cost)

    # ------------------------------------------------------------------ #
    def per_instance_overhead(self, processors: int, n_applications: int) -> float:
        """Extra seconds added to one compute+I/O instance.

        ``processors`` is the requesting application's node count and
        ``n_applications`` the number of applications the scheduler is
        tracking (their requests coalesce at shared events, so the
        serialization cost is amortized across them).
        """
        if processors < 1:
            raise ValueError("processors must be >= 1")
        if n_applications < 1:
            raise ValueError("n_applications must be >= 1")
        return self.request_latency + self.per_node_cost * processors / n_applications

    def application_overhead_fraction(
        self, application: Application, n_applications: int, peak_bandwidth: float
    ) -> float:
        """Relative execution-time overhead of one application, no congestion.

        The congestion-free duration of an instance is ``w + vol / peak``;
        the overhead adds a constant per instance, so the fraction is
        ``overhead / (base + overhead)``.
        """
        per_instance = self.per_instance_overhead(application.processors, n_applications)
        inst = application.instances[0]
        base = inst.work + (inst.io_volume / peak_bandwidth if peak_bandwidth > 0 else 0.0)
        if base <= 0:
            return 1.0
        return per_instance / (base + per_instance)

    def scenario_overhead_fraction(self, scenario: Scenario) -> float:
        """Mean relative execution-time overhead across a scenario (Figure 14)."""
        n_apps = scenario.n_applications
        fractions = []
        for app in scenario.applications:
            peak = scenario.platform.peak_application_bandwidth(app.processors)
            fractions.append(
                self.application_overhead_fraction(app, n_apps, peak)
            )
        return float(sum(fractions) / len(fractions))

    def apply_to_application(
        self, application: Application, n_applications: int
    ) -> Application:
        """Application with the per-instance overhead folded into each instance.

        The extra time is modelled as a longer serial section before the
        I/O; callers must score the resulting run against the *original*
        application (see :func:`repro.experiments.vesta.score_with_overhead`)
        so the overhead counts as lost time, not as useful work.
        """
        per_instance = self.per_instance_overhead(application.processors, n_applications)
        works = [inst.work + per_instance for inst in application.instances]
        volumes = [inst.io_volume for inst in application.instances]
        return Application.from_sequences(
            name=application.name,
            processors=application.processors,
            works=works,
            io_volumes=volumes,
            release_time=application.release_time,
            category=application.category,
        )

    def apply_to_scenario(self, scenario: Scenario) -> Scenario:
        """Scenario with every application charged the request overhead."""
        n_apps = scenario.n_applications
        apps = tuple(
            self.apply_to_application(app, n_apps) for app in scenario.applications
        )
        return scenario.with_applications(apps)


def scenario_overhead_fractions(
    scenarios: Sequence[Scenario],
    *,
    overhead: Optional["OverheadModel"] = None,
) -> list[float]:
    """Mean relative overhead of each scenario, in input order.

    Batch companion to :meth:`OverheadModel.scenario_overhead_fraction` for
    callers sweeping many scenarios (e.g. overhead-sensitivity studies);
    ``overhead`` defaults to :data:`DEFAULT_OVERHEAD`.
    """
    model = overhead if overhead is not None else DEFAULT_OVERHEAD
    return [model.scenario_overhead_fraction(scenario) for scenario in scenarios]


#: Calibration that lands in the 1–5.3% range of Figure 14 for the Vesta
#: node mixes (a lone 512-node group pays the most, multi-application mixes
#: stay under ~3%).
DEFAULT_OVERHEAD = OverheadModel()

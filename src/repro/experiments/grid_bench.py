"""End-to-end experiment-throughput benchmark: write ``BENCH_grid.json``.

``BENCH_engine.json`` tracks the *simulator* hot path (events/sec of one
run); this module tracks the *experiment* hot path — what a whole
``repro run`` costs.  Two measurements:

* **spec throughput** — each bundled benchmark spec
  (``examples/specs/analysis_figures.toml`` and
  ``examples/specs/periodic.toml``) is executed end to end twice: serially
  (``workers=1``) and pooled (``workers=0`` — one persistent
  :class:`~repro.experiments.runner.ExperimentExecutor` per run, one worker
  per CPU).  The payload records wall-clock seconds, cells/sec and the
  per-stage (``build``/``run``/``report``) wall-time breakdown — read from
  the telemetry spans of :mod:`repro.obs` — for both modes,
  the speedup, and an ``identical`` flag asserting the pooled payload is
  byte-for-byte the serial one (same contract as
  ``tests/test_experiment_executor.py``; a false flag fails the benchmark).
* **period-sweep throughput** — the ``(1 + eps)`` period search of
  Section 3.2 is run over the periodic spec's application set with the
  warm start on and off, recording sweep-points/sec for both and an
  ``identical`` flag comparing the two traces point for point.

``--scale N`` deepens both measurements (more Figure 1 applications, more
Figure 7 repetitions, a ``1/N`` finer sweep step) without touching the
bundled spec files.
"""

from __future__ import annotations

import dataclasses
import json
import platform as _platform
import time
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence

from repro.config.build import build_periodic_setup
from repro.config.loader import load_spec
from repro.config.run import run_spec
from repro.config.spec import (
    PERIODIC_HEURISTIC_TABLE,
    AnalysisSpec,
    ExperimentSpec,
    PeriodicSpec,
)
from repro.experiments.runner import resolve_workers
from repro.periodic.period_search import search_period
from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "DEFAULT_BENCH_SPECS",
    "DEFAULT_CAMPAIGN_SPEC",
    "bench_spec_path",
    "scaled_spec",
    "measure_spec_run",
    "measure_campaign_run",
    "measure_period_sweep",
    "run_grid_bench",
    "grid_bench_broken",
]

#: The bundled specs the end-to-end benchmark replays (ISSUE 4 acceptance
#: criterion): the analysis suite (Figures 1/5/7) and the periodic study.
DEFAULT_BENCH_SPECS: tuple[str, ...] = ("analysis_figures", "periodic")

#: The bundled grid spec the sharded-campaign benchmark shards (a 6-cell
#: checkpoint storm — small enough that coordination overhead is visible,
#: which is exactly what the row is meant to track).
DEFAULT_CAMPAIGN_SPEC = "checkpoint_storm"


def bench_spec_path(name: str) -> Path:
    """Path of a bundled benchmark spec, whatever the CWD.

    ``name`` is a spec stem from :data:`DEFAULT_BENCH_SPECS` or any path to
    a spec file (paths pass through untouched).  Stems resolve against the
    working directory first (an installed ``repro bench`` run from a
    checkout still finds the spec library) and fall back to the source
    tree next to this module; a clear error names both locations when
    neither exists, since an installed package does not ship the
    ``examples/`` directory.
    """
    candidate = Path(name)
    if candidate.suffix or len(candidate.parts) > 1 or candidate.is_file():
        return candidate
    relative = Path("examples") / "specs" / f"{name}.toml"
    if relative.is_file():
        return relative
    in_tree = Path(__file__).resolve().parents[3] / relative
    if in_tree.is_file():
        return in_tree
    raise ValidationError(
        f"bundled bench spec {name!r} not found (looked at ./{relative} and "
        f"{in_tree}); run from a repository checkout or pass an explicit "
        "spec path"
    )


def scaled_spec(spec: ExperimentSpec, scale: int) -> ExperimentSpec:
    """A deepened copy of a bench spec (``scale=1`` returns it unchanged).

    Scaling stays inside the spec dataclasses so the bundled files remain
    the source of truth: ``analysis`` multiplies the Figure 1 application
    count and the Figure 7 repetitions; ``periodic`` divides the sweep step
    ``epsilon`` (a finer sweep, the regime the warm start targets).  Other
    kinds scale by running unchanged — their cost is already proportional
    to the spec contents.
    """
    check_positive("scale", scale)
    if scale == 1:
        return spec
    body = spec.body
    if isinstance(body, AnalysisSpec):
        body = dataclasses.replace(
            body,
            figure1=dataclasses.replace(
                body.figure1,
                n_applications=body.figure1.n_applications * scale,
            ),
            figure7=dataclasses.replace(
                body.figure7,
                n_repetitions=body.figure7.n_repetitions * scale,
            ),
        )
    elif isinstance(body, PeriodicSpec):
        body = dataclasses.replace(body, epsilon=body.epsilon / scale)
    return dataclasses.replace(spec, body=body)


def _count_cells(spec: ExperimentSpec, payload: Mapping) -> int:
    """Independent work units (simulations / schedule evaluations) of a run."""
    body = spec.body
    if isinstance(body, AnalysisSpec):
        from repro.analysis.throughput import figure1_batch_count

        cells = 0
        if "figure1" in payload.get("figures", {}):
            f1 = body.figure1
            cells += figure1_batch_count(
                f1.n_applications, f1.applications_per_batch
            )
        if "figure5" in payload.get("figures", {}):
            cells += 1
        if "figure7" in payload.get("figures", {}):
            f7 = body.figure7
            cells += (
                len(f7.sensibilities) * f7.n_repetitions * len(f7.schedulers)
            )
        return cells
    if isinstance(body, PeriodicSpec):
        cells = sum(
            len(entry.get("sweep", ()))
            for entry in payload.get("periodic", {}).values()
        )
        cells += len(payload.get("online", {}))
        return cells
    return max(1, len(payload.get("cells", ())))


def _stage_seconds() -> dict[str, float]:
    """Wall time per pipeline stage, read from the recorder's spans."""
    from repro.obs.telemetry import recorder

    seconds: dict[str, float] = {}
    for record in recorder().span_snapshot():
        if record.category == "stage":
            seconds[record.name] = (
                seconds.get(record.name, 0.0) + record.dur_us / 1e6
            )
    return seconds


def _timed_run(spec: ExperimentSpec) -> tuple[float, dict, dict[str, float]]:
    """Run a spec with the telemetry spans on; return seconds/payload/stages.

    The recorder is an observer by contract (``tests/test_obs_isolation.py``),
    so the stage breakdown rides along for free without perturbing the
    ``identical`` byte-comparisons below.
    """
    from repro.obs.telemetry import recorder

    rec = recorder()
    rec.reset()
    rec.enable()
    try:
        start = time.perf_counter()
        result = run_spec(spec)
        elapsed = time.perf_counter() - start
        stages = _stage_seconds()
    finally:
        rec.reset()
    return elapsed, result.payload, stages


def measure_spec_run(
    name: str, *, scale: int = 1, workers: int = 0
) -> dict:
    """Serial-vs-pooled end-to-end timing of one bundled spec.

    Returns a JSON-ready mapping with per-mode ``seconds`` / ``cells_per_sec``,
    the ``speedup`` ratio, the resolved pooled worker count, and the
    ``identical`` flag (byte-compared payloads).  Output tables are dropped
    from both runs (the benchmark measures computation, not I/O paths).
    """
    spec = load_spec(bench_spec_path(name))
    spec = dataclasses.replace(scaled_spec(spec, scale), output=None)
    serial_spec = spec.with_overrides(workers=1)
    pooled_spec = spec.with_overrides(workers=workers)

    serial_seconds, serial_payload, serial_stages = _timed_run(serial_spec)
    pooled_seconds, pooled_payload, pooled_stages = _timed_run(pooled_spec)
    n_cells = _count_cells(spec, serial_payload)
    identical = json.dumps(serial_payload, sort_keys=True) == json.dumps(
        pooled_payload, sort_keys=True
    )
    return {
        "spec": name,
        "kind": spec.kind,
        "scale": scale,
        "n_cells": n_cells,
        "serial": {
            "seconds": serial_seconds,
            "cells_per_sec": n_cells / serial_seconds if serial_seconds > 0 else float("inf"),
            "stage_seconds": serial_stages,
        },
        "pooled": {
            "workers": resolve_workers(pooled_spec.workers),
            "seconds": pooled_seconds,
            "cells_per_sec": n_cells / pooled_seconds if pooled_seconds > 0 else float("inf"),
            "stage_seconds": pooled_stages,
        },
        "speedup": serial_seconds / pooled_seconds if pooled_seconds > 0 else float("inf"),
        "identical": identical,
    }


def measure_campaign_run(
    name: str = DEFAULT_CAMPAIGN_SPEC, *, workers: int = 2
) -> dict:
    """Sharded-campaign vs serial cells/sec for one bundled grid spec.

    Runs the spec twice: serially through :func:`run_spec` into a fresh
    store, and as a fault-tolerant campaign (:mod:`repro.campaign`) with
    per-worker stores that are then unioned by
    :func:`repro.store.merge.merge_stores` — the full multi-host path of
    ``docs/distributed.md``.  The ``identical`` flag asserts every merged
    cell payload is byte-for-byte the serial store's payload; a false flag
    is a determinism regression and fails the benchmark, exactly like the
    pooled-vs-serial flags.
    """
    import tempfile

    from repro.campaign import CampaignConfig, plan_campaign, run_campaign
    from repro.store import ResultStore, merge_stores

    spec = dataclasses.replace(load_spec(bench_spec_path(name)), output=None)
    plan = plan_campaign(spec)
    with tempfile.TemporaryDirectory(prefix="repro-bench-campaign-") as tmp:
        tmp_path = Path(tmp)
        serial_store = ResultStore(tmp_path / "serial-store")
        start = time.perf_counter()
        run_spec(spec.with_overrides(workers=1), store=serial_store)
        serial_seconds = time.perf_counter() - start

        merged_store = ResultStore(tmp_path / "campaign-store")
        config = CampaignConfig(
            workers=workers,
            worker_stores=True,
            heartbeat_seconds=0.1,
            poll_seconds=0.02,
        )
        start = time.perf_counter()
        result = run_campaign(
            spec, tmp_path / "campaign", store=merged_store, config=config
        )
        stores_dir = tmp_path / "campaign" / "stores"
        sources = sorted(stores_dir.iterdir()) if stores_dir.is_dir() else []
        merge_stores(sources, merged_store)
        sharded_seconds = time.perf_counter() - start

        identical = result.ok
        for cell in plan.cells:
            merged = merged_store.get(cell.key)
            serial = serial_store.get(cell.key)
            if (
                merged is None
                or serial is None
                or json.dumps(merged, sort_keys=True, allow_nan=True)
                != json.dumps(serial, sort_keys=True, allow_nan=True)
            ):
                identical = False
    n_cells = len(plan.cells)
    return {
        "spec": name,
        "n_cells": n_cells,
        "serial": {
            "seconds": serial_seconds,
            "cells_per_sec": n_cells / serial_seconds if serial_seconds > 0 else float("inf"),
        },
        "sharded": {
            "workers": workers,
            "seconds": sharded_seconds,
            "cells_per_sec": n_cells / sharded_seconds if sharded_seconds > 0 else float("inf"),
        },
        "speedup": serial_seconds / sharded_seconds if sharded_seconds > 0 else float("inf"),
        "identical": identical,
    }


def measure_period_sweep(*, scale: int = 1, spec_name: str = "periodic") -> dict:
    """Warm-started vs naive period sweep over the periodic spec's app set.

    Both sweeps walk the identical period ladder; ``identical`` compares
    their traces, best periods and placements exactly, and the throughput
    unit is sweep-points/sec.
    """
    spec = load_spec(bench_spec_path(spec_name))
    body = scaled_spec(spec, scale).body
    if not isinstance(body, PeriodicSpec):
        raise ValidationError(
            f"spec {spec_name!r} is kind {spec.kind!r}, not 'periodic'"
        )
    platform, applications = build_periodic_setup(body, spec.seed)

    entries = []
    for key in body.heuristics:
        heuristic_cls, objective = PERIODIC_HEURISTIC_TABLE[key]
        kwargs = dict(
            objective=objective,
            epsilon=body.epsilon,
            max_period=body.max_period,
            max_period_factor=body.max_period_factor,
        )
        start = time.perf_counter()
        warm = search_period(
            heuristic_cls(), platform, applications, warm_start=True, **kwargs
        )
        warm_seconds = time.perf_counter() - start
        start = time.perf_counter()
        naive = search_period(
            heuristic_cls(), platform, applications, warm_start=False, **kwargs
        )
        naive_seconds = time.perf_counter() - start
        identical = (
            warm.sweep == naive.sweep
            and warm.best_period == naive.best_period
            and sorted(
                dataclasses.astuple(i) for i in warm.best_schedule.instances
            )
            == sorted(
                dataclasses.astuple(i) for i in naive.best_schedule.instances
            )
        )
        n_points = len(warm.sweep)
        entries.append(
            {
                "heuristic": key,
                "objective": objective,
                "epsilon": body.epsilon,
                "n_sweep_points": n_points,
                "n_builds_warm": warm.n_builds,
                "naive": {
                    "seconds": naive_seconds,
                    "sweep_points_per_sec": n_points / naive_seconds if naive_seconds > 0 else float("inf"),
                },
                "warm": {
                    "seconds": warm_seconds,
                    "sweep_points_per_sec": n_points / warm_seconds if warm_seconds > 0 else float("inf"),
                },
                "speedup": naive_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
                "identical": identical,
            }
        )
    return {"spec": spec_name, "scale": scale, "sweeps": entries}


def run_grid_bench(
    specs: Sequence[str] = DEFAULT_BENCH_SPECS,
    *,
    scale: int = 1,
    workers: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Measure every bench spec plus the period sweep; assemble the payload.

    The payload is what ``BENCH_grid.json`` serializes.  Any cell or sweep
    whose ``identical`` flag is false marks a determinism regression —
    ``benchmarks/run_bench.py`` turns that into a non-zero exit status.
    """
    if not specs:
        raise ValidationError("run_grid_bench needs at least one spec")
    check_positive("scale", scale)
    spec_entries = []
    for name in specs:
        entry = measure_spec_run(name, scale=scale, workers=workers)
        spec_entries.append(entry)
        if progress is not None:
            progress(
                f"{entry['spec']:<18} serial {entry['serial']['seconds']:6.2f}s, "
                f"pooled {entry['pooled']['seconds']:6.2f}s "
                f"({entry['pooled']['workers']} worker(s), "
                f"speedup {entry['speedup']:.2f}x, "
                f"identical={entry['identical']})"
            )
    sweep = measure_period_sweep(scale=scale)
    if progress is not None:
        for s in sweep["sweeps"]:
            progress(
                f"period sweep {s['heuristic']:<11} "
                f"{s['n_sweep_points']:4d} points, "
                f"{s['n_builds_warm']:4d} builds: "
                f"naive {s['naive']['sweep_points_per_sec']:7.1f} pts/s, "
                f"warm {s['warm']['sweep_points_per_sec']:7.1f} pts/s "
                f"(speedup {s['speedup']:.2f}x, identical={s['identical']})"
            )
    campaign = measure_campaign_run()
    if progress is not None:
        progress(
            f"campaign {campaign['spec']:<18} "
            f"serial {campaign['serial']['cells_per_sec']:7.1f} cells/s, "
            f"sharded {campaign['sharded']['cells_per_sec']:7.1f} cells/s "
            f"({campaign['sharded']['workers']} worker(s), "
            f"identical={campaign['identical']})"
        )
    return {
        "benchmark": "experiment_grid",
        "scale": scale,
        "workers_requested": workers,
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "specs": spec_entries,
        "period_sweep": sweep,
        "campaign": campaign,
    }


def grid_bench_broken(payload: Mapping) -> list[str]:
    """Names of entries whose ``identical`` flag is false (regressions)."""
    broken = [
        entry["spec"]
        for entry in payload.get("specs", ())
        if not entry.get("identical", True)
    ]
    broken.extend(
        f"period-sweep:{entry['heuristic']}"
        for entry in payload.get("period_sweep", {}).get("sweeps", ())
        if not entry.get("identical", True)
    )
    campaign = payload.get("campaign", {})
    if campaign and not campaign.get("identical", True):
        broken.append(f"campaign:{campaign.get('spec', 'unknown')}")
    return broken

"""Cross-application interference model for the uncoordinated baselines.

The motivation of the paper (Figure 1, and the Jaguar/IOrchestrator studies
it cites) is that when several applications write to the shared parallel
file system *without coordination*, the interleaving of their requests
breaks the spatial locality each application's collective-I/O layer worked
hard to create.  The result is not just "everyone gets a fair share of B":
the **aggregate** delivered bandwidth itself drops — Intrepid applications
observed up to a 70% decrease in I/O throughput, far more than their fair
share of the back-end would explain.

The paper's own heuristics avoid this degradation by construction (they
serialize or strongly limit concurrent streams, and the Priority variants
never interrupt an in-flight transfer), and the authors validate on Vesta
that the coordinated schedule achieves close to the model's bandwidth.  The
native Intrepid / Mira / Vesta schedulers, on the other hand, let every
application stream concurrently; the real machines' observed efficiency —
which the paper uses as its comparison point — includes the interference
penalty.

Since we cannot measure the real machines, :class:`InterferenceModel`
provides the synthetic equivalent: a multiplicative factor on the aggregate
back-end bandwidth as a function of the number of concurrently served
applications.  It is applied **only** by the uncoordinated baseline
schedulers (:class:`repro.online.baselines.FairShare` and friends); the
paper's heuristics run against the clean Section 2.1 model, exactly as in
the paper's simulations.

The default parameters follow the headline numbers of the paper: a single
writer gets the full bandwidth, and heavy multi-application interference
asymptotically costs about 60% of the aggregate bandwidth (which, combined
with fair sharing, produces per-application throughput decreases of up to
~70%, the Figure 1 tail).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_in_range, check_positive

__all__ = ["InterferenceModel", "NO_INTERFERENCE", "DEFAULT_INTERFERENCE"]


@dataclass(frozen=True)
class InterferenceModel:
    """Aggregate-bandwidth degradation as a function of concurrent streams.

    The effective aggregate bandwidth with ``k`` concurrent applications is::

        B_eff(k) = B * (floor + (1 - floor) / (1 + strength * (k - 1)))

    * ``k <= 1`` leaves the bandwidth untouched;
    * ``strength`` controls how fast interference builds up with each
      additional concurrent stream;
    * ``floor`` is the asymptotic fraction of the bandwidth that survives
      arbitrarily heavy interference (disks still move data, just badly).

    Attributes
    ----------
    strength:
        Interference build-up rate per additional concurrent application.
    floor:
        Asymptotic surviving fraction of the aggregate bandwidth.
    """

    strength: float = 0.6
    floor: float = 0.35

    def __post_init__(self) -> None:
        check_positive("strength", self.strength)
        check_in_range("floor", self.floor, 0.0, 1.0)

    def factor(self, concurrent_applications: int) -> float:
        """Multiplicative bandwidth factor for ``concurrent_applications`` streams."""
        if concurrent_applications <= 1:
            return 1.0
        k = int(concurrent_applications)
        return self.floor + (1.0 - self.floor) / (1.0 + self.strength * (k - 1))

    def effective_bandwidth(self, bandwidth: float, concurrent_applications: int) -> float:
        """Aggregate bandwidth actually delivered under interference."""
        return bandwidth * self.factor(concurrent_applications)


#: Clean Section 2.1 model — used by the paper's heuristics.
NO_INTERFERENCE = InterferenceModel(strength=1e-9, floor=1.0)

#: Default calibration used for the Intrepid / Mira / Vesta baselines.
DEFAULT_INTERFERENCE = InterferenceModel(strength=0.6, floor=0.35)

"""Bandwidth-allocation primitives shared by schedulers and baselines.

Two allocation shapes cover every policy in the paper:

* :func:`favor_in_order` — the Section 3.1 semantics of *favouring*
  applications: walk a priority-ordered list and give each application
  ``min(beta * b, remaining)`` until the back-end bandwidth is exhausted.
  Every online heuristic (RoundRobin, MinDilation, MaxSysEff, MinMax-γ and
  their Priority variants) reduces to this with a different ordering.
* :func:`fair_share` — proportional water-filling: every application that
  wants to transfer gets an equal per-processor share, capped at its I/O
  card bandwidth ``b``, iterating until either the demand or the back-end is
  exhausted.  This is the "let congestion happen" behaviour used to model
  the native Intrepid / Mira / Vesta schedulers (and the file-system
  behaviour when the burst buffer is full).

Both return a :class:`~repro.core.allocation.BandwidthAllocation` that
always satisfies the feasibility constraints by construction.  They run
once per scheduling event, so both are written as single flat passes over
the candidate views — no intermediate per-iteration lists, and the final
dict is handed to the allocation without a defensive copy (the allocators
guarantee strictly positive float bandwidths by construction).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.allocation import BandwidthAllocation
from repro.simulator.interface import ApplicationView
from repro.utils.validation import ValidationError, check_non_negative

__all__ = ["favor_in_order", "fair_share", "single_application_rate"]

#: Bandwidth below this fraction of a byte/s is treated as zero.
_EPS = 1e-12


def single_application_rate(
    view: ApplicationView, node_bandwidth: float, available: float
) -> float:
    """Per-processor bandwidth when one application is favoured in isolation.

    ``gamma = min(b, available / beta)`` so that the aggregate rate is
    ``min(beta * b, available)`` as in Section 3.1.
    """
    if available <= _EPS:
        return 0.0
    return min(node_bandwidth, available / view.processors)


def favor_in_order(
    ordered: Sequence[ApplicationView],
    node_bandwidth: float,
    total_bandwidth: float,
) -> BandwidthAllocation:
    """Favour applications greedily in the given priority order.

    Parameters
    ----------
    ordered:
        I/O candidates, highest priority first.
    node_bandwidth:
        Per-processor cap ``b``.
    total_bandwidth:
        Back-end capacity to distribute at this event.

    Returns
    -------
    BandwidthAllocation
        Each application in turn receives ``min(beta*b, remaining)`` until
        nothing is left.  Applications that would receive (numerically)
        nothing are omitted, so they stay stalled.
    """
    check_non_negative("total_bandwidth", total_bandwidth)
    check_non_negative("node_bandwidth", node_bandwidth)
    remaining = float(total_bandwidth)
    # Coerce once up front: the fast allocation constructor skips the old
    # per-value float() pass, so the caps must already be builtin floats for
    # the stored gammas to keep the dict[str, float] invariant.
    node_bandwidth = float(node_bandwidth)
    gammas: dict[str, float] = {}
    for view in ordered:
        if remaining <= _EPS:
            break
        if not view.wants_io:
            raise ValidationError(
                f"application {view.name!r} is not an I/O candidate and cannot be favoured"
            )
        # Inlined single_application_rate: this loop runs once per favoured
        # application per event.
        processors = view.processors
        gamma = remaining / processors
        if gamma > node_bandwidth:
            gamma = node_bandwidth
        if gamma <= _EPS:
            continue
        gammas[view.name] = gamma
        remaining -= gamma * processors
    return BandwidthAllocation._from_positive(gammas)


def fair_share(
    candidates: Iterable[ApplicationView],
    node_bandwidth: float,
    total_bandwidth: float,
) -> BandwidthAllocation:
    """Proportional (water-filling) sharing of the back-end bandwidth.

    Every candidate gets the same per-processor bandwidth, capped at ``b``;
    bandwidth freed by capped applications is redistributed among the rest
    (classic max-min / water-filling on the per-processor rate).  When the
    aggregate demand fits within ``total_bandwidth`` every application simply
    runs at ``b`` per processor.

    Because the per-processor cap ``b`` is uniform across applications, the
    equal share either caps *everyone* (the demand fits — each application
    runs at ``b``) or *no one* (each application gets the share): the
    water-filling fixed point is reached in a single step, so saturated
    applications never have to be re-scanned.  The generic formulation used
    to loop and rebuild the unsatisfied list per iteration; this closed form
    produces bit-identical allocations (pinned by
    ``tests/test_allocation_invariants.py``) in one flat pass.
    """
    check_non_negative("total_bandwidth", total_bandwidth)
    check_non_negative("node_bandwidth", node_bandwidth)
    views = [v for v in candidates if v.wants_io]
    if not views or total_bandwidth <= _EPS:
        return BandwidthAllocation.empty()

    # See favor_in_order: the caps must be builtin floats before they land
    # in the no-copy allocation dict.
    node_bandwidth = float(node_bandwidth)
    remaining = float(total_bandwidth)
    total_procs = sum(v.processors for v in views)
    share = remaining / total_procs
    gammas: dict[str, float] = {}
    if share >= node_bandwidth:
        # Demand fits: every application is saturated at its I/O-card cap.
        if node_bandwidth > _EPS:
            for v in views:
                gammas[v.name] = node_bandwidth
    else:
        # Congestion: everyone gets the same per-processor share (summed per
        # name, matching the historical accumulate-by-name behaviour when a
        # caller passes duplicate views).
        for v in views:
            gammas[v.name] = gammas.get(v.name, 0.0) + share
        for name in [n for n, g in gammas.items() if g <= _EPS]:
            del gammas[name]
    return BandwidthAllocation._from_positive(gammas)

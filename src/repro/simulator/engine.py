"""Discrete-event engine simulating compute / I/O phases under shared bandwidth.

The engine implements the execution model of Section 2.1 directly:

* compute phases run undisturbed on dedicated processors;
* at every *event* (application release, I/O request, I/O completion,
  burst-buffer transition) the scheduler is consulted and returns a
  piecewise-constant bandwidth assignment, feasible with respect to the
  per-node cap ``b`` and the aggregate cap ``B``;
* between events every quantity evolves linearly, so the engine only ever
  advances time to the *next* event — there is no fixed time step and no
  numerical integration error beyond floating-point rounding.

The same engine runs the paper's online heuristics, the fair-share
"congestion" baselines with or without burst buffers, and the replay of
precomputed periodic schedules (through the periodic scheduler adapter in
:mod:`repro.periodic`), which is what makes the comparisons apples-to-apples.

Fast path
---------
This is the optimized engine.  Where the original implementation (preserved
as :mod:`repro.simulator.reference`) swept every application at every event —
O(n_apps) scans for candidate collection, transition firing and the next
event horizon, plus an O(n_instances) prefix re-summation inside every
scheduler view — this engine keeps indexed state so that each event costs
O(k log n) in the number of applications actually transitioning:

* releases and compute completions live in an
  :class:`~repro.simulator.queue.EventHeap` (lazy invalidation via
  per-runtime compute epochs), so the earliest time-certain event is a peek,
  not a scan;
* I/O completions are derived from the *active-transfer list* of the current
  interval — only applications that actually hold bandwidth are advanced and
  checked;
* the I/O-candidate set and the done-counter are maintained incrementally by
  the transition handlers;
* scheduler views use the cached prefix sums of
  :attr:`repro.core.application.Application.cumulative_work`, making the
  congestion-free efficiency an O(1) lookup, and each runtime memoizes its
  last :class:`~repro.simulator.interface.ApplicationView`, rebuilding it
  only when its state (or its time-dependent achieved efficiency) actually
  changed since the last allocation.

The optimization is pure bookkeeping: the event timeline, every float handed
to the scheduler and every result record are bit-for-bit identical to the
reference engine (``tests/test_engine_equivalence.py`` enforces this), so
published numbers do not move.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Optional

from repro.core.allocation import BandwidthAllocation
from repro.core.application import Application
from repro.core.events import Event, EventLog, EventType
from repro.core.scenario import Scenario
from repro.faults.model import CrashEvent, FaultTimeline
from repro.simulator.bandwidth import fair_share
from repro.simulator.burst_buffer import BurstBufferState
from repro.simulator.interface import (
    ApplicationPhase,
    ApplicationView,
    SchedulerProtocol,
    SystemView,
)
from repro.simulator.metrics import (
    ApplicationRecord,
    BurstBufferStats,
    FaultStats,
    InstanceRecord,
    SimulationResult,
)
from repro.obs.telemetry import recorder as _obs_recorder
from repro.simulator.queue import EventHeap
from repro.utils.validation import ValidationError

#: Process-wide telemetry funnel.  The engine only *accumulates plain int
#: counters* during a run and flushes them once at the end when the
#: recorder is enabled — no clocks, no per-event telemetry calls, so the
#: hot loop stays at native speed and the determinism contract is
#: untouched (telemetry never reaches results or store keys).
_OBS = _obs_recorder()

__all__ = ["SimulationError", "StallError", "SimulatorConfig", "Simulator", "simulate"]

#: Absolute slack (seconds / bytes) used when comparing event times and
#: residual volumes.  Scales are seconds and bytes, so 1e-6 is far below any
#: physically meaningful quantity while being far above accumulated rounding.
_TIME_EPS = 1e-9
_VOLUME_EPS = 1e-6

#: Kinds of time-certain events kept in the heap.  I/O completions are not
#: heap events: their times depend on the bandwidth assignment, which changes
#: at every event, so they are derived from the active-transfer list instead.
_RELEASE = 0
_COMPUTE_END = 1


class SimulationError(RuntimeError):
    """Raised when the simulation cannot proceed or an invariant is broken."""


class StallError(SimulationError):
    """Raised when applications wait for I/O forever (scheduler deadlock,
    or a permanent blackout window with applications still wanting I/O)."""


def _stall_message(
    scheduler_name: str,
    app_names: list[str],
    time: float,
    timeline: Optional[FaultTimeline],
) -> str:
    """Diagnostic for a stall: who is stuck, when, and under which faults.

    Shared by both engines so the diagnosis never diverges.  The message
    keeps the ``"stalled"`` / ``"N application(s)"`` phrasing the guard-rail
    tests (and downstream log scrapers) match on.
    """
    message = (
        f"scheduler {scheduler_name!r} left {len(app_names)} application(s) "
        "stalled with no future event to unblock them "
        f"(stalled: {', '.join(app_names)}; simulation time t={time:g})"
    )
    if timeline is not None:
        active = timeline.active_windows(time)
        if active:
            windows = ", ".join(
                f"[{w.start:g}, {w.end:g}) factor={w.factor:g}" for w in active
            )
            message += f"; active fault window(s): {windows}"
    return message


@dataclass(frozen=True)
class SimulatorConfig:
    """Tunable knobs of a simulation run.

    Attributes
    ----------
    use_burst_buffer:
        Route writes through the platform's burst buffer when it has one.
        The paper's heuristics run without; the Intrepid/Mira baselines run
        with.
    record_events:
        Keep a full :class:`~repro.core.events.EventLog` (slower, used by
        tests and the quickstart example).
    max_time:
        Hard horizon; applications still running at that point are truncated
        and scored on the work they completed.
    max_events:
        Safety valve against schedulers that thrash (each event triggers a
        reallocation); generously above anything a correct run needs.
    """

    use_burst_buffer: bool = False
    record_events: bool = False
    max_time: float = math.inf
    max_events: int = 10_000_000


@dataclass(eq=False)
class _Runtime:
    """Mutable per-application state inside the engine.

    Beyond the simulation state proper, each runtime carries the fast-path
    bookkeeping: its insertion index (the deterministic ordering key every
    candidate list and transition sweep uses), the compute epoch that
    invalidates stale heap entries, and the memoized scheduler view with its
    epoch (``view_epoch`` is bumped by every mutation that can change the
    view, so an unchanged epoch plus an unchanged achieved efficiency means
    the cached view is still exact).
    """

    app: Application
    index: int = 0
    peak: float = 0.0
    phase: ApplicationPhase = ApplicationPhase.NOT_RELEASED
    instance_idx: int = 0
    executed_work: float = 0.0
    completed_instance_work: float = 0.0
    compute_start: float = 0.0
    compute_end: float = math.inf
    remaining_io: float = 0.0
    io_started: bool = False
    io_first_transfer: Optional[float] = None
    io_request_time: Optional[float] = None
    last_io_end: float = -math.inf
    completion_time: float = math.nan
    total_io_transferred: float = 0.0
    current_rate: float = 0.0
    instance_records: list[InstanceRecord] = field(default_factory=list)
    # Fault-injection state: a recovering application is re-reading its
    # checkpoint (``remaining_io`` holds recovery bytes, not instance I/O).
    recovering: bool = False
    n_crashes: int = 0
    recovery_io: float = 0.0
    # Fast-path bookkeeping.
    compute_epoch: int = 0
    view_epoch: int = 0
    opt_instance_idx: int = -1
    opt_value: float = 1.0
    cached_view: Optional[ApplicationView] = None
    cached_view_epoch: int = -1

    @property
    def done(self) -> bool:
        return self.phase == ApplicationPhase.DONE

    @property
    def wants_io(self) -> bool:
        return self.phase in (ApplicationPhase.IO_PENDING, ApplicationPhase.DOING_IO)

    def current_instance(self):
        return self.app.instances[self.instance_idx]


def _entry_valid(entry: tuple[int, "_Runtime", int]) -> bool:
    """True while a heap entry still describes a live future transition.

    Release entries stay valid until the release fires; compute entries are
    invalidated by any phase change (zero-work instances chain straight into
    I/O) or by a later compute phase of the same application (epoch bump).
    """
    kind, rt, epoch = entry
    if kind == _RELEASE:
        return rt.phase is ApplicationPhase.NOT_RELEASED
    return rt.phase is ApplicationPhase.COMPUTING and epoch == rt.compute_epoch


#: Sort key for deterministic insertion-order sweeps (C-level attrgetter —
#: it runs once per candidate per event).
_by_index = attrgetter("index")


class Simulator:
    """Runs one scenario under one scheduler and produces a result record."""

    def __init__(self, scenario: Scenario, config: SimulatorConfig | None = None):
        self.scenario = scenario
        self.config = config or SimulatorConfig()
        self.platform = scenario.platform
        self._app_map = scenario.application_map()
        if self.config.use_burst_buffer and self.platform.burst_buffer is None:
            raise ValidationError(
                f"use_burst_buffer=True but platform {self.platform.name!r} "
                "has no burst buffer specification"
            )
        if scenario.faults is not None:
            unknown = sorted(scenario.faults.crash_app_names() - set(self._app_map))
            if unknown:
                raise ValidationError(
                    f"fault model crashes name unknown application(s): {unknown}"
                )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self, scheduler: SchedulerProtocol, event_log: EventLog | None = None
    ) -> SimulationResult:
        """Simulate the scenario to completion under ``scheduler``."""
        scheduler.reset()
        peak = self.platform.peak_application_bandwidth
        runtimes = {
            app.name: _Runtime(app=app, index=i, peak=peak(app.processors))
            for i, app in enumerate(self.scenario)
        }
        bb = (
            BurstBufferState(self.platform.burst_buffer)
            if (self.config.use_burst_buffer and self.platform.burst_buffer)
            else None
        )
        log = event_log if event_log is not None else (
            EventLog() if self.config.record_events else None
        )

        # Indexed engine state: the time-certain event heap (releases and
        # compute completions), the incrementally maintained I/O-candidate
        # list (kept sorted by insertion index — i.e. in scenario order, the
        # order the reference engine's dict sweep produces), and the done
        # counter replacing the all() sweep.
        heap: EventHeap[tuple[int, _Runtime, int]] = EventHeap()
        self._heap = heap
        self._candidates: list[_Runtime] = []
        self._n_done = 0
        self._runtimes = runtimes
        for rt in runtimes.values():
            heap.push(rt.app.release_time, (_RELEASE, rt, 0))

        # Fault injection: one forward-only timeline cursor per run — the
        # same :class:`FaultTimeline` the reference engine drives, so the
        # fault arithmetic is shared rather than reimplemented.
        faults = self.scenario.faults
        timeline = FaultTimeline(faults) if faults is not None else None
        self._timeline = timeline
        fault_factor = 1.0
        fault_brownout = 0.0
        fault_blackout = 0.0
        fault_stall = 0.0

        time = min(app.release_time for app in self.scenario)
        n_events = 0
        self._n_allocations = 0
        self._view_hits = 0
        self._view_rebuilds = 0
        time_bb_full = 0.0
        n_total = len(runtimes)
        io_active: list[_Runtime] = []

        # Release / start whatever is due at the initial instant.
        self._fire_due(time, log)

        while self._n_done < n_total:
            n_events += 1
            if n_events > self.config.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.config.max_events}; "
                    "the scheduler is probably thrashing"
                )

            # ---------------- allocation for the coming interval ----------
            candidates = self._candidates
            bb_ingest_rates: dict[str, float] = {}
            drain = bb.drain_rate() if bb is not None else 0.0
            if timeline is None:
                available = max(0.0, self.platform.system_bandwidth - drain)
            else:
                # A brown-out degrades the shared PFS only; the per-node cap
                # and the burst-buffer ingest fabric stay fault-free.
                fault_factor = timeline.factor_at(time)
                available = max(
                    0.0, self.platform.system_bandwidth * fault_factor - drain
                )

            if bb is not None and bb.can_absorb() and candidates:
                # Writes are absorbed by the burst buffer: fair share of the
                # ingest fabric, no scheduler involvement, no PFS bandwidth.
                views = [self._view_of(rt, time) for rt in candidates]
                alloc = fair_share(
                    views, self.platform.node_bandwidth, bb.ingest_capacity()
                )
                for rt in candidates:
                    bb_ingest_rates[rt.app.name] = alloc.gamma(rt.app.name) * rt.app.processors
                allocation = alloc
            elif candidates:
                view = self._system_view(runtimes, time, available)
                self._n_allocations += 1
                allocation = scheduler.allocate(view)
                if not isinstance(allocation, BandwidthAllocation):
                    raise SimulationError(
                        f"scheduler {scheduler.name!r} returned "
                        f"{type(allocation).__name__}, expected BandwidthAllocation"
                    )
                allocation.validate(self.platform, self._app_map, capacity=available)
            else:
                allocation = BandwidthAllocation.empty()

            # Apply the allocation; collect the applications that actually
            # hold bandwidth this interval (the only ones whose I/O state
            # evolves before the next event).
            total_ingest = 0.0
            prev_active = io_active
            io_active = []
            if bb_ingest_rates:
                # Burst-buffer absorption: sweep the candidates in scenario
                # order so ``total_ingest`` accumulates in exactly the order
                # the reference engine uses (float addition is order
                # sensitive, and the total feeds the pool's transitions).
                for rt in candidates:
                    rate = bb_ingest_rates.get(rt.app.name, 0.0)
                    total_ingest += rate
                    rt.current_rate = rate
                    if rate > 0:
                        if rt.io_first_transfer is None:
                            rt.io_first_transfer = time
                        rt.io_started = True
                        rt.phase = ApplicationPhase.DOING_IO
                        # The advance loop below bumps the view epoch for
                        # every active transfer, covering these mutations.
                        io_active.append(rt)
                    else:
                        if rt.phase is not ApplicationPhase.IO_PENDING:
                            rt.view_epoch += 1
                        rt.phase = ApplicationPhase.IO_PENDING
            else:
                # Fast path: only touch the applications whose assignment
                # changed — the served ones (allocations carry strictly
                # positive gammas by construction) and the previously active
                # ones that just lost their bandwidth.  Zero bandwidth means
                # pending: whether the transfer already started or not, an
                # interrupted application does not keep the DOING_IO flag.
                served = allocation.per_processor_bandwidth
                for rt in prev_active:
                    if (
                        rt.phase is ApplicationPhase.DOING_IO
                        and rt.app.name not in served
                    ):
                        rt.current_rate = 0.0
                        rt.view_epoch += 1
                        rt.phase = ApplicationPhase.IO_PENDING
                for name, gamma in served.items():
                    rt = runtimes[name]
                    phase = rt.phase
                    if (
                        phase is not ApplicationPhase.IO_PENDING
                        and phase is not ApplicationPhase.DOING_IO
                    ):
                        # Allocations to non-candidates were silently inert
                        # in the reference engine's candidate sweep; keep
                        # ignoring them.
                        continue
                    rt.current_rate = gamma * rt.app.processors
                    if rt.io_first_transfer is None:
                        rt.io_first_transfer = time
                    rt.io_started = True
                    rt.phase = ApplicationPhase.DOING_IO
                    io_active.append(rt)

            # ---------------- find the next event -------------------------
            dt = self._next_event_delta(io_active, bb, total_ingest, time)
            if dt is None:
                if candidates:
                    raise StallError(
                        _stall_message(
                            scheduler.name,
                            [rt.app.name for rt in candidates],
                            time,
                            timeline,
                        )
                    )
                raise SimulationError("no future event but applications remain")

            if time + dt > self.config.max_time:
                dt = self.config.max_time - time
                if dt <= _TIME_EPS:
                    break

            if timeline is not None and fault_factor < 1.0:
                fault_brownout += dt
                if fault_factor <= 0.0:
                    fault_blackout += dt
                if candidates:
                    fault_stall += dt

            # ---------------- advance the interval ------------------------
            for rt in io_active:
                # Clamp to the remaining volume: when the interval is cut
                # by an unrelated event the transfer may finish inside it,
                # and the excess must not be counted as moved bytes.
                moved = min(rt.current_rate * dt, rt.remaining_io)
                rt.remaining_io = max(0.0, rt.remaining_io - moved)
                rt.total_io_transferred += moved
                if rt.recovering:
                    rt.recovery_io += moved
                rt.view_epoch += 1
            if bb is not None:
                if not bb.can_absorb():
                    time_bb_full += dt
                bb.advance(dt, total_ingest)
            time += dt

            # ---------------- fire transitions at the new time ------------
            self._fire_due(time, log, io_active)

            if time >= self.config.max_time:
                break

        self._finalize_truncated(runtimes, min(time, self.config.max_time))

        records = {
            name: self._record_of(rt) for name, rt in runtimes.items()
        }
        makespan = max(rec.completion_time for rec in records.values())
        bb_stats = None
        if bb is not None:
            bb_stats = BurstBufferStats(
                total_absorbed=bb.total_absorbed,
                total_drained=bb.total_drained,
                final_level=bb.level,
                time_full=time_bb_full,
            )
        fault_stats = None
        if timeline is not None:
            fault_stats = FaultStats(
                n_crashes=sum(rt.n_crashes for rt in runtimes.values()),
                restarts={
                    rt.app.name: rt.n_crashes
                    for rt in runtimes.values()
                    if rt.n_crashes
                },
                brownout_time=fault_brownout,
                blackout_time=fault_blackout,
                stall_time=fault_stall,
                recovery_io=sum(rt.recovery_io for rt in runtimes.values()),
            )
        if _OBS.enabled:
            # One flush per run: the loop above only bumped local ints.
            _OBS.count(
                "repro_engine_allocations_total",
                float(self._n_allocations), engine="heap",
            )
            _OBS.count(
                "repro_engine_view_cache_hits_total",
                float(self._view_hits), engine="heap",
            )
            _OBS.count(
                "repro_engine_view_cache_rebuilds_total",
                float(self._view_rebuilds), engine="heap",
            )
            _OBS.count(
                "repro_engine_events_total", float(n_events), engine="heap"
            )
        return SimulationResult(
            scenario_label=self.scenario.label,
            scheduler_name=scheduler.name,
            platform=self.platform,
            records=records,
            makespan=makespan,
            n_events=n_events,
            burst_buffer=bb_stats,
            fault_stats=fault_stats,
        )

    # ------------------------------------------------------------------ #
    # State transitions
    # ------------------------------------------------------------------ #
    def _fire_due(
        self, time: float, log: EventLog | None, io_active: list[_Runtime] | tuple = ()
    ) -> None:
        """Fire every transition due at ``time``.

        Due applications come from two indexed sources — heap entries
        (releases, compute completions) and finished transfers among the
        interval's active I/O — instead of a full sweep.  They are fired in
        insertion order, matching the reference engine's dict-order sweep so
        that event logs serialize identically.
        """
        crashed: list[_Runtime] = []
        if self._timeline is not None:
            # Crashes fire before the ordinary transitions of the same
            # instant: an instance whose I/O "just finished" when its
            # application dies is lost, deterministically, in both engines.
            runtimes = self._runtimes
            for crash in self._timeline.pop_due_crashes(time):
                rt = runtimes.get(crash.app_name)
                if rt is not None and self._apply_crash(rt, crash, time, log):
                    crashed.append(rt)
        due = self._heap.pop_due(time + _TIME_EPS, _entry_valid)
        fired = [entry[1] for entry in due]
        fired.extend(crashed)
        for rt in io_active:
            if rt.remaining_io <= _VOLUME_EPS:
                fired.append(rt)
        if len(fired) > 1:
            # Heap-due (NOT_RELEASED / COMPUTING) and transfer-due (I/O
            # phases) populations are disjoint, so no deduplication needed —
            # except for crashed runtimes, which can coincide with a
            # transfer-due entry (a ~zero-byte checkpoint re-read) or repeat
            # (two crashes of one application at the same instant).
            fired.sort(key=_by_index)
            if crashed:
                deduped = [fired[0]]
                for rt in fired[1:]:
                    if rt is not deduped[-1]:
                        deduped.append(rt)
                fired = deduped
        for rt in fired:
            self._transition(rt, time, log)

    def _transition(self, rt: _Runtime, time: float, log: EventLog | None) -> None:
        """The per-application transition cascade (release → compute → I/O).

        The three sequential checks replicate one iteration of the reference
        engine's sweep: a release may start a compute phase that is already
        over (tiny work), which in turn may request I/O that is already
        complete (tiny volume) — every step of the chain fires at the same
        instant.
        """
        if (
            rt.phase is ApplicationPhase.NOT_RELEASED
            and rt.app.release_time <= time + _TIME_EPS
        ):
            self._log(log, time, EventType.APP_RELEASE, rt.app.name)
            self._start_compute(rt, time, log)
        if (
            rt.phase is ApplicationPhase.COMPUTING
            and rt.compute_end <= time + _TIME_EPS
        ):
            rt.executed_work += rt.current_instance().work
            rt.view_epoch += 1
            self._request_io(rt, time, log)
        if rt.wants_io and rt.remaining_io <= _VOLUME_EPS:
            if rt.recovering:
                self._finish_recovery(rt, time, log)
            else:
                self._complete_instance(rt, time, log)

    def _apply_crash(
        self, rt: _Runtime, crash: CrashEvent, time: float, log: EventLog | None
    ) -> bool:
        """Crash ``rt``: discard the in-flight instance, queue recovery I/O.

        Returns True when the crash actually landed (crashes aimed at
        applications outside the system — not yet released, or already done
        — are no-ops).  A crash during recovery restarts the checkpoint
        re-read from scratch.
        """
        phase = rt.phase
        if phase is ApplicationPhase.DONE or phase is ApplicationPhase.NOT_RELEASED:
            return False
        rt.n_crashes += 1
        self._log(log, time, EventType.APP_CRASH, rt.app.name, rt.instance_idx)
        if phase is ApplicationPhase.COMPUTING:
            # Invalidate the pending compute-end heap entry; the application
            # becomes an I/O candidate (the recovery read) instead.
            rt.compute_epoch += 1
            insort(self._candidates, rt, key=_by_index)
        elif not rt.recovering:
            # The instance's compute chunk was credited at compute end; the
            # crash loses that progress (partial compute progress of a
            # COMPUTING application was never credited, so there is nothing
            # to subtract there).
            rt.executed_work -= rt.current_instance().work
        rt.recovering = True
        rt.phase = ApplicationPhase.IO_PENDING
        rt.remaining_io = crash.checkpoint_io
        rt.io_started = False
        rt.io_first_transfer = None
        rt.io_request_time = time
        rt.current_rate = 0.0
        rt.view_epoch += 1
        return True

    def _finish_recovery(self, rt: _Runtime, time: float, log: EventLog | None) -> None:
        """Checkpoint re-read done: restart the crashed instance from scratch."""
        rt.recovering = False
        rt.remaining_io = 0.0
        rt.current_rate = 0.0
        rt.io_started = False
        rt.io_first_transfer = None
        rt.io_request_time = None
        rt.view_epoch += 1
        candidates = self._candidates
        i = bisect_left(candidates, rt.index, key=_by_index)
        if i < len(candidates) and candidates[i] is rt:
            del candidates[i]
        self._log(log, time, EventType.APP_RESTART, rt.app.name, rt.instance_idx)
        self._start_compute(rt, time, log)

    def _start_compute(self, rt: _Runtime, time: float, log: EventLog | None) -> None:
        inst = rt.current_instance()
        rt.phase = ApplicationPhase.COMPUTING
        rt.compute_start = time
        rt.compute_end = time + inst.work
        rt.current_rate = 0.0
        rt.compute_epoch += 1
        rt.view_epoch += 1
        if inst.work <= _TIME_EPS:
            rt.executed_work += inst.work
            self._request_io(rt, time, log)
        else:
            self._heap.push(rt.compute_end, (_COMPUTE_END, rt, rt.compute_epoch))

    def _request_io(self, rt: _Runtime, time: float, log: EventLog | None) -> None:
        inst = rt.current_instance()
        rt.compute_end = min(rt.compute_end, time)
        rt.view_epoch += 1
        if inst.io_volume <= _VOLUME_EPS:
            # Instance without I/O: it is complete as soon as computation ends.
            rt.remaining_io = 0.0
            rt.io_request_time = None
            rt.io_first_transfer = None
            rt.phase = ApplicationPhase.IO_PENDING
            self._complete_instance(rt, time, log)
            return
        rt.phase = ApplicationPhase.IO_PENDING
        rt.remaining_io = inst.io_volume
        rt.io_started = False
        rt.io_first_transfer = None
        rt.io_request_time = time
        rt.current_rate = 0.0
        insort(self._candidates, rt, key=_by_index)
        self._log(log, time, EventType.IO_REQUEST, rt.app.name, rt.instance_idx)

    def _complete_instance(self, rt: _Runtime, time: float, log: EventLog | None) -> None:
        inst = rt.current_instance()
        rt.instance_records.append(
            InstanceRecord(
                index=rt.instance_idx,
                work=inst.work,
                io_volume=inst.io_volume,
                compute_start=rt.compute_start,
                compute_end=rt.compute_start + inst.work,
                io_first_transfer=rt.io_first_transfer,
                io_end=time,
            )
        )
        if inst.io_volume > _VOLUME_EPS:
            self._log(log, time, EventType.IO_COMPLETE, rt.app.name, rt.instance_idx)
        rt.completed_instance_work += inst.work
        rt.last_io_end = time
        rt.remaining_io = 0.0
        rt.current_rate = 0.0
        rt.io_started = False
        rt.io_first_transfer = None
        rt.io_request_time = None
        rt.instance_idx += 1
        rt.view_epoch += 1
        # Remove from the sorted candidate list (a no-op when the instance
        # completed without ever becoming a candidate, e.g. zero I/O volume).
        candidates = self._candidates
        i = bisect_left(candidates, rt.index, key=_by_index)
        if i < len(candidates) and candidates[i] is rt:
            del candidates[i]
        if rt.instance_idx >= rt.app.n_instances:
            rt.phase = ApplicationPhase.DONE
            rt.completion_time = time
            self._n_done += 1
            self._log(log, time, EventType.APP_COMPLETE, rt.app.name)
        else:
            self._start_compute(rt, time, log)

    # ------------------------------------------------------------------ #
    # Event horizon
    # ------------------------------------------------------------------ #
    def _next_event_delta(
        self,
        io_active: list[_Runtime],
        bb: BurstBufferState | None,
        total_ingest: float,
        time: float,
    ) -> Optional[float]:
        """Seconds until the next event, or None if nothing will ever happen.

        The earliest time-certain event is a heap peek (lazy invalidation
        drops stale entries), active transfers contribute their completion
        deltas, and the burst buffer its next behavioural transition — no
        full sweep.  Clamping the minimum at ``_TIME_EPS`` makes zero-length
        deltas (a transition due "now" after floating-point rounding) still
        advance time instead of looping forever, and the per-source clamp at
        0 keeps a past-due event from being skipped in favour of a later one.
        """
        deltas: list[float] = []
        next_certain = self._heap.peek_time(_entry_valid)
        if next_certain is not None:
            deltas.append(max(0.0, next_certain - time))
        for rt in io_active:
            deltas.append(rt.remaining_io / rt.current_rate)
        if bb is not None:
            transition = bb.next_transition(total_ingest)
            if transition is not None:
                deltas.append(transition)
        if self._timeline is not None:
            # Fault breakpoints are time-certain events: the interval must be
            # cut at every degradation-factor change and at every crash so
            # rates stay piecewise-constant between events.
            boundary = self._timeline.next_boundary(time)
            if boundary is not None:
                deltas.append(boundary - time)
            crash_time = self._timeline.peek_crash_time()
            if crash_time is not None:
                deltas.append(max(0.0, crash_time - time))
        eligible = [d for d in deltas if d >= 0.0]
        if not eligible:
            return None
        return max(min(eligible), _TIME_EPS)

    # ------------------------------------------------------------------ #
    # Views and records
    # ------------------------------------------------------------------ #
    def _view_of(self, rt: _Runtime, time: float) -> ApplicationView:
        app = rt.app
        idx = rt.instance_idx
        # Optimal efficiency over the instances seen so far (at least one):
        # an O(1) lookup in the application's cached prefix sums, memoized
        # until the application advances to its next instance.
        if rt.opt_instance_idx != idx:
            upto = min(idx + 1, len(app.instances))
            works = app.cumulative_work[upto - 1]
            vols = app.cumulative_io_volume[upto - 1]
            peak = rt.peak
            denom = works + (vols / peak if peak > 0 else 0.0)
            rt.opt_value = works / denom if denom > 0 else 1.0
            rt.opt_instance_idx = idx
        optimal = rt.opt_value
        elapsed = time - app.release_time
        if elapsed > _TIME_EPS:
            # Use the work of every *finished compute chunk* (not only fully
            # completed instances): an application that just spent w seconds
            # computing has made real progress even though its instance's I/O
            # is still pending, and the heuristics' rankings degenerate (every
            # first-instance application ties at zero) if that progress is
            # ignored.  At completion time the two definitions coincide.
            achieved = rt.executed_work / elapsed
        else:
            achieved = optimal
        # Reuse the memoized view when nothing observable changed: the epoch
        # guards every state field, and the achieved efficiency (the one
        # quantity that drifts with time alone) is compared explicitly — it
        # is constant for unreleased applications and for applications that
        # have not finished a compute chunk yet.  When ONLY the achieved
        # efficiency moved (an idle candidate or a computing application
        # aging between events — the majority of rebuilds), clone the cached
        # view with a C-level dict copy instead of re-assembling all twelve
        # fields.
        cached = rt.cached_view
        if cached is not None and rt.cached_view_epoch == rt.view_epoch:
            self._view_hits += 1
            if cached.achieved_efficiency == achieved:
                return cached
            fields = dict(cached.__dict__)
            fields["achieved_efficiency"] = achieved
            view = ApplicationView._build_fast(fields)
            rt.cached_view = view
            return view
        self._view_rebuilds += 1
        phase = rt.phase
        wants = (
            phase is ApplicationPhase.IO_PENDING
            or phase is ApplicationPhase.DOING_IO
        )
        view = ApplicationView._build_fast(
            {
                "name": app.name,
                "processors": app.processors,
                "phase": phase,
                "remaining_io_volume": rt.remaining_io if wants else 0.0,
                "io_started": rt.io_started,
                "achieved_efficiency": achieved,
                "optimal_efficiency": optimal,
                "last_io_end": rt.last_io_end,
                "io_request_time": rt.io_request_time,
                "instance_index": idx,
                "n_instances": len(app.instances),
                "total_io_transferred": rt.total_io_transferred,
            }
        )
        rt.cached_view = view
        rt.cached_view_epoch = rt.view_epoch
        return view

    def _system_view(
        self, runtimes: dict[str, _Runtime], time: float, available: float
    ) -> SystemView:
        view_of = self._view_of
        done = ApplicationPhase.DONE
        views = tuple(
            [view_of(rt, time) for rt in runtimes.values() if rt.phase is not done]
        )
        return SystemView._build_fast(
            {
                "time": time,
                "platform": self.platform,
                "available_bandwidth": available,
                "applications": views,
            }
        )

    def _finalize_truncated(self, runtimes: dict[str, _Runtime], time: float) -> None:
        """Assign completion data to applications cut off by ``max_time``."""
        for rt in runtimes.values():
            if not rt.done:
                rt.completion_time = time
                rt.phase = ApplicationPhase.DONE

    def _record_of(self, rt: _Runtime) -> ApplicationRecord:
        app = rt.app
        peak = self.platform.peak_application_bandwidth(app.processors)
        finished_all = rt.instance_idx >= app.n_instances
        if finished_all:
            dedicated_io_time = app.total_io_volume / peak if peak > 0 else 0.0
            executed_work = app.total_work
        else:
            # Truncated run: score the work and I/O actually performed, so the
            # efficiency ratio compares like with like.
            dedicated_io_time = rt.total_io_transferred / peak if peak > 0 else 0.0
            executed_work = rt.completed_instance_work
        return ApplicationRecord(
            application=app,
            release_time=app.release_time,
            completion_time=rt.completion_time,
            executed_work=executed_work,
            dedicated_io_time=dedicated_io_time,
            total_io_transferred=rt.total_io_transferred,
            instances=list(rt.instance_records),
            restarts=rt.n_crashes,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _log(
        log: EventLog | None,
        time: float,
        event_type: EventType,
        app_name: str | None = None,
        instance_index: int | None = None,
    ) -> None:
        if log is not None:
            log.append(
                Event(
                    time=time,
                    event_type=event_type,
                    app_name=app_name,
                    instance_index=instance_index,
                )
            )


def simulate(
    scenario: Scenario,
    scheduler: SchedulerProtocol,
    config: SimulatorConfig | None = None,
    event_log: EventLog | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it once."""
    return Simulator(scenario, config).run(scheduler, event_log=event_log)

"""Scheduler-facing view of the simulation state.

The online scheduler of Section 3.1 "looks at the current state of the
system, which is represented by the application efficiency and the amount of
I/O already performed by each application", and chooses which applications
may transfer.  :class:`SystemView` is exactly that read-only snapshot: it is
rebuilt at every event and handed to the scheduler, which answers with a
:class:`~repro.core.allocation.BandwidthAllocation`.

Keeping the view immutable and self-contained means heuristics can be unit
tested without running the engine at all — the test just builds a view by
hand and inspects the returned allocation.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Optional, Protocol, runtime_checkable

from repro.core.allocation import BandwidthAllocation
from repro.core.platform import Platform

__all__ = ["ApplicationPhase", "ApplicationView", "SystemView", "SchedulerProtocol"]


class ApplicationPhase(enum.Enum):
    """Lifecycle phase of an application inside the simulator."""

    NOT_RELEASED = "not_released"
    COMPUTING = "computing"
    #: The compute phase finished; the application wants to transfer I/O but
    #: currently has zero bandwidth (it is stalled, waiting for the scheduler).
    IO_PENDING = "io_pending"
    #: The application currently holds bandwidth and is transferring.
    DOING_IO = "doing_io"
    DONE = "done"


@dataclass(frozen=True)
class ApplicationView:
    """Read-only snapshot of one application, as the scheduler sees it.

    Attributes
    ----------
    name, processors:
        Identity and ``beta^{(k)}``.
    phase:
        Current :class:`ApplicationPhase`.
    remaining_io_volume:
        Bytes still to transfer for the current instance (0 unless the
        application is in an I/O phase).
    io_started:
        True once the current instance's transfer has begun — the
        ``Priority`` variants never preempt such applications.
    achieved_efficiency:
        ``rho_tilde^{(k)}(t)`` at the view's time.
    optimal_efficiency:
        ``rho^{(k)}(t)`` (congestion-free efficiency over the instances seen
        so far; for periodic applications this is constant).
    last_io_end:
        Time at which the application last completed an instance's I/O
        (``-inf`` if it never did); the RoundRobin heuristic's fairness key.
    io_request_time:
        Time at which the current I/O request was issued (None outside I/O
        phases); used for FCFS ordering and waiting-time statistics.
    instance_index, n_instances:
        Progress indicator (0-based index of the instance being executed).
    total_io_transferred:
        Bytes moved so far, all instances included.
    """

    name: str
    processors: int
    phase: ApplicationPhase
    remaining_io_volume: float
    io_started: bool
    achieved_efficiency: float
    optimal_efficiency: float
    last_io_end: float
    io_request_time: Optional[float]
    instance_index: int
    n_instances: int
    total_io_transferred: float

    @property
    def wants_io(self) -> bool:
        """True when the application is ready to transfer (pending or active)."""
        # Identity checks on the enum members: this predicate runs once per
        # application per event in the engine's hot path.
        phase = self.phase
        return phase is ApplicationPhase.IO_PENDING or phase is ApplicationPhase.DOING_IO

    @classmethod
    def _build_fast(cls, fields: dict[str, Any]) -> "ApplicationView":
        """Engine-internal constructor bypassing the frozen-dataclass ``__init__``.

        A simulation builds one view per live application per event — millions
        over a large run — and the generated ``__init__`` pays one guarded
        ``object.__setattr__`` per field.  Installing ``fields`` directly as
        the instance ``__dict__`` is several times cheaper and produces an
        object indistinguishable from a normally constructed one (same
        fields, equality, hashing and repr).  ``fields`` must contain exactly
        the dataclass fields; the view takes ownership of the dict — callers
        must not mutate it afterwards.
        """
        view = object.__new__(cls)
        object.__setattr__(view, "__dict__", fields)
        return view

    @property
    def efficiency_ratio(self) -> float:
        """``rho_tilde / rho`` — the progress ratio the heuristics sort on.

        Bounded to [0, 1]; an application that has not been slowed down at
        all has ratio 1.
        """
        if self.optimal_efficiency <= 0:
            return 1.0
        return min(1.0, self.achieved_efficiency / self.optimal_efficiency)

    @property
    def order_key(self) -> tuple[float, str]:
        """``(request time or inf, name)`` — the shared deterministic tie-break.

        Every heuristic ordering ends with this pair; it is computed once
        and cached on the view, which the engine's view reuse turns into a
        per-*event* cost instead of a per-*sort* one.  The cache only
        depends on ``io_request_time`` and ``name``, so the engine's
        efficiency-only view clone (which copies the ``__dict__`` wholesale)
        can safely carry it over.
        """
        key: Optional[tuple[float, str]] = self.__dict__.get("_order_key")
        if key is None:
            t = self.io_request_time
            key = (t if t is not None else math.inf, self.name)
            self.__dict__["_order_key"] = key
        return key


@dataclass(frozen=True)
class SystemView:
    """Snapshot of the whole system at one scheduling event.

    Attributes
    ----------
    time:
        Current simulation time.
    platform:
        The platform (for ``b`` and ``B``).
    available_bandwidth:
        Total back-end bandwidth the scheduler may distribute at this event.
        Usually ``B``; smaller when a burst buffer is draining in the
        background.
    applications:
        One :class:`ApplicationView` per application still in the system.
    """

    time: float
    platform: Platform
    available_bandwidth: float
    applications: tuple[ApplicationView, ...]

    @classmethod
    def _build_fast(cls, fields: dict[str, Any]) -> "SystemView":
        """Engine-internal constructor bypassing the frozen-dataclass ``__init__``.

        One view is built per scheduling event; installing ``fields`` as the
        instance ``__dict__`` skips the four guarded ``object.__setattr__``
        calls (same trick as :meth:`ApplicationView._build_fast`).  ``fields``
        must contain exactly the dataclass fields; the view takes ownership.
        """
        view = object.__new__(cls)
        object.__setattr__(view, "__dict__", fields)
        return view

    def io_candidates(self) -> tuple[ApplicationView, ...]:
        """Applications that want to perform I/O right now.

        Memoized: schedulers typically ask several times per event (ordering,
        feasibility checking, allocation), and the view is immutable, so the
        filtered tuple is computed once and cached on the instance.
        """
        cached: Optional[tuple[ApplicationView, ...]] = self.__dict__.get(
            "_io_candidates"
        )
        if cached is None:
            pending = ApplicationPhase.IO_PENDING
            doing = ApplicationPhase.DOING_IO
            cached = tuple(
                a
                for a in self.applications
                if a.phase is pending or a.phase is doing
            )
            self.__dict__["_io_candidates"] = cached
        return cached

    def candidate_names(self) -> frozenset[str]:
        """Names of the I/O candidates (memoized like :meth:`io_candidates`).

        Schedulers use it to cheaply sanity-check an ordering against the
        candidate set without rebuilding a throwaway set per allocation.
        """
        cached: Optional[frozenset[str]] = self.__dict__.get("_candidate_names")
        if cached is None:
            cached = frozenset(a.name for a in self.io_candidates())
            self.__dict__["_candidate_names"] = cached
        return cached

    def view(self, name: str) -> ApplicationView:
        """Look a single application view up by name."""
        for a in self.applications:
            if a.name == name:
                return a
        raise KeyError(f"no application named {name!r} in this view")

    @property
    def congested(self) -> bool:
        """True when the aggregate demand of I/O candidates exceeds supply."""
        demand = sum(
            min(a.processors * self.platform.node_bandwidth, self.available_bandwidth)
            for a in self.io_candidates()
        )
        return demand > self.available_bandwidth * (1 + 1e-12)


@runtime_checkable
class SchedulerProtocol(Protocol):
    """Anything the engine can drive: gets a view, returns an allocation."""

    #: Human-readable identifier used in result tables.
    name: str

    def allocate(self, view: SystemView) -> BandwidthAllocation:
        """Decide the bandwidth of every I/O candidate until the next event."""
        ...

    def reset(self) -> None:
        """Clear any internal state before a new simulation run."""
        ...

"""Result records produced by the simulator and derived metrics.

A simulation run produces one :class:`ApplicationRecord` per application
(with per-instance timings) wrapped into a :class:`SimulationResult`.  The
result object knows how to turn itself into the Section 2.2 objective values
(via :mod:`repro.core.objectives`) and into the per-application I/O
throughput figures behind Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.core.application import Application
from repro.core.objectives import (
    ApplicationOutcome,
    ObjectiveSummary,
    application_dilation,
    summarize,
)
from repro.core.platform import Platform
from repro.utils.validation import ValidationError

__all__ = [
    "InstanceRecord",
    "ApplicationRecord",
    "BurstBufferStats",
    "FaultStats",
    "SimulationResult",
]


@dataclass(frozen=True)
class InstanceRecord:
    """Timings of one executed instance.

    Attributes
    ----------
    index:
        0-based instance index within the application.
    work, io_volume:
        The instance's parameters (copied for convenience).
    compute_start, compute_end:
        Boundaries of the compute phase (``initW`` / ``endW`` of the paper).
    io_first_transfer:
        First time the instance actually received bandwidth (``initIO``);
        equals ``compute_end`` when the scheduler served it immediately and
        is ``None`` for instances with no I/O at all.
    io_end:
        Time the instance's I/O completed (== ``compute_end`` when the
        instance has no I/O).
    """

    index: int
    work: float
    io_volume: float
    compute_start: float
    compute_end: float
    io_first_transfer: Optional[float]
    io_end: float

    @property
    def io_phase_duration(self) -> float:
        """Wall-clock length of the I/O phase, stall time included."""
        return self.io_end - self.compute_end

    @property
    def io_wait(self) -> float:
        """Time spent stalled before the first byte was transferred."""
        if self.io_first_transfer is None:
            return 0.0
        return self.io_first_transfer - self.compute_end


@dataclass
class ApplicationRecord:
    """Complete execution record of one application.

    The record carries enough information to recompute every metric the
    paper reports: objectives (through :meth:`outcome`), observed I/O
    throughput (Figure 1), and per-instance waiting times.
    """

    application: Application
    release_time: float
    completion_time: float
    executed_work: float
    dedicated_io_time: float
    total_io_transferred: float
    instances: list[InstanceRecord] = field(default_factory=list)
    #: Crash/restart count under fault injection (0 on healthy platforms).
    restarts: int = 0

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Application name."""
        return self.application.name

    @property
    def processors(self) -> int:
        """``beta^{(k)}``."""
        return self.application.processors

    @property
    def time_in_io_phases(self) -> float:
        """Total wall-clock time spent in I/O phases (stalls included)."""
        return float(sum(r.io_phase_duration for r in self.instances))

    @property
    def total_io_wait(self) -> float:
        """Total time spent stalled waiting for bandwidth."""
        return float(sum(r.io_wait for r in self.instances))

    def outcome(self) -> ApplicationOutcome:
        """Objective-level view of this record."""
        return ApplicationOutcome(
            name=self.name,
            processors=self.processors,
            release_time=self.release_time,
            completion_time=self.completion_time,
            executed_work=self.executed_work,
            dedicated_io_time=self.dedicated_io_time,
        )

    def dilation(self) -> float:
        """Slowdown of this application (``rho / rho_tilde``)."""
        return application_dilation(self.outcome())

    def observed_io_throughput(self) -> float:
        """Average bytes/s achieved across the application's I/O phases.

        Stall time counts against the application, exactly like the
        application-perceived bandwidth that Figure 1 reports.
        Returns ``inf`` for applications that performed no I/O.
        """
        io_time = self.time_in_io_phases
        if io_time <= 0:
            return float("inf")
        return self.total_io_transferred / io_time

    def dedicated_io_throughput(self, platform: Platform) -> float:
        """Best-case bytes/s: ``min(beta * b, B)``."""
        return platform.peak_application_bandwidth(self.processors)

    def io_throughput_decrease(self, platform: Platform) -> float:
        """Fractional throughput loss versus dedicated mode (0 = no loss).

        This is the per-application quantity histogrammed in Figure 1.
        Applications without I/O report 0.
        """
        dedicated = self.dedicated_io_throughput(platform)
        observed = self.observed_io_throughput()
        if not np.isfinite(observed):
            return 0.0
        if dedicated <= 0:
            return 0.0
        return float(max(0.0, 1.0 - observed / dedicated))


@dataclass(frozen=True)
class BurstBufferStats:
    """Aggregate burst-buffer behaviour over one run.

    Attributes
    ----------
    total_absorbed:
        Bytes the buffer ingested from applications over the whole run.
    total_drained:
        Bytes destaged from the buffer to the parallel file system.
    final_level:
        Bytes still resident in the buffer when the run ended.
    time_full:
        Seconds the buffer spent completely full (writes spilling straight
        to the shared back-end).
    """

    total_absorbed: float
    total_drained: float
    final_level: float
    time_full: float


@dataclass(frozen=True)
class FaultStats:
    """Resilience metrics of one faulted run (``None`` on healthy platforms).

    Attributes
    ----------
    n_crashes:
        Crash events actually applied (crashes aimed at unreleased or
        already-finished applications are no-ops and do not count).
    restarts:
        Per-application applied crash counts, applications with at least
        one restart only, in scenario declaration order.
    brownout_time:
        Simulated seconds during which the effective PFS bandwidth was
        below nominal (factor < 1), within the run's horizon.
    blackout_time:
        The subset of ``brownout_time`` at factor 0 (no PFS bandwidth).
    stall_time:
        Seconds during which at least one application wanted I/O while the
        PFS was degraded — the stall time attributable to brown-outs.
    recovery_io:
        Bytes of checkpoint re-reads actually transferred (the extra I/O
        volume charged by crash/restart).
    """

    n_crashes: int
    restarts: Mapping[str, int]
    brownout_time: float
    blackout_time: float
    stall_time: float
    recovery_io: float

    def as_dict(self) -> dict[str, object]:
        """Plain-JSON form (payloads, store entries, CSV flattening)."""
        return {
            "n_crashes": self.n_crashes,
            "restarts": dict(self.restarts),
            "brownout_time": self.brownout_time,
            "blackout_time": self.blackout_time,
            "stall_time": self.stall_time,
            "recovery_io": self.recovery_io,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultStats":
        """Inverse of :meth:`as_dict` (store decode path)."""
        return cls(
            n_crashes=int(payload["n_crashes"]),
            restarts={str(k): int(v) for k, v in dict(payload["restarts"]).items()},
            brownout_time=float(payload["brownout_time"]),
            blackout_time=float(payload["blackout_time"]),
            stall_time=float(payload["stall_time"]),
            recovery_io=float(payload["recovery_io"]),
        )


@dataclass
class SimulationResult:
    """Everything the simulator returns for one (scenario, scheduler) run."""

    scenario_label: str
    scheduler_name: str
    platform: Platform
    records: dict[str, ApplicationRecord]
    makespan: float
    n_events: int
    burst_buffer: Optional[BurstBufferStats] = None
    fault_stats: Optional[FaultStats] = None

    def __post_init__(self) -> None:
        if not self.records:
            raise ValidationError("a simulation result needs at least one record")

    # ------------------------------------------------------------------ #
    def record(self, name: str) -> ApplicationRecord:
        """Record of one application."""
        return self.records[name]

    def outcomes(self) -> list[ApplicationOutcome]:
        """Objective-level outcomes, in deterministic (name) order."""
        return [self.records[k].outcome() for k in sorted(self.records)]

    def summary(self, total_processors: int | None = None) -> ObjectiveSummary:
        """SysEfficiency / Dilation / upper limit for this run.

        By default the objectives are normalized by the processors actually
        used by the scenario's applications (the paper normalizes per
        scenario, not by the full 40k-node machine, when replaying congested
        moments).
        """
        return summarize(self.outcomes(), total_processors)

    def dilations(self) -> dict[str, float]:
        """Per-application dilation map (Figure 16 data)."""
        return {name: rec.dilation() for name, rec in self.records.items()}

    def throughput_decreases(self) -> dict[str, float]:
        """Per-application I/O throughput decrease (Figure 1 data)."""
        return {
            name: rec.io_throughput_decrease(self.platform)
            for name, rec in self.records.items()
        }

    def total_io_volume(self) -> float:
        """Bytes transferred across all applications."""
        return float(sum(r.total_io_transferred for r in self.records.values()))

    def mean_io_wait(self) -> float:
        """Average stall time per application (diagnostic)."""
        waits = [r.total_io_wait for r in self.records.values()]
        return float(np.mean(waits)) if waits else 0.0

"""Burst-buffer staging layer used by the baseline system schedulers.

The paper compares its heuristics **without** burst buffers against the
Intrepid / Mira behaviour **with** burst buffers.  Burst buffers absorb I/O
bursts at (fast) compute-fabric speed and destage them to the parallel file
system in the background; as the introduction notes, "burst buffers cannot
prevent congestion at all times" — once the staging pool is full, writes fall
through to the congested file system.

The model here is intentionally simple but captures exactly the behaviour
the paper relies on:

* a single shared pool of ``capacity`` bytes;
* while the pool has free space, applications write into it at up to the
  ingest bandwidth (shared fairly) — their I/O phases complete quickly and
  do not consume file-system bandwidth;
* the pool destages continuously at up to ``drain_bandwidth`` (which is
  subtracted from the file-system bandwidth available for direct writes);
* when the pool is full, new writes go straight to the file system and
  experience congestion as usual.

The engine owns the pool's level and asks :class:`BurstBufferState` for the
time of the next *transition* (full / empty), which becomes a simulation
event so that bandwidth can be re-allocated at the exact moment behaviour
changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.platform import BurstBufferSpec
from repro.utils.validation import ValidationError, check_non_negative

__all__ = ["BurstBufferState"]

_EPS = 1e-9


@dataclass
class BurstBufferState:
    """Mutable run-time state of the shared burst-buffer pool.

    Attributes
    ----------
    spec:
        Static description (capacity, ingest and drain bandwidths).
    level:
        Bytes currently staged and not yet destaged to the file system.
    resume_fraction:
        Flow-control watermark: once the pool fills up, absorption stays
        blocked until the level drains back below ``resume_fraction *
        capacity``.  Without this hysteresis a full pool would re-open the
        moment a single byte drains and sustained congestion would stream
        through the buffer forever, which is not how staging layers behave
        (and would make the burst-buffer baseline unrealistically strong).
    blocked:
        True while the flow-control watermark keeps new writes out.
    total_absorbed:
        Cumulative bytes ever written into the pool (statistics).
    total_drained:
        Cumulative bytes destaged to the file system (statistics).
    """

    spec: BurstBufferSpec
    level: float = 0.0
    resume_fraction: float = 0.5
    blocked: bool = False
    total_absorbed: float = 0.0
    total_drained: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("level", self.level)
        if self.level > self.spec.capacity + _EPS:
            raise ValidationError(
                f"initial level {self.level} exceeds capacity {self.spec.capacity}"
            )
        if not (0.0 <= self.resume_fraction < 1.0):
            raise ValidationError(
                f"resume_fraction must be in [0, 1), got {self.resume_fraction}"
            )

    # ------------------------------------------------------------------ #
    @property
    def is_full(self) -> bool:
        """True when the pool has no staging space left."""
        return self.level >= self.spec.capacity - _EPS

    @property
    def is_empty(self) -> bool:
        """True when there is nothing left to destage."""
        return self.level <= _EPS

    @property
    def free_space(self) -> float:
        """Bytes of staging space still available."""
        return max(0.0, self.spec.capacity - self.level)

    @property
    def resume_level(self) -> float:
        """Level below which a blocked pool re-opens for absorption."""
        return self.resume_fraction * self.spec.capacity

    def can_absorb(self) -> bool:
        """True when applications may currently write into the pool."""
        return not self.blocked and not self.is_full

    def drain_rate(self) -> float:
        """Current destage rate towards the file system (bytes/s)."""
        return self.spec.drain_bandwidth if not self.is_empty else 0.0

    def ingest_capacity(self) -> float:
        """Aggregate rate at which applications may write into the pool now."""
        return self.spec.ingest_bandwidth if self.can_absorb() else 0.0

    # ------------------------------------------------------------------ #
    def next_transition(self, ingest_rate: float) -> Optional[float]:
        """Seconds until the pool changes behaviour at the given net flow.

        Transitions are: the pool fills up (absorption blocks), a blocked
        pool drains below its resume watermark (absorption resumes), or the
        pool empties (the drain stops).

        Parameters
        ----------
        ingest_rate:
            Aggregate rate (bytes/s) at which applications are currently
            writing into the pool.

        Returns
        -------
        float or None
            Time until the next state change, or ``None`` if the current
            rates never cause one.
        """
        check_non_negative("ingest_rate", ingest_rate)
        net = ingest_rate - self.drain_rate()
        if self.blocked:
            # Absorption is off; the pool only drains.
            if self.is_empty or self.drain_rate() <= _EPS:
                return None
            target = max(self.level - self.resume_level, 0.0)
            return max(target / self.drain_rate(), 0.0)
        if net > _EPS and not self.is_full:
            return self.free_space / net
        if net < -_EPS and not self.is_empty:
            return self.level / (-net)
        if ingest_rate <= _EPS and not self.is_empty:
            # Pure drain.
            return self.level / self.drain_rate()
        return None

    def advance(self, duration: float, ingest_rate: float) -> None:
        """Advance the pool state by ``duration`` seconds.

        The caller guarantees that no transition happens strictly inside the
        interval (the engine always cuts intervals at transition times), so a
        single linear update is exact; the level is clamped to the valid
        range to absorb floating-point error.  Crossing the capacity blocks
        absorption; a blocked pool re-opens once the level reaches the
        resume watermark.
        """
        check_non_negative("duration", duration)
        check_non_negative("ingest_rate", ingest_rate)
        drained = min(self.drain_rate() * duration, self.level + ingest_rate * duration)
        absorbed = ingest_rate * duration
        self.level = min(
            self.spec.capacity, max(0.0, self.level + absorbed - drained)
        )
        self.total_absorbed += absorbed
        self.total_drained += drained
        if self.is_full:
            self.blocked = True
        elif self.blocked and self.level <= self.resume_level + _EPS:
            self.blocked = False

    def reset(self) -> None:
        """Return to an empty pool (used between simulation runs)."""
        self.level = 0.0
        self.blocked = False
        self.total_absorbed = 0.0
        self.total_drained = 0.0

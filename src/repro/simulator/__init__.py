"""Discrete-event simulation substrate.

The simulator plays the role of the paper's Section 4 simulator: it executes
a :class:`~repro.core.scenario.Scenario` under any object implementing the
:class:`~repro.simulator.interface.SchedulerProtocol`, re-allocating
bandwidth at every event and returning a
:class:`~repro.simulator.metrics.SimulationResult` from which both
objectives (and every figure-level metric) can be computed.
"""

from repro.simulator.bandwidth import fair_share, favor_in_order, single_application_rate
from repro.simulator.batched import BatchedSimulator, batched_simulate
from repro.simulator.burst_buffer import BurstBufferState
from repro.simulator.engine import (
    SimulationError,
    Simulator,
    SimulatorConfig,
    StallError,
    simulate,
)
from repro.simulator.interface import (
    ApplicationPhase,
    ApplicationView,
    SchedulerProtocol,
    SystemView,
)
from repro.simulator.interference import (
    DEFAULT_INTERFERENCE,
    NO_INTERFERENCE,
    InterferenceModel,
)
from repro.simulator.metrics import (
    ApplicationRecord,
    BurstBufferStats,
    FaultStats,
    InstanceRecord,
    SimulationResult,
)
from repro.simulator.queue import EventHeap
from repro.simulator.reference import ReferenceSimulator, reference_simulate

__all__ = [
    "Simulator",
    "SimulatorConfig",
    "simulate",
    "ReferenceSimulator",
    "reference_simulate",
    "BatchedSimulator",
    "batched_simulate",
    "EventHeap",
    "SimulationError",
    "StallError",
    "ApplicationPhase",
    "ApplicationView",
    "SystemView",
    "SchedulerProtocol",
    "BandwidthAllocation",
    "fair_share",
    "favor_in_order",
    "single_application_rate",
    "BurstBufferState",
    "InterferenceModel",
    "DEFAULT_INTERFERENCE",
    "NO_INTERFERENCE",
    "ApplicationRecord",
    "InstanceRecord",
    "BurstBufferStats",
    "FaultStats",
    "SimulationResult",
]

from repro.core.allocation import BandwidthAllocation  # noqa: E402  (re-export)

"""Reference (naive) discrete-event engine — the pre-optimization semantics.

This module preserves the original straight-line implementation of the
engine: at every event it re-scans **all** applications to find candidates,
fire transitions, and compute the next event horizon, and it re-sums
instance prefixes inside every view.  That makes each event cost
O(n_apps × n_instances) — quadratic over a whole run — which is exactly what
:mod:`repro.simulator.engine` replaces with an indexed event heap and cached
prefix sums.

It is kept (and must stay behaviourally frozen) for two reasons:

* ``tests/test_engine_equivalence.py`` runs it head-to-head against the
  optimized engine and asserts identical makespans, per-application
  completion times and event counts — the optimized engine's correctness
  argument is "same timeline, same floats, faster bookkeeping";
* ``benchmarks/bench_engine_scaling.py`` uses it as the baseline when
  reporting the optimized engine's events/sec speedup in ``BENCH_engine.json``.

Do not use it for experiments; :func:`repro.simulator.engine.simulate` is a
drop-in replacement that produces the same results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.allocation import BandwidthAllocation
from repro.core.application import Application
from repro.core.events import Event, EventLog, EventType
from repro.core.scenario import Scenario
from repro.faults.model import CrashEvent, FaultTimeline
from repro.simulator.bandwidth import fair_share
from repro.simulator.burst_buffer import BurstBufferState
from repro.simulator.engine import (
    SimulationError,
    SimulatorConfig,
    StallError,
    _stall_message,
)
from repro.simulator.interface import (
    ApplicationPhase,
    ApplicationView,
    SchedulerProtocol,
    SystemView,
)
from repro.simulator.metrics import (
    ApplicationRecord,
    BurstBufferStats,
    FaultStats,
    InstanceRecord,
    SimulationResult,
)
from repro.utils.validation import ValidationError

__all__ = ["ReferenceSimulator", "reference_simulate"]

#: Absolute slack (seconds / bytes) used when comparing event times and
#: residual volumes.  Scales are seconds and bytes, so 1e-6 is far below any
#: physically meaningful quantity while being far above accumulated rounding.
_TIME_EPS = 1e-9
_VOLUME_EPS = 1e-6


@dataclass
class _Runtime:
    """Mutable per-application state inside the engine."""

    app: Application
    phase: ApplicationPhase = ApplicationPhase.NOT_RELEASED
    instance_idx: int = 0
    executed_work: float = 0.0
    completed_instance_work: float = 0.0
    compute_start: float = 0.0
    compute_end: float = math.inf
    remaining_io: float = 0.0
    io_started: bool = False
    io_first_transfer: Optional[float] = None
    io_request_time: Optional[float] = None
    last_io_end: float = -math.inf
    completion_time: float = math.nan
    total_io_transferred: float = 0.0
    current_rate: float = 0.0
    instance_records: list[InstanceRecord] = field(default_factory=list)
    # Fault-injection state: a recovering application is re-reading its
    # checkpoint (``remaining_io`` holds recovery bytes, not instance I/O).
    recovering: bool = False
    n_crashes: int = 0
    recovery_io: float = 0.0

    @property
    def done(self) -> bool:
        return self.phase == ApplicationPhase.DONE

    @property
    def wants_io(self) -> bool:
        return self.phase in (ApplicationPhase.IO_PENDING, ApplicationPhase.DOING_IO)

    def current_instance(self):
        return self.app.instances[self.instance_idx]


class ReferenceSimulator:
    """The seed engine: full per-event scans, kept as the equivalence baseline."""

    def __init__(self, scenario: Scenario, config: SimulatorConfig | None = None):
        self.scenario = scenario
        self.config = config or SimulatorConfig()
        self.platform = scenario.platform
        self._app_map = scenario.application_map()
        if self.config.use_burst_buffer and self.platform.burst_buffer is None:
            raise ValidationError(
                f"use_burst_buffer=True but platform {self.platform.name!r} "
                "has no burst buffer specification"
            )
        if scenario.faults is not None:
            unknown = sorted(scenario.faults.crash_app_names() - set(self._app_map))
            if unknown:
                raise ValidationError(
                    f"fault model crashes name unknown application(s): {unknown}"
                )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self, scheduler: SchedulerProtocol, event_log: EventLog | None = None
    ) -> SimulationResult:
        """Simulate the scenario to completion under ``scheduler``."""
        scheduler.reset()
        runtimes = {app.name: _Runtime(app=app) for app in self.scenario}
        bb = (
            BurstBufferState(self.platform.burst_buffer)
            if (self.config.use_burst_buffer and self.platform.burst_buffer)
            else None
        )
        log = event_log if event_log is not None else (
            EventLog() if self.config.record_events else None
        )

        # Fault injection: one forward-only timeline cursor per run, shared
        # semantics with the optimized engine (same class interprets the
        # same model, so the engines cannot diverge on fault arithmetic).
        faults = self.scenario.faults
        timeline = FaultTimeline(faults) if faults is not None else None
        self._timeline = timeline
        fault_factor = 1.0
        fault_brownout = 0.0
        fault_blackout = 0.0
        fault_stall = 0.0

        time = min(app.release_time for app in self.scenario)
        n_events = 0
        time_bb_full = 0.0

        # Release / start whatever is due at the initial instant.
        self._process_transitions(runtimes, time, log)

        while not all(rt.done for rt in runtimes.values()):
            n_events += 1
            if n_events > self.config.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.config.max_events}; "
                    "the scheduler is probably thrashing"
                )

            # ---------------- allocation for the coming interval ----------
            candidates = [rt for rt in runtimes.values() if rt.wants_io]
            bb_ingest_rates: dict[str, float] = {}
            drain = bb.drain_rate() if bb is not None else 0.0
            if timeline is None:
                available = max(0.0, self.platform.system_bandwidth - drain)
            else:
                # A brown-out degrades the shared PFS only; the per-node cap
                # and the burst-buffer ingest fabric stay fault-free.
                fault_factor = timeline.factor_at(time)
                available = max(
                    0.0, self.platform.system_bandwidth * fault_factor - drain
                )

            if bb is not None and bb.can_absorb() and candidates:
                # Writes are absorbed by the burst buffer: fair share of the
                # ingest fabric, no scheduler involvement, no PFS bandwidth.
                views = [self._view_of(rt, time) for rt in candidates]
                alloc = fair_share(
                    views, self.platform.node_bandwidth, bb.ingest_capacity()
                )
                for rt in candidates:
                    bb_ingest_rates[rt.app.name] = alloc.gamma(rt.app.name) * rt.app.processors
                allocation = alloc
            elif candidates:
                view = self._system_view(runtimes, time, available)
                allocation = scheduler.allocate(view)
                if not isinstance(allocation, BandwidthAllocation):
                    raise SimulationError(
                        f"scheduler {scheduler.name!r} returned "
                        f"{type(allocation).__name__}, expected BandwidthAllocation"
                    )
                allocation.validate(self.platform, self._app_map, capacity=available)
            else:
                allocation = BandwidthAllocation.empty()

            # Apply the allocation to the candidates.
            total_ingest = 0.0
            for rt in candidates:
                if bb_ingest_rates:
                    rate = bb_ingest_rates.get(rt.app.name, 0.0)
                    total_ingest += rate
                else:
                    rate = allocation.gamma(rt.app.name) * rt.app.processors
                rt.current_rate = rate
                if rate > 0:
                    if rt.io_first_transfer is None:
                        rt.io_first_transfer = time
                    rt.io_started = True
                    rt.phase = ApplicationPhase.DOING_IO
                else:
                    # Zero bandwidth: whether the transfer already started or
                    # not, the application holds no bandwidth for the coming
                    # interval, so it is pending (an interrupted application
                    # does not keep the DOING_IO flag).
                    rt.phase = ApplicationPhase.IO_PENDING

            # ---------------- find the next event -------------------------
            dt = self._next_event_delta(runtimes, bb, total_ingest, time)
            if dt is None:
                if candidates:
                    raise StallError(
                        _stall_message(
                            scheduler.name,
                            [rt.app.name for rt in candidates],
                            time,
                            timeline,
                        )
                    )
                raise SimulationError("no future event but applications remain")

            if time + dt > self.config.max_time:
                dt = self.config.max_time - time
                if dt <= _TIME_EPS:
                    break

            if timeline is not None and fault_factor < 1.0:
                fault_brownout += dt
                if fault_factor <= 0.0:
                    fault_blackout += dt
                if candidates:
                    fault_stall += dt

            # ---------------- advance the interval ------------------------
            for rt in runtimes.values():
                if rt.wants_io and rt.current_rate > 0:
                    # Clamp to the remaining volume: when the interval is cut
                    # by an unrelated event the transfer may finish inside it,
                    # and the excess must not be counted as moved bytes.
                    moved = min(rt.current_rate * dt, rt.remaining_io)
                    rt.remaining_io = max(0.0, rt.remaining_io - moved)
                    rt.total_io_transferred += moved
                    if rt.recovering:
                        rt.recovery_io += moved
            if bb is not None:
                if not bb.can_absorb():
                    time_bb_full += dt
                bb.advance(dt, total_ingest)
            time += dt

            # ---------------- fire transitions at the new time ------------
            self._process_transitions(runtimes, time, log)

            if time >= self.config.max_time:
                break

        self._finalize_truncated(runtimes, min(time, self.config.max_time))

        records = {
            name: self._record_of(rt) for name, rt in runtimes.items()
        }
        makespan = max(rec.completion_time for rec in records.values())
        bb_stats = None
        if bb is not None:
            bb_stats = BurstBufferStats(
                total_absorbed=bb.total_absorbed,
                total_drained=bb.total_drained,
                final_level=bb.level,
                time_full=time_bb_full,
            )
        fault_stats = None
        if timeline is not None:
            fault_stats = FaultStats(
                n_crashes=sum(rt.n_crashes for rt in runtimes.values()),
                restarts={
                    rt.app.name: rt.n_crashes
                    for rt in runtimes.values()
                    if rt.n_crashes
                },
                brownout_time=fault_brownout,
                blackout_time=fault_blackout,
                stall_time=fault_stall,
                recovery_io=sum(rt.recovery_io for rt in runtimes.values()),
            )
        return SimulationResult(
            scenario_label=self.scenario.label,
            scheduler_name=scheduler.name,
            platform=self.platform,
            records=records,
            makespan=makespan,
            n_events=n_events,
            burst_buffer=bb_stats,
            fault_stats=fault_stats,
        )

    # ------------------------------------------------------------------ #
    # State transitions
    # ------------------------------------------------------------------ #
    def _process_transitions(
        self, runtimes: dict[str, _Runtime], time: float, log: EventLog | None
    ) -> None:
        """Fire every transition due at ``time`` (releases, compute ends, I/O ends)."""
        # Crashes fire before the ordinary transitions of the same instant:
        # an instance whose I/O "just finished" when its application dies is
        # lost, deterministically, in both engines.
        if self._timeline is not None:
            for crash in self._timeline.pop_due_crashes(time):
                rt = runtimes.get(crash.app_name)
                if rt is not None:
                    self._apply_crash(rt, crash, time, log)
        for rt in runtimes.values():
            # Releases.
            if (
                rt.phase == ApplicationPhase.NOT_RELEASED
                and rt.app.release_time <= time + _TIME_EPS
            ):
                self._log(log, time, EventType.APP_RELEASE, rt.app.name)
                self._start_compute(rt, time, log)
            # Compute completions.
            if (
                rt.phase == ApplicationPhase.COMPUTING
                and rt.compute_end <= time + _TIME_EPS
            ):
                rt.executed_work += rt.current_instance().work
                self._request_io(rt, time, log)
            # I/O completions (a recovering application finished its
            # checkpoint re-read instead: restart the crashed instance).
            if rt.wants_io and rt.remaining_io <= _VOLUME_EPS:
                if rt.recovering:
                    self._finish_recovery(rt, time, log)
                else:
                    self._complete_instance(rt, time, log)

    def _apply_crash(
        self, rt: _Runtime, crash: CrashEvent, time: float, log: EventLog | None
    ) -> None:
        """Crash ``rt``: discard the in-flight instance, queue recovery I/O.

        Crashes aimed at applications outside the system (not yet released,
        or already done) are no-ops.  A crash during recovery restarts the
        checkpoint re-read from scratch.
        """
        phase = rt.phase
        if phase is ApplicationPhase.DONE or phase is ApplicationPhase.NOT_RELEASED:
            return
        rt.n_crashes += 1
        self._log(log, time, EventType.APP_CRASH, rt.app.name, rt.instance_idx)
        if phase is not ApplicationPhase.COMPUTING and not rt.recovering:
            # The instance's compute chunk was credited at compute end; the
            # crash loses that progress (partial compute progress of a
            # COMPUTING application was never credited, so there is nothing
            # to subtract there).
            rt.executed_work -= rt.current_instance().work
        rt.recovering = True
        rt.phase = ApplicationPhase.IO_PENDING
        rt.remaining_io = crash.checkpoint_io
        rt.io_started = False
        rt.io_first_transfer = None
        rt.io_request_time = time
        rt.current_rate = 0.0

    def _finish_recovery(self, rt: _Runtime, time: float, log: EventLog | None) -> None:
        """Checkpoint re-read done: restart the crashed instance from scratch."""
        rt.recovering = False
        rt.remaining_io = 0.0
        rt.current_rate = 0.0
        rt.io_started = False
        rt.io_first_transfer = None
        rt.io_request_time = None
        self._log(log, time, EventType.APP_RESTART, rt.app.name, rt.instance_idx)
        self._start_compute(rt, time, log)

    def _start_compute(self, rt: _Runtime, time: float, log: EventLog | None) -> None:
        inst = rt.current_instance()
        rt.phase = ApplicationPhase.COMPUTING
        rt.compute_start = time
        rt.compute_end = time + inst.work
        rt.current_rate = 0.0
        if inst.work <= _TIME_EPS:
            rt.executed_work += inst.work
            self._request_io(rt, time, log)

    def _request_io(self, rt: _Runtime, time: float, log: EventLog | None) -> None:
        inst = rt.current_instance()
        rt.compute_end = min(rt.compute_end, time)
        if inst.io_volume <= _VOLUME_EPS:
            # Instance without I/O: it is complete as soon as computation ends.
            rt.remaining_io = 0.0
            rt.io_request_time = None
            rt.io_first_transfer = None
            rt.phase = ApplicationPhase.IO_PENDING
            self._complete_instance(rt, time, log)
            return
        rt.phase = ApplicationPhase.IO_PENDING
        rt.remaining_io = inst.io_volume
        rt.io_started = False
        rt.io_first_transfer = None
        rt.io_request_time = time
        rt.current_rate = 0.0
        self._log(log, time, EventType.IO_REQUEST, rt.app.name, rt.instance_idx)

    def _complete_instance(self, rt: _Runtime, time: float, log: EventLog | None) -> None:
        inst = rt.current_instance()
        rt.instance_records.append(
            InstanceRecord(
                index=rt.instance_idx,
                work=inst.work,
                io_volume=inst.io_volume,
                compute_start=rt.compute_start,
                compute_end=rt.compute_start + inst.work,
                io_first_transfer=rt.io_first_transfer,
                io_end=time,
            )
        )
        if inst.io_volume > _VOLUME_EPS:
            self._log(log, time, EventType.IO_COMPLETE, rt.app.name, rt.instance_idx)
        rt.completed_instance_work += inst.work
        rt.last_io_end = time
        rt.remaining_io = 0.0
        rt.current_rate = 0.0
        rt.io_started = False
        rt.io_first_transfer = None
        rt.io_request_time = None
        rt.instance_idx += 1
        if rt.instance_idx >= rt.app.n_instances:
            rt.phase = ApplicationPhase.DONE
            rt.completion_time = time
            self._log(log, time, EventType.APP_COMPLETE, rt.app.name)
        else:
            self._start_compute(rt, time, log)

    # ------------------------------------------------------------------ #
    # Event horizon
    # ------------------------------------------------------------------ #
    def _next_event_delta(
        self,
        runtimes: dict[str, _Runtime],
        bb: BurstBufferState | None,
        total_ingest: float,
        time: float,
    ) -> Optional[float]:
        """Seconds until the next event, or None if nothing will ever happen."""
        deltas: list[float] = []
        for rt in runtimes.values():
            if rt.phase == ApplicationPhase.NOT_RELEASED:
                deltas.append(max(0.0, rt.app.release_time - time))
            elif rt.phase == ApplicationPhase.COMPUTING:
                deltas.append(max(0.0, rt.compute_end - time))
            elif rt.wants_io and rt.current_rate > 0:
                deltas.append(rt.remaining_io / rt.current_rate)
        if bb is not None:
            transition = bb.next_transition(total_ingest)
            if transition is not None:
                deltas.append(transition)
        if self._timeline is not None:
            # Fault breakpoints are time-certain events: the interval must be
            # cut at every degradation-factor change and at every crash so
            # rates stay piecewise-constant between events.
            boundary = self._timeline.next_boundary(time)
            if boundary is not None:
                deltas.append(boundary - time)
            crash_time = self._timeline.peek_crash_time()
            if crash_time is not None:
                deltas.append(max(0.0, crash_time - time))
        eligible = [d for d in deltas if d >= 0.0]
        if not eligible:
            return None
        # Always honour the earliest event; clamp to a minimal step so that
        # zero-length deltas (a transition due "now" after floating-point
        # rounding) still advance time instead of looping forever — and are
        # never skipped in favour of a much later event.
        return max(min(eligible), _TIME_EPS)

    # ------------------------------------------------------------------ #
    # Views and records
    # ------------------------------------------------------------------ #
    def _view_of(self, rt: _Runtime, time: float) -> ApplicationView:
        app = rt.app
        elapsed = time - app.release_time
        if elapsed > _TIME_EPS:
            # Use the work of every *finished compute chunk* (not only fully
            # completed instances): an application that just spent w seconds
            # computing has made real progress even though its instance's I/O
            # is still pending, and the heuristics' rankings degenerate (every
            # first-instance application ties at zero) if that progress is
            # ignored.  At completion time the two definitions coincide.
            achieved = rt.executed_work / elapsed
        else:
            achieved = None  # placeholder, fixed below
        # Optimal efficiency over the instances seen so far (at least one).
        upto = min(rt.instance_idx + 1, app.n_instances)
        works = sum(inst.work for inst in app.instances[:upto])
        vols = sum(inst.io_volume for inst in app.instances[:upto])
        peak = self.platform.peak_application_bandwidth(app.processors)
        denom = works + (vols / peak if peak > 0 else 0.0)
        optimal = works / denom if denom > 0 else 1.0
        if achieved is None:
            achieved = optimal
        return ApplicationView(
            name=app.name,
            processors=app.processors,
            phase=rt.phase,
            remaining_io_volume=rt.remaining_io if rt.wants_io else 0.0,
            io_started=rt.io_started,
            achieved_efficiency=achieved,
            optimal_efficiency=optimal,
            last_io_end=rt.last_io_end,
            io_request_time=rt.io_request_time,
            instance_index=rt.instance_idx,
            n_instances=app.n_instances,
            total_io_transferred=rt.total_io_transferred,
        )

    def _system_view(
        self, runtimes: dict[str, _Runtime], time: float, available: float
    ) -> SystemView:
        views = tuple(
            self._view_of(rt, time)
            for rt in runtimes.values()
            if rt.phase != ApplicationPhase.DONE
        )
        return SystemView(
            time=time,
            platform=self.platform,
            available_bandwidth=available,
            applications=views,
        )

    def _finalize_truncated(self, runtimes: dict[str, _Runtime], time: float) -> None:
        """Assign completion data to applications cut off by ``max_time``."""
        for rt in runtimes.values():
            if not rt.done:
                rt.completion_time = time
                rt.phase = ApplicationPhase.DONE

    def _record_of(self, rt: _Runtime) -> ApplicationRecord:
        app = rt.app
        peak = self.platform.peak_application_bandwidth(app.processors)
        finished_all = rt.instance_idx >= app.n_instances
        if finished_all:
            dedicated_io_time = app.total_io_volume / peak if peak > 0 else 0.0
            executed_work = app.total_work
        else:
            # Truncated run: score the work and I/O actually performed, so the
            # efficiency ratio compares like with like.
            dedicated_io_time = rt.total_io_transferred / peak if peak > 0 else 0.0
            executed_work = rt.completed_instance_work
        return ApplicationRecord(
            application=app,
            release_time=app.release_time,
            completion_time=rt.completion_time,
            executed_work=executed_work,
            dedicated_io_time=dedicated_io_time,
            total_io_transferred=rt.total_io_transferred,
            instances=list(rt.instance_records),
            restarts=rt.n_crashes,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _log(
        log: EventLog | None,
        time: float,
        event_type: EventType,
        app_name: str | None = None,
        instance_index: int | None = None,
    ) -> None:
        if log is not None:
            log.append(
                Event(
                    time=time,
                    event_type=event_type,
                    app_name=app_name,
                    instance_index=instance_index,
                )
            )


def reference_simulate(
    scenario: Scenario,
    scheduler: SchedulerProtocol,
    config: SimulatorConfig | None = None,
    event_log: EventLog | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`ReferenceSimulator` and run it once."""
    return ReferenceSimulator(scenario, config).run(scheduler, event_log=event_log)

"""Indexed event timeline for the fast simulator engine.

The engine's hot loop needs two operations on the set of *time-certain*
future events (application releases, compute-phase completions):

* "what is the earliest pending event?" — to cut the next interval; and
* "pop everything due at the current time" — to fire transitions.

A binary heap gives both in O(log n) without scanning every application at
every event, which is the difference between the O(n_apps) per-event sweeps
of :mod:`repro.simulator.reference` and the O(k log n) bookkeeping of
:mod:`repro.simulator.engine` (k = applications actually transitioning).

Entries cannot be removed from the middle of a heap cheaply, so the queue
uses *lazy invalidation*: the engine pushes entries freely and supplies an
``is_valid`` predicate when peeking or popping; stale entries (e.g. the
compute-completion of an instance that chained straight into I/O because its
work was ~0) are discarded the first time they surface at the top.  Stale
entries are therefore never reported — crucially, they also never cut an
interval, so the optimized engine sees exactly the same event timeline as
the reference engine.

I/O completions are *not* kept here: their times depend on the bandwidth
assignment, which changes at every event, so the engine derives them from
its active-transfer set instead of repeatedly re-keying a heap.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generic, Optional, TypeVar

__all__ = ["EventHeap"]

T = TypeVar("T")


class EventHeap(Generic[T]):
    """Min-heap of ``(time, item)`` entries with lazy invalidation.

    Ties on ``time`` are broken by insertion order (a monotone sequence
    number), so items pushed earlier pop earlier — matching the
    insertion-order sweeps of the reference engine — and item payloads are
    never compared.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, T]] = []
        self._seq = 0

    def __len__(self) -> int:
        """Number of entries, stale ones included (they are pruned lazily)."""
        return len(self._heap)

    def push(self, time: float, item: T) -> None:
        """Schedule ``item`` at ``time``."""
        heapq.heappush(self._heap, (time, self._seq, item))
        self._seq += 1

    def peek_time(self, is_valid: Callable[[T], bool]) -> Optional[float]:
        """Time of the earliest valid entry, or ``None`` if none remains.

        Stale entries encountered at the top are discarded permanently, so
        repeated peeks are amortized O(log n).
        """
        heap = self._heap
        while heap:
            time, _, item = heap[0]
            if is_valid(item):
                return time
            heapq.heappop(heap)
        return None

    def pop_due(self, cutoff: float, is_valid: Callable[[T], bool]) -> list[T]:
        """Pop every valid entry with ``time <= cutoff``, earliest first."""
        due: list[T] = []
        heap = self._heap
        while heap:
            time, _, item = heap[0]
            if not is_valid(item):
                heapq.heappop(heap)
                continue
            if time <= cutoff:
                heapq.heappop(heap)
                due.append(item)
            else:
                break
        return due

"""Batched (columnar) engine: flat numpy state, one fused step per event.

Third member of the engine family:

* :mod:`repro.simulator.reference` — the frozen seed engine and equivalence
  oracle (full per-event scans, O(n·m) per event);
* :mod:`repro.simulator.engine` — the heap engine (indexed event queue,
  O(k log n) per event, but still one Python object hop per application);
* this module — per-application state kept as flat numpy columns (phases,
  release/compute-end times, remaining volumes, rates, request times), so
  each event is a handful of vectorized passes over all applications instead
  of per-object Python dispatch: candidate collection, ordering keys, the
  next-event horizon and the interval advance are all array expressions, and
  only the (few) applications actually transitioning at the new time are
  touched by scalar code.

The contract is the same as the heap engine's: **bit-for-bit identity** with
the reference engine — same event timeline, same floats in every record and
event log.  That constrains the vectorization in two ways:

* elementwise array arithmetic is used freely (IEEE-754 elementwise ops are
  identical to the equivalent scalar ops), but *sequential accumulations*
  whose rounding depends on evaluation order (the greedy favouring loop, the
  burst-buffer ingest total, per-run recovery-I/O sums) stay as ordered
  Python loops exactly mirroring the reference;
* the scheduler policies are dispatched **by exact type** onto vectorized
  ordering kernels (``np.lexsort`` with the shared ``(request time, name)``
  tie-break).  Any scheduler outside the built-in set — subclasses, custom
  policies, the periodic replay adapter — makes the engine silently delegate
  the whole run to the heap engine, which handles arbitrary
  :class:`~repro.simulator.interface.SchedulerProtocol` objects and is
  itself pinned identical to the reference.

``tests/test_engine_equivalence.py`` and the three-engine differential fuzz
suite (``tests/test_engine_differential.py``) enforce the identity;
``benchmarks/bench_engine_scaling.py`` tracks the speedup in
``BENCH_engine.json``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.events import Event, EventLog, EventType
from repro.core.scenario import Scenario
from repro.faults.model import FaultTimeline
from repro.simulator.burst_buffer import BurstBufferState
from repro.simulator.engine import (
    SimulationError,
    Simulator,
    SimulatorConfig,
    StallError,
    _stall_message,
)
from repro.obs.telemetry import recorder as _obs_recorder
from repro.simulator.interface import SchedulerProtocol
from repro.simulator.metrics import (
    ApplicationRecord,
    BurstBufferStats,
    FaultStats,
    InstanceRecord,
    SimulationResult,
)
from repro.utils.validation import ValidationError

#: Process-wide telemetry funnel — like the heap engine, the batched kernel
#: only accumulates local ints in the loop and flushes once per run.
_OBS = _obs_recorder()

__all__ = ["BatchedSimulator", "batched_simulate"]

#: Same slacks as the other two engines (times in seconds, volumes in bytes).
_TIME_EPS = 1e-9
_VOLUME_EPS = 1e-6
#: Same epsilon as :mod:`repro.simulator.bandwidth` (bandwidth in bytes/s).
_BW_EPS = 1e-12

# Integer phase codes for the ``phase`` column (the enum members of
# ``ApplicationPhase``, in lifecycle order).
_NOT_RELEASED = 0
_COMPUTING = 1
_IO_PENDING = 2
_DOING_IO = 3
_DONE = 4

#: Heuristics whose ``allocate`` is the shared greedy favouring loop and
#: whose ordering reduces to a lexsort kernel.  Keys are *exact* types: a
#: subclass may override anything, so it must take the delegation path.
#: Populated lazily — the scheduler modules import the simulator package,
#: so importing them at module scope would be circular.
_FAVOR_ORDERINGS: dict[type, str] = {}
_POLICY_TYPES: dict[str, type] = {}


def _policy_types() -> dict[str, type]:
    if not _POLICY_TYPES:
        from repro.online.baselines import FCFS, FairShare
        from repro.online.heuristics import (
            MaxSysEff,
            MinDilation,
            MinMaxGamma,
            RoundRobin,
        )
        from repro.online.priority import Priority

        _FAVOR_ORDERINGS.update(
            {
                RoundRobin: "roundrobin",
                MinDilation: "mindilation",
                MaxSysEff: "maxsyseff",
                FCFS: "fcfs",
            }
        )
        _POLICY_TYPES.update(
            {
                "fairshare": FairShare,
                "minmax": MinMaxGamma,
                "priority": Priority,
            }
        )
    return _POLICY_TYPES


def _native_policy(scheduler: SchedulerProtocol):
    """Classify ``scheduler`` for the vectorized path, or ``None`` to delegate.

    Returns ``(alloc, ordering, priority, gamma)`` where ``alloc`` is
    ``"favor"`` or ``"fairshare"``, ``ordering`` names the lexsort kernel,
    ``priority`` requests the stable started-first partition and ``gamma``
    is the MinMax threshold (``None`` otherwise).
    """
    types = _policy_types()
    fair_share_t = types["fairshare"]
    minmax_t = types["minmax"]
    priority_t = types["priority"]
    t = type(scheduler)
    if t is fair_share_t:
        # FairShare overrides allocate() itself (interference-degraded
        # water-filling); ordering is irrelevant.
        return ("fairshare", None, False, None)
    if t is minmax_t:
        return ("favor", "minmax", False, scheduler.gamma)
    if t in _FAVOR_ORDERINGS:
        return ("favor", _FAVOR_ORDERINGS[t], False, None)
    if t is priority_t:
        inner = scheduler.inner
        it = type(inner)
        if it is fair_share_t:
            # Priority inherits the generic allocate(), so the inner
            # FairShare only contributes its identity candidate ordering.
            return ("favor", "identity", True, None)
        if it is minmax_t:
            return ("favor", "minmax", True, inner.gamma)
        if it in _FAVOR_ORDERINGS:
            return ("favor", _FAVOR_ORDERINGS[it], True, None)
    return None


class BatchedSimulator:
    """Columnar engine: numpy per-application state, reference-identical."""

    def __init__(self, scenario: Scenario, config: SimulatorConfig | None = None):
        self.scenario = scenario
        self.config = config or SimulatorConfig()
        self.platform = scenario.platform
        self._app_map = scenario.application_map()
        if self.config.use_burst_buffer and self.platform.burst_buffer is None:
            raise ValidationError(
                f"use_burst_buffer=True but platform {self.platform.name!r} "
                "has no burst buffer specification"
            )
        if scenario.faults is not None:
            unknown = sorted(scenario.faults.crash_app_names() - set(self._app_map))
            if unknown:
                raise ValidationError(
                    f"fault model crashes name unknown application(s): {unknown}"
                )

    # ------------------------------------------------------------------ #
    def run(
        self, scheduler: SchedulerProtocol, event_log: EventLog | None = None
    ) -> SimulationResult:
        """Simulate the scenario to completion under ``scheduler``."""
        policy = _native_policy(scheduler)
        if policy is None:
            # Unknown policy (custom scheduler, subclass, periodic replay
            # adapter): the columnar kernels cannot reproduce an arbitrary
            # allocate(); run the whole scenario on the heap engine, which
            # is pinned identical to the reference for any scheduler.
            return Simulator(self.scenario, self.config).run(
                scheduler, event_log=event_log
            )
        alloc_kind, ordering, priority, minmax_gamma = policy

        scheduler.reset()
        config = self.config
        platform = self.platform
        apps = list(self.scenario)
        n = len(apps)
        node_bw = float(platform.node_bandwidth)
        system_bw = float(platform.system_bandwidth)
        names = [app.name for app in apps]
        index_of = {name: i for i, name in enumerate(names)}
        interference = scheduler.interference if alloc_kind == "fairshare" else None

        # ---------------- immutable per-application columns --------------
        procs_i = [app.processors for app in apps]
        procs_f = np.array(procs_i, dtype=np.float64)
        procs_int = np.array(procs_i, dtype=np.int64)
        release = np.array([app.release_time for app in apps], dtype=np.float64)
        n_inst = [app.n_instances for app in apps]
        peaks = [
            platform.peak_application_bandwidth(app.processors) for app in apps
        ]
        # Unique rank of each name in sorted order: the deterministic final
        # tie-break of every ordering, so lexsort produces exactly the
        # ordering of sorted() with (..., request time, name) tuple keys.
        name_rank = np.empty(n, dtype=np.int64)
        for rank, i in enumerate(sorted(range(n), key=names.__getitem__)):
            name_rank[i] = rank
        # Congestion-free efficiency per instance prefix, accumulated with
        # the exact add sequence of the reference's per-event
        # sum(instances[:upto]) so the floats match bit-for-bit.
        opt_tables: list[list[float]] = []
        for app, peak in zip(apps, peaks):
            works = 0.0
            vols = 0.0
            table: list[float] = []
            for inst in app.instances:
                works += inst.work
                vols += inst.io_volume
                denom = works + (vols / peak if peak > 0 else 0.0)
                table.append(works / denom if denom > 0 else 1.0)
            opt_tables.append(table)

        # ---------------- mutable state columns ---------------------------
        phase = np.full(n, _NOT_RELEASED, dtype=np.int64)
        instance_idx = [0] * n
        executed = np.zeros(n, dtype=np.float64)
        completed_work = [0.0] * n
        compute_start = np.zeros(n, dtype=np.float64)
        compute_end = np.full(n, np.inf, dtype=np.float64)
        remaining = np.zeros(n, dtype=np.float64)
        rate = np.zeros(n, dtype=np.float64)
        io_started = np.zeros(n, dtype=bool)
        io_first = np.full(n, np.nan, dtype=np.float64)  # NaN = "no transfer yet"
        io_req = np.full(n, np.inf, dtype=np.float64)  # inf = "no request"
        last_io_end = np.full(n, -np.inf, dtype=np.float64)
        completion = [math.nan] * n
        total_io = np.zeros(n, dtype=np.float64)
        recovering = np.zeros(n, dtype=bool)
        n_crashes = [0] * n
        recovery_io = np.zeros(n, dtype=np.float64)
        opt_cur = np.array([table[0] for table in opt_tables], dtype=np.float64)
        inst_records: list[list[InstanceRecord]] = [[] for _ in range(n)]
        n_done = 0

        log = event_log if event_log is not None else (
            EventLog() if config.record_events else None
        )

        def emit(time, event_type, app_name=None, inst_index=None):
            if log is not None:
                log.append(
                    Event(
                        time=time,
                        event_type=event_type,
                        app_name=app_name,
                        instance_index=inst_index,
                    )
                )

        # ---------------- scalar transition cascade -----------------------
        # These closures mirror the reference's transition methods line for
        # line; they run only for the few applications due at each event.

        def start_compute(i, time):
            inst = apps[i].instances[instance_idx[i]]
            phase[i] = _COMPUTING
            compute_start[i] = time
            compute_end[i] = time + inst.work
            rate[i] = 0.0
            if inst.work <= _TIME_EPS:
                executed[i] += inst.work
                request_io(i, time)

        def request_io(i, time):
            inst = apps[i].instances[instance_idx[i]]
            if time < compute_end[i]:
                compute_end[i] = time
            if inst.io_volume <= _VOLUME_EPS:
                # Instance without I/O: complete as soon as computation ends.
                remaining[i] = 0.0
                io_req[i] = np.inf
                io_first[i] = np.nan
                phase[i] = _IO_PENDING
                complete_instance(i, time)
                return
            phase[i] = _IO_PENDING
            remaining[i] = inst.io_volume
            io_started[i] = False
            io_first[i] = np.nan
            io_req[i] = time
            rate[i] = 0.0
            emit(time, EventType.IO_REQUEST, names[i], instance_idx[i])

        def complete_instance(i, time):
            nonlocal n_done
            idx = instance_idx[i]
            inst = apps[i].instances[idx]
            first = float(io_first[i])
            cs = float(compute_start[i])
            inst_records[i].append(
                InstanceRecord(
                    index=idx,
                    work=inst.work,
                    io_volume=inst.io_volume,
                    compute_start=cs,
                    compute_end=cs + inst.work,
                    io_first_transfer=None if math.isnan(first) else first,
                    io_end=time,
                )
            )
            if inst.io_volume > _VOLUME_EPS:
                emit(time, EventType.IO_COMPLETE, names[i], idx)
            completed_work[i] += inst.work
            last_io_end[i] = time
            remaining[i] = 0.0
            rate[i] = 0.0
            io_started[i] = False
            io_first[i] = np.nan
            io_req[i] = np.inf
            instance_idx[i] = idx + 1
            opt_cur[i] = opt_tables[i][min(idx + 2, n_inst[i]) - 1]
            if idx + 1 >= n_inst[i]:
                phase[i] = _DONE
                completion[i] = time
                n_done += 1
                emit(time, EventType.APP_COMPLETE, names[i])
            else:
                start_compute(i, time)

        def finish_recovery(i, time):
            recovering[i] = False
            remaining[i] = 0.0
            rate[i] = 0.0
            io_started[i] = False
            io_first[i] = np.nan
            io_req[i] = np.inf
            emit(time, EventType.APP_RESTART, names[i], instance_idx[i])
            start_compute(i, time)

        def apply_crash(i, crash, time):
            p = phase[i]
            if p == _DONE or p == _NOT_RELEASED:
                return
            n_crashes[i] += 1
            emit(time, EventType.APP_CRASH, names[i], instance_idx[i])
            if p != _COMPUTING and not recovering[i]:
                # The instance's compute chunk was credited at compute end;
                # the crash loses it (a COMPUTING application was never
                # credited, so there is nothing to subtract there).
                executed[i] -= apps[i].instances[instance_idx[i]].work
            recovering[i] = True
            phase[i] = _IO_PENDING
            remaining[i] = crash.checkpoint_io
            io_started[i] = False
            io_first[i] = np.nan
            io_req[i] = time
            rate[i] = 0.0

        faults = self.scenario.faults
        timeline = FaultTimeline(faults) if faults is not None else None

        def process_transitions(time):
            # Crashes fire before the ordinary transitions of the instant.
            if timeline is not None:
                for crash in timeline.pop_due_crashes(time):
                    i = index_of.get(crash.app_name)
                    if i is not None:
                        apply_crash(i, crash, time)
            # One vectorized sweep finds every application with a due
            # transition; the scalar cascade below then re-applies the
            # reference's three sequential checks per due application, so
            # same-instant chains (release → zero-work compute → zero-volume
            # I/O → next instance) fire exactly as in the reference.  No
            # transition has cross-application effects, so an application
            # outside the mask cannot become due during the sweep.
            slack = time + _TIME_EPS
            due = (
                ((phase == _NOT_RELEASED) & (release <= slack))
                | ((phase == _COMPUTING) & (compute_end <= slack))
                | (
                    ((phase == _IO_PENDING) | (phase == _DOING_IO))
                    & (remaining <= _VOLUME_EPS)
                )
            )
            for i in np.nonzero(due)[0].tolist():
                if phase[i] == _NOT_RELEASED and release[i] <= slack:
                    emit(time, EventType.APP_RELEASE, names[i])
                    start_compute(i, time)
                if phase[i] == _COMPUTING and compute_end[i] <= slack:
                    executed[i] += apps[i].instances[instance_idx[i]].work
                    request_io(i, time)
                if (
                    phase[i] == _IO_PENDING or phase[i] == _DOING_IO
                ) and remaining[i] <= _VOLUME_EPS:
                    if recovering[i]:
                        finish_recovery(i, time)
                    else:
                        complete_instance(i, time)

        # ---------------- allocation kernels -------------------------------
        def fair_rates(cand, total):
            """Vectorized closed-form fair share (bandwidth.fair_share)."""
            if not cand.size or total <= _BW_EPS:
                return np.zeros(cand.size, dtype=np.float64)
            total_procs = int(procs_int[cand].sum())  # int sum: exact
            share = float(total) / total_procs
            if share >= node_bw:
                gamma = node_bw if node_bw > _BW_EPS else 0.0
            else:
                gamma = share if share > _BW_EPS else 0.0
            return gamma * procs_f[cand]

        def candidate_order(cand, time):
            """Permutation of ``cand`` matching the scheduler's ordering."""
            if ordering == "identity":
                order = np.arange(cand.size)
            else:
                nm = name_rank[cand]
                req = io_req[cand]
                if ordering == "fcfs":
                    order = np.lexsort((nm, req))
                elif ordering == "roundrobin":
                    order = np.lexsort((nm, req, last_io_end[cand]))
                else:
                    opt = opt_cur[cand]
                    el = time - release[cand]
                    with np.errstate(divide="ignore", invalid="ignore"):
                        ach = np.where(el > _TIME_EPS, executed[cand] / el, opt)
                        ratio = np.where(
                            opt <= 0.0, 1.0, np.minimum(1.0, ach / opt)
                        )
                    if ordering == "mindilation":
                        order = np.lexsort((nm, req, ratio))
                    elif ordering == "maxsyseff":
                        order = np.lexsort((nm, req, -(procs_f[cand] * ach)))
                    else:  # minmax: rescue the starved first, then MaxSysEff
                        pf = procs_f[cand]
                        starved = ratio < minmax_gamma
                        s_pos = np.nonzero(starved)[0]
                        h_pos = np.nonzero(~starved)[0]
                        s_ord = s_pos[
                            np.lexsort((nm[s_pos], req[s_pos], ratio[s_pos]))
                        ]
                        h_ord = h_pos[
                            np.lexsort(
                                (nm[h_pos], req[h_pos], -(pf[h_pos] * ach[h_pos]))
                            )
                        ]
                        order = np.concatenate((s_ord, h_ord))
            if priority:
                st = io_started[cand][order]
                order = np.concatenate((order[st], order[~st]))
            return order

        # ---------------- main loop ---------------------------------------
        fault_factor = 1.0
        fault_brownout = 0.0
        fault_blackout = 0.0
        fault_stall = 0.0
        time = min(app.release_time for app in apps)
        n_events = 0
        n_allocations = 0
        time_bb_full = 0.0
        max_time = config.max_time
        max_events = config.max_events
        bb = (
            BurstBufferState(platform.burst_buffer)
            if (config.use_burst_buffer and platform.burst_buffer)
            else None
        )

        process_transitions(time)

        while n_done < n:
            n_events += 1
            if n_events > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "the scheduler is probably thrashing"
                )

            # ---------------- allocation for the coming interval ----------
            wants = (phase == _IO_PENDING) | (phase == _DOING_IO)
            cand = np.nonzero(wants)[0]
            k = cand.size
            drain = bb.drain_rate() if bb is not None else 0.0
            if timeline is None:
                available = max(0.0, system_bw - drain)
            else:
                fault_factor = timeline.factor_at(time)
                available = max(0.0, system_bw * fault_factor - drain)

            total_ingest = 0.0
            if k:
                n_allocations += 1
                rate[cand] = 0.0
                if bb is not None and bb.can_absorb():
                    cand_rates = fair_rates(cand, bb.ingest_capacity())
                    rate[cand] = cand_rates
                    # Sequential sum in candidate (= declaration) order: the
                    # reference accumulates the ingest total one rate at a
                    # time, and float addition rounds per step.
                    for r in cand_rates.tolist():
                        total_ingest += r
                elif alloc_kind == "fairshare":
                    effective = interference.effective_bandwidth(available, k)
                    rate[cand] = fair_rates(cand, effective)
                else:
                    # Greedy favouring in priority order — an ordered
                    # sequential loop by definition (each grant rounds the
                    # remaining capacity before the next), mirroring
                    # bandwidth.favor_in_order float for float.
                    rem = available
                    for i in cand[candidate_order(cand, time)].tolist():
                        if rem <= _BW_EPS:
                            break
                        p = procs_i[i]
                        gamma = rem / p
                        if gamma > node_bw:
                            gamma = node_bw
                        if gamma <= _BW_EPS:
                            continue
                        r = gamma * p
                        rate[i] = r
                        rem -= r
                # Apply: transferring candidates hold bandwidth, the rest
                # are pending (an interrupted transfer drops DOING_IO).
                served = rate[cand] > 0.0
                scand = cand[served]
                fresh = scand[np.isnan(io_first[scand])]
                io_first[fresh] = time
                io_started[scand] = True
                phase[scand] = _DOING_IO
                phase[cand[~served]] = _IO_PENDING

            # ---------------- find the next event -------------------------
            with np.errstate(divide="ignore", invalid="ignore"):
                app_delta = np.where(
                    phase == _NOT_RELEASED,
                    np.maximum(0.0, release - time),
                    np.where(
                        phase == _COMPUTING,
                        np.maximum(0.0, compute_end - time),
                        np.where(
                            wants & (rate > 0.0), remaining / rate, np.inf
                        ),
                    ),
                )
            deltas = []
            best = float(app_delta.min())
            if best < math.inf:
                deltas.append(best)
            if bb is not None:
                transition = bb.next_transition(total_ingest)
                if transition is not None:
                    deltas.append(transition)
            if timeline is not None:
                boundary = timeline.next_boundary(time)
                if boundary is not None:
                    deltas.append(boundary - time)
                crash_time = timeline.peek_crash_time()
                if crash_time is not None:
                    deltas.append(max(0.0, crash_time - time))
            eligible = [d for d in deltas if d >= 0.0]
            if not eligible:
                if k:
                    raise StallError(
                        _stall_message(
                            scheduler.name,
                            [names[i] for i in cand.tolist()],
                            time,
                            timeline,
                        )
                    )
                raise SimulationError("no future event but applications remain")
            dt = max(min(eligible), _TIME_EPS)

            if time + dt > max_time:
                dt = max_time - time
                if dt <= _TIME_EPS:
                    break

            if timeline is not None and fault_factor < 1.0:
                fault_brownout += dt
                if fault_factor <= 0.0:
                    fault_blackout += dt
                if k:
                    fault_stall += dt

            # ---------------- advance the interval ------------------------
            active = np.nonzero(wants & (rate > 0.0))[0]
            if active.size:
                rem_a = remaining[active]
                moved = np.minimum(rate[active] * dt, rem_a)
                remaining[active] = np.maximum(0.0, rem_a - moved)
                total_io[active] += moved
                rec = recovering[active]
                if rec.any():
                    recovery_io[active[rec]] += moved[rec]
            if bb is not None:
                if not bb.can_absorb():
                    time_bb_full += dt
                bb.advance(dt, total_ingest)
            time += dt

            process_transitions(time)

            if time >= max_time:
                break

        # ---------------- records and statistics ---------------------------
        final_time = min(time, max_time)
        for i in range(n):
            if phase[i] != _DONE:
                completion[i] = final_time
                phase[i] = _DONE
        records = {}
        for i, app in enumerate(apps):
            peak = peaks[i]
            if instance_idx[i] >= n_inst[i]:
                dedicated_io_time = (
                    app.total_io_volume / peak if peak > 0 else 0.0
                )
                executed_work = app.total_work
            else:
                dedicated_io_time = (
                    float(total_io[i]) / peak if peak > 0 else 0.0
                )
                executed_work = completed_work[i]
            records[names[i]] = ApplicationRecord(
                application=app,
                release_time=app.release_time,
                completion_time=completion[i],
                executed_work=executed_work,
                dedicated_io_time=dedicated_io_time,
                total_io_transferred=float(total_io[i]),
                instances=list(inst_records[i]),
                restarts=n_crashes[i],
            )
        makespan = max(rec.completion_time for rec in records.values())
        bb_stats = None
        if bb is not None:
            bb_stats = BurstBufferStats(
                total_absorbed=bb.total_absorbed,
                total_drained=bb.total_drained,
                final_level=bb.level,
                time_full=time_bb_full,
            )
        fault_stats = None
        if timeline is not None:
            recovery_total = 0.0
            for v in recovery_io.tolist():
                recovery_total += v
            fault_stats = FaultStats(
                n_crashes=sum(n_crashes),
                restarts={
                    names[i]: n_crashes[i] for i in range(n) if n_crashes[i]
                },
                brownout_time=fault_brownout,
                blackout_time=fault_blackout,
                stall_time=fault_stall,
                recovery_io=recovery_total,
            )
        if _OBS.enabled:
            # One flush per run: the loop above only bumped local ints.
            _OBS.count(
                "repro_engine_allocations_total",
                float(n_allocations), engine="batched",
            )
            _OBS.count(
                "repro_engine_events_total", float(n_events), engine="batched"
            )
        return SimulationResult(
            scenario_label=self.scenario.label,
            scheduler_name=scheduler.name,
            platform=platform,
            records=records,
            makespan=makespan,
            n_events=n_events,
            burst_buffer=bb_stats,
            fault_stats=fault_stats,
        )


def batched_simulate(
    scenario: Scenario,
    scheduler: SchedulerProtocol,
    config: SimulatorConfig | None = None,
    event_log: EventLog | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`BatchedSimulator` and run it once."""
    return BatchedSimulator(scenario, config).run(scheduler, event_log=event_log)

"""Figure 7 — impact of the sensibility of computations on both objectives.

Paper claim (Section 4.3): perturbing the per-instance compute times by up
to 30% has almost no impact on the results of the online heuristics, so the
periodicity assumption used to rebuild congested moments is not binding.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import FIGURE7_SCHEDULERS, sensitivity_study


def test_figure7_sensibility_sweep(benchmark, scale):
    sensibilities = (0, 5, 10, 15, 20, 25, 30)
    n_repetitions = 2 * scale

    def experiment():
        return sensitivity_study(
            sensibilities, schedulers=FIGURE7_SCHEDULERS,
            n_repetitions=n_repetitions, rng=7,
        )

    study = run_once(benchmark, experiment)

    print()
    print("Figure 7 — sensibility sweep (x axis: %, values: SysEff% / Dilation)")
    print("  sensibility:", list(study.sensibilities()))
    for scheduler in study.schedulers:
        eff = ", ".join(f"{v:.1f}" for v in study.series(scheduler, "system_efficiency"))
        dil = ", ".join(f"{v:.2f}" for v in study.series(scheduler, "dilation"))
        print(f"  {scheduler:12s} SysEff [{eff}]")
        print(f"  {scheduler:12s} Dil    [{dil}]")

    # Paper shape: the curves are essentially flat.
    for scheduler in study.schedulers:
        assert study.max_relative_variation(scheduler, "system_efficiency") < 0.25

#!/usr/bin/env python
"""Compare two ``BENCH_engine.json`` payloads with a noise band.

The bench-smoke CI job snapshots the *committed* ``BENCH_engine.json``
(the baseline this repository ships), reruns the suite on the runner, and
feeds both payloads here.  The gate fails (exit 1) when:

* any cell of the current payload reports ``identical: false`` — an engine
  stopped reproducing the reference timeline, which is a correctness
  regression no perf number can excuse; or
* a cell's events/sec **speedup ratio** regressed more than the noise band
  (default 20%) below the baseline's.

Ratios, not raw events/sec: the committed baseline and the CI runner are
different machines, so absolute throughput is not comparable across them —
but the batched-vs-heap and heap-vs-reference ratios are measured within a
single run on one machine and transfer cleanly.  Pass ``--raw`` to gate on
absolute events/sec instead when both payloads come from the same machine
(e.g. a local before/after check).

Stdlib only on purpose: the bench-smoke job installs nothing beyond numpy,
and this script must keep working even when the simulator itself cannot
import.

Usage::

    python benchmarks/perf_compare.py BASELINE CURRENT [--band 0.20] [--raw]
"""

from __future__ import annotations

import argparse
import json
import sys

#: (payload key, human label) of every ratio the gate watches.  Keys missing
#: from the *baseline* are skipped (older baselines predate the batched
#: engine); keys missing from the *current* payload fail loudly.
RATIO_METRICS = (
    ("batched_speedup_vs_heap", "batched vs heap"),
    ("speedup", "heap vs reference"),
)

#: Engine sub-payloads gated under ``--raw`` (same-machine comparisons).
RAW_ENGINES = ("batched", "engine", "reference")


def load_cells(path: str) -> dict[tuple[int, int], dict]:
    with open(path) as handle:
        payload = json.load(handle)
    cells = payload.get("cells")
    if not isinstance(cells, list) or not cells:
        raise SystemExit(f"{path}: no benchmark cells found")
    return {(c["n_apps"], c["n_instances"]): c for c in cells}


def check_identical(cells: dict[tuple[int, int], dict]) -> list[str]:
    return [
        f"{n_apps}x{n_instances}: identical=false — an engine diverged "
        "from the reference timeline"
        for (n_apps, n_instances), cell in sorted(cells.items())
        if not cell.get("identical", False)
    ]


def check_ratios(
    baseline: dict[tuple[int, int], dict],
    current: dict[tuple[int, int], dict],
    band: float,
) -> list[str]:
    failures = []
    for key, cell in sorted(current.items()):
        base_cell = baseline.get(key)
        if base_cell is None:
            continue  # a new grid cell has no baseline yet
        for metric, label in RATIO_METRICS:
            if metric not in base_cell:
                continue  # baseline predates this metric
            if metric not in cell:
                failures.append(
                    f"{key[0]}x{key[1]}: current payload lost the "
                    f"{metric!r} metric"
                )
                continue
            base, now = float(base_cell[metric]), float(cell[metric])
            floor = base * (1.0 - band)
            if now < floor:
                failures.append(
                    f"{key[0]}x{key[1]}: {label} speedup regressed "
                    f"{base:.2f}x -> {now:.2f}x "
                    f"(> {band:.0%} below baseline)"
                )
    return failures


def check_raw(
    baseline: dict[tuple[int, int], dict],
    current: dict[tuple[int, int], dict],
    band: float,
) -> list[str]:
    failures = []
    for key, cell in sorted(current.items()):
        base_cell = baseline.get(key)
        if base_cell is None:
            continue
        for engine in RAW_ENGINES:
            if engine not in base_cell or engine not in cell:
                continue
            base = float(base_cell[engine]["events_per_sec"])
            now = float(cell[engine]["events_per_sec"])
            if now < base * (1.0 - band):
                failures.append(
                    f"{key[0]}x{key[1]}: {engine} events/sec regressed "
                    f"{base:.0f} -> {now:.0f} (> {band:.0%} below baseline)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="BENCH_engine.json perf-regression gate"
    )
    parser.add_argument("baseline", help="committed baseline payload")
    parser.add_argument("current", help="freshly measured payload")
    parser.add_argument(
        "--band",
        type=float,
        default=0.20,
        metavar="FRACTION",
        help="allowed regression before failing (default: 0.20 = 20%%)",
    )
    parser.add_argument(
        "--raw",
        action="store_true",
        help=(
            "also gate absolute events/sec (only meaningful when both "
            "payloads were measured on the same machine)"
        ),
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.band < 1.0:
        parser.error(f"--band must lie in [0, 1), got {args.band}")

    baseline = load_cells(args.baseline)
    current = load_cells(args.current)

    failures = check_identical(current)
    failures += check_ratios(baseline, current, args.band)
    if args.raw:
        failures += check_raw(baseline, current, args.band)

    compared = sorted(set(baseline) & set(current))
    print(
        f"perf gate: {len(compared)} cell(s) compared "
        f"(band {args.band:.0%}, metrics: ratios"
        + (" + raw events/sec" if args.raw else "")
        + ")"
    )
    for key in compared:
        cell = current[key]
        parts = [f"identical={cell.get('identical', False)}"]
        for metric, label in RATIO_METRICS:
            if metric in cell:
                parts.append(f"{label} {cell[metric]:.2f}x")
        print(f"  {key[0]}x{key[1]}: {', '.join(parts)}")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 14 — execution-time overhead of the modified IOR benchmark.

Paper: routing every write request through the scheduler thread costs 1% to
5.3% of the execution time when no congestion occurs, staying under ~3% for
the larger application counts.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure14_overheads, format_mapping
from repro.workload import VESTA_SCENARIOS


def test_figure14_scheduler_overhead(benchmark, scale):
    def experiment():
        return figure14_overheads(VESTA_SCENARIOS)

    overheads = run_once(benchmark, experiment)

    print()
    print("Figure 14 — scheduler-request overhead per Vesta node mix (%):")
    print(format_mapping(overheads))

    values = list(overheads.values())
    assert 0.5 <= min(values)
    assert max(values) <= 6.0
    # The single 512-node group pays the most; the four-application mixes pay less.
    assert overheads["512"] >= overheads["512/512/512/512"]
    assert overheads["512"] >= overheads["512/256/256/32"]

"""Table 1 — averages over the Intrepid congested moments.

Paper rows: MaxSysEff, MinMax-{0.25, 0.5, 0.75}, MinDilation (each with its
Priority variant), the Intrepid scheduler (with burst buffers) and the upper
limit; columns: Dilation (minimize) and SysEfficiency (maximize), averaged
over 56 congested moments.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import TABLE_SCHEDULERS, congested_moments_experiment, format_table


def test_table1_intrepid_averages(benchmark, scale):
    # 56 moments at scale >= 7; a reduced campaign by default.
    n_moments = min(56, 8 * scale)

    def experiment():
        return congested_moments_experiment(
            "intrepid", n_moments=n_moments, schedulers=TABLE_SCHEDULERS, rng=1
        )

    result = run_once(benchmark, experiment)
    table = result.table()

    rows = []
    for scheduler in list(TABLE_SCHEDULERS) + ["Intrepid"]:
        entry = table[scheduler]
        rows.append([scheduler, entry.dilation, entry.system_efficiency])
    rows.append(["Upper-limit", float("nan"), result.mean_upper_limit()])
    print()
    print(
        format_table(
            ["Scheduler", "Dilation (min)", "SysEfficiency (max)"],
            rows,
            title=f"Table 1 — averages over {n_moments} Intrepid congested moments",
        )
    )

    # Paper shape: dilation decreases monotonically from MaxSysEff through the
    # MinMax sweep to MinDilation; SysEfficiency moves the other way; the
    # heuristics are competitive with Intrepid+burst-buffers without using any.
    assert (
        table["MinDilation"].dilation
        <= table["MinMax-0.5"].dilation
        <= table["MaxSysEff"].dilation
    )
    assert (
        table["MaxSysEff"].system_efficiency
        >= table["MinMax-0.5"].system_efficiency
        >= table["MinDilation"].system_efficiency * 0.95
    )
    assert table["MaxSysEff"].system_efficiency >= 0.9 * table["Intrepid"].system_efficiency
    assert table["MinDilation"].dilation <= table["Intrepid"].dilation
    assert result.mean_upper_limit() >= table["MaxSysEff"].system_efficiency - 1e-9

"""Figures 8-10 — per-moment comparison on the Intrepid congested moments.

Figure 8: Priority-MaxSysEff / Priority-MinDilation vs the Intrepid scheduler
(with burst buffers) and the upper limit, per congested moment.
Figure 9: the Priority MinMax-γ sweep.
Figure 10: the non-Priority variants.

The benchmark runs a reduced number of moments by default and prints the
per-moment Dilation and SysEfficiency series (the curves of the figures).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import congested_moments_experiment, format_series


def test_figures_8_to_10_intrepid_moments(benchmark, scale):
    n_moments = 6 * scale
    schedulers = (
        "Priority-MaxSysEff",
        "Priority-MinMax-0.25",
        "Priority-MinMax-0.5",
        "Priority-MinMax-0.75",
        "Priority-MinDilation",
        "MaxSysEff",
        "MinDilation",
    )

    def experiment():
        return congested_moments_experiment(
            "intrepid", n_moments=n_moments, schedulers=schedulers, rng=810
        )

    result = run_once(benchmark, experiment)

    print()
    print(f"Figures 8-10 — {n_moments} Intrepid congested moments")
    print("SysEfficiency per moment:")
    for scheduler in list(schedulers) + ["Intrepid"]:
        print("  " + format_series(scheduler, result.series(scheduler, "system_efficiency")))
    print("  " + format_series("Upper limit", result.upper_limit_series()))
    print("Dilation per moment:")
    for scheduler in list(schedulers) + ["Intrepid"]:
        print("  " + format_series(scheduler, result.series(scheduler, "dilation")))

    table = result.table()
    # The heuristics beat the native scheduler (with burst buffers) on their
    # respective objectives, as in the paper.
    assert table["MaxSysEff"].system_efficiency >= 0.9 * table["Intrepid"].system_efficiency
    assert table["Priority-MinDilation"].dilation <= table["Intrepid"].dilation

"""Table 2 — averages over the 11 Mira congested moments.

Same rows as Table 1, with the Mira scheduler (with burst buffers) as the
baseline.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import TABLE_SCHEDULERS, congested_moments_experiment, format_table


def test_table2_mira_averages(benchmark, scale):
    n_moments = min(11, 4 * scale)

    def experiment():
        return congested_moments_experiment(
            "mira", n_moments=n_moments, schedulers=TABLE_SCHEDULERS, rng=2
        )

    result = run_once(benchmark, experiment)
    table = result.table()

    rows = []
    for scheduler in list(TABLE_SCHEDULERS) + ["Mira"]:
        entry = table[scheduler]
        rows.append([scheduler, entry.dilation, entry.system_efficiency])
    rows.append(["Upper-limit", float("nan"), result.mean_upper_limit()])
    print()
    print(
        format_table(
            ["Scheduler", "Dilation (min)", "SysEfficiency (max)"],
            rows,
            title=f"Table 2 — averages over {n_moments} Mira congested moments",
        )
    )

    assert (
        table["MinDilation"].dilation
        <= table["MinMax-0.5"].dilation
        <= table["MaxSysEff"].dilation
    )
    assert table["MaxSysEff"].system_efficiency >= 0.9 * table["Mira"].system_efficiency
    assert table["MinDilation"].dilation <= table["Mira"].dilation
    assert result.mean_upper_limit() >= table["MaxSysEff"].system_efficiency - 1e-9

"""Figure 15 — SysEfficiency and Dilation on the Vesta node mixes.

Paper grid: {IOR, MaxSysEff, MinDilation} × {no burst buffers, burst buffers}
over eleven node mixes between 256 and 4x512 nodes.  The headline: with
three or more applications, the heuristics *without* burst buffers perform
similarly to (or better than) the native scheduler *with* burst buffers.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import VESTA_CONFIGURATIONS, format_table, vesta_experiment
from repro.workload import VESTA_SCENARIOS


def test_figure15_vesta_grid(benchmark, scale):
    scenarios = VESTA_SCENARIOS if scale > 1 else VESTA_SCENARIOS[:8]

    def experiment():
        return vesta_experiment(scenarios=scenarios)

    result = run_once(benchmark, experiment)

    print()
    for metric, title in (
        ("system_efficiency", "Figure 15 (top) — SysEfficiency (%)"),
        ("dilation", "Figure 15 (bottom) — Dilation"),
    ):
        rows = []
        for mix in scenarios:
            rows.append(
                [mix]
                + [
                    getattr(result.cell(mix, cfg).summary, metric)
                    for cfg in VESTA_CONFIGURATIONS
                ]
            )
        print(format_table(["Mix"] + list(VESTA_CONFIGURATIONS), rows, title=title))

    # Shape assertions on the congested multi-application mixes.
    for mix in scenarios:
        if mix.count("/") < 2:
            continue  # fewer than 3 applications
        ior = result.cell(mix, "IOR").summary
        bb_ior = result.cell(mix, "BBIOR").summary
        maxsyseff = result.cell(mix, "MaxSysEff").summary
        mindil = result.cell(mix, "MinDilation").summary
        assert maxsyseff.system_efficiency > ior.system_efficiency
        assert mindil.dilation < ior.dilation
        # No burst buffers needed to stay competitive with IOR + burst buffers.
        assert maxsyseff.system_efficiency >= 0.85 * bb_ior.system_efficiency

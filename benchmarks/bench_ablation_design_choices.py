"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the knobs of the reproduction so
a reader can see how much each one matters:

* interference model on/off for the uncoordinated baseline;
* burst-buffer capacity sweep for the Intrepid baseline;
* the MinMax-γ threshold sweep (the administrator's trade-off dial);
* the periodic period-search ``epsilon`` (solution quality vs search cost).
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.core import Application, generic, intrepid
from repro.core.platform import BurstBufferSpec
from repro.experiments import SchedulerCase, format_table, run_grid
from repro.online import FairShare
from repro.periodic import InsertInScheduleThrou, search_period
from repro.simulator import NO_INTERFERENCE, SimulatorConfig, simulate
from repro.workload import intrepid_congested_moments


def _moments(n, seed):
    return intrepid_congested_moments(n, rng=seed)


def test_ablation_interference_model(benchmark, scale):
    """How much of the baseline's degradation comes from interference?"""
    moments = _moments(3 * scale, 100)

    def experiment():
        rows = []
        for label, scheduler in (
            ("FairShare (interfering)", FairShare()),
            ("FairShare (ideal)", FairShare(interference=NO_INTERFERENCE)),
        ):
            effs, dils = [], []
            for moment in moments:
                summary = simulate(moment, scheduler).summary()
                effs.append(summary.system_efficiency)
                dils.append(summary.dilation)
            rows.append([label, float(np.mean(effs)), float(np.mean(dils))])
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(["Baseline", "SysEff (%)", "Dilation"], rows,
                       title="Ablation — interference model"))
    assert rows[0][1] < rows[1][1]  # interference hurts


def test_ablation_burst_buffer_capacity(benchmark, scale):
    """Sweep the staging capacity of the Intrepid burst buffer."""
    moments = _moments(2 * scale, 101)
    capacities = [0.5e12, 2e12, 4e12, 16e12]

    def experiment():
        rows = []
        for capacity in capacities:
            platform = intrepid().with_burst_buffer(
                BurstBufferSpec(capacity=capacity, ingest_bandwidth=512e9,
                                drain_bandwidth=0.6 * 88e9)
            )
            effs = []
            for moment in moments:
                result = simulate(
                    moment.with_platform(platform),
                    FairShare(name="Intrepid"),
                    SimulatorConfig(use_burst_buffer=True),
                )
                effs.append(result.summary().system_efficiency)
            rows.append([f"{capacity / 1e12:.1f} TB", float(np.mean(effs))])
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(["BB capacity", "Baseline SysEff (%)"], rows,
                       title="Ablation — burst-buffer capacity"))
    # More staging capacity never hurts the baseline.
    values = [r[1] for r in rows]
    assert values[-1] >= values[0] - 2.0


def test_ablation_minmax_gamma_sweep(benchmark, scale):
    """The γ dial trades Dilation for SysEfficiency monotonically (on average)."""
    moments = _moments(3 * scale, 102)
    gammas = [0.0, 0.25, 0.5, 0.75, 1.0]

    def experiment():
        cases = [SchedulerCase(f"MinMax-{g}") if g not in (0.0, 1.0)
                 else SchedulerCase("MaxSysEff" if g == 0.0 else "MinDilation",
                                    label=f"MinMax-{g}")
                 for g in gammas]
        grid = run_grid(moments, cases)
        return [[label, grid.mean(label, "system_efficiency"), grid.mean(label, "dilation")]
                for label in grid.schedulers()]

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(["gamma", "SysEff (%)", "Dilation"], rows,
                       title="Ablation — MinMax-γ sweep (γ=0 is MaxSysEff, γ=1 is MinDilation)"))
    dilations = [r[2] for r in rows]
    assert dilations[-1] <= dilations[0]  # larger γ => better (lower) dilation


def test_ablation_period_search_epsilon(benchmark, scale):
    """Finer period sweeps cannot produce worse schedules (only slower searches)."""
    platform = generic(total_processors=400, node_bandwidth=1e6,
                       system_bandwidth=4e7, name="ablation")
    apps = [
        Application.periodic(f"a{i}", 80, work=120.0 + 40 * i, io_volume=2e9,
                             n_instances=3)
        for i in range(4)
    ]

    def experiment():
        rows = []
        for epsilon in (0.5, 0.2, 0.05):
            result = search_period(
                InsertInScheduleThrou(), platform, apps,
                objective="system_efficiency", epsilon=epsilon,
                max_period_factor=6.0,
            )
            rows.append([f"eps={epsilon}", len(result.sweep),
                         result.best_schedule.summary().system_efficiency])
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(["epsilon", "periods tried", "best SysEff (%)"], rows,
                       title="Ablation — period-search granularity"))
    assert rows[-1][2] >= rows[0][2] - 1e-6

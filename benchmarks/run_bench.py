#!/usr/bin/env python
"""One-command engine-scaling benchmark: write ``BENCH_engine.json``.

CI perf-job entry point — runs the scaling suite of
:mod:`repro.experiments.scaling` at scale 1 (or ``--scale N``) without any
pytest machinery and writes the machine-readable payload:

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --scale 4 --out perf/BENCH_engine.json

Exit status is non-zero when the optimized and reference engines disagree on
any cell's timeline (event count / makespan) — a correctness regression, not
just a slow run — so a CI job fails loudly on the thing that matters most.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_engine.json",
        help="output path for the JSON payload (default: %(default)s)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        help="event-budget multiplier, like REPRO_BENCH_SCALE (default: 1)",
    )
    parser.add_argument(
        "--scheduler",
        default="MaxSysEff",
        help="scheduler driven through both engines (default: %(default)s)",
    )
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="time only the optimized engine (fast smoke run, no speedups)",
    )
    args = parser.parse_args(argv)

    try:
        from repro.experiments.scaling import run_bench_cli
    except ImportError as exc:  # pragma: no cover - environment guard
        print(
            f"cannot import repro ({exc}); run with PYTHONPATH=src "
            "or install the package",
            file=sys.stderr,
        )
        return 2

    from repro.utils.validation import ValidationError

    try:
        return run_bench_cli(
            out=args.out,
            scale=args.scale,
            scheduler=args.scheduler,
            include_reference=not args.no_reference,
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())

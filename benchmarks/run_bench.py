#!/usr/bin/env python
"""One-command benchmark suite: write ``BENCH_engine.json`` + ``BENCH_grid.json``.

CI perf-job entry point — runs the engine-scaling suite of
:mod:`repro.experiments.scaling` and the end-to-end experiment benchmark of
:mod:`repro.experiments.grid_bench` at scale 1 (or ``--scale N``) without
any pytest machinery and writes both machine-readable payloads:

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --scale 4 --out perf/BENCH_engine.json

Exit status is non-zero when any ``identical`` flag goes false — the
optimized engine disagreeing with the reference timeline, a pooled spec run
disagreeing with the serial one, or a warm-started period sweep disagreeing
with the naive sweep.  All are correctness regressions, not just slow runs,
so a CI job fails loudly on the thing that matters most.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    # The flag set deliberately mirrors `repro bench` (src/repro/cli.py)
    # instead of sharing a builder: this script must finish parsing — and
    # print its friendly PYTHONPATH hint — before anything from `repro` is
    # importable, so keep the two blocks in sync by hand.
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_engine.json",
        help="output path for the engine payload (default: %(default)s)",
    )
    parser.add_argument(
        "--grid-out",
        default="BENCH_grid.json",
        help="output path for the experiment-grid payload (default: %(default)s)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        help="benchmark-size multiplier, like REPRO_BENCH_SCALE (default: 1)",
    )
    parser.add_argument(
        "--scheduler",
        default="MaxSysEff",
        help="scheduler driven through both engines (default: %(default)s)",
    )
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help=(
            "time only the optimized engine — no speedups; combine with "
            "--engine-only for a fast smoke run"
        ),
    )
    half = parser.add_mutually_exclusive_group()
    half.add_argument(
        "--engine-only",
        action="store_true",
        help="skip the experiment-grid benchmark (BENCH_grid.json)",
    )
    half.add_argument(
        "--grid-only",
        action="store_true",
        help="skip the engine-scaling benchmark (BENCH_engine.json)",
    )
    args = parser.parse_args(argv)

    try:
        from repro.experiments.scaling import run_bench_cli
    except ImportError as exc:  # pragma: no cover - environment guard
        print(
            f"cannot import repro ({exc}); run with PYTHONPATH=src "
            "or install the package",
            file=sys.stderr,
        )
        return 2

    from repro.utils.validation import ValidationError

    try:
        return run_bench_cli(
            out=args.out,
            scale=args.scale,
            scheduler=args.scheduler,
            include_reference=not args.no_reference,
            grid_out=None if args.engine_only else args.grid_out,
            include_engine=not args.grid_only,
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""One-command engine-scaling benchmark: write ``BENCH_engine.json``.

CI perf-job entry point — runs the scaling suite of
:mod:`repro.experiments.scaling` at scale 1 (or ``--scale N``) without any
pytest machinery and writes the machine-readable payload:

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --scale 4 --out perf/BENCH_engine.json

Exit status is non-zero when the optimized and reference engines disagree on
any cell's timeline (event count / makespan) — a correctness regression, not
just a slow run — so a CI job fails loudly on the thing that matters most.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_engine.json",
        help="output path for the JSON payload (default: %(default)s)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        help="event-budget multiplier, like REPRO_BENCH_SCALE (default: 1)",
    )
    parser.add_argument(
        "--scheduler",
        default="MaxSysEff",
        help="scheduler driven through both engines (default: %(default)s)",
    )
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="time only the optimized engine (fast smoke run, no speedups)",
    )
    args = parser.parse_args(argv)

    try:
        from repro.experiments.scaling import run_scaling_suite, write_bench_json
    except ImportError as exc:  # pragma: no cover - environment guard
        print(
            f"cannot import repro ({exc}); run with PYTHONPATH=src "
            "or install the package",
            file=sys.stderr,
        )
        return 2

    payload = run_scaling_suite(
        scheduler=args.scheduler,
        events_budget=4000 * max(1, args.scale),
        include_reference=not args.no_reference,
        progress=print,
    )
    out = write_bench_json(payload, args.out)
    print(f"wrote {out}")

    if not args.no_reference:
        broken = [
            f"{c['n_apps']}x{c['n_instances']}"
            for c in payload["cells"]
            if not c["identical"]
        ]
        if broken:
            print(
                f"ENGINE MISMATCH on cells: {', '.join(broken)} — the optimized "
                "engine no longer reproduces the reference timeline",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 1 — per-application I/O throughput decrease under congestion.

Paper: over 400 Intrepid applications, uncoordinated congestion reduces the
I/O throughput an application observes by up to ~70%.

The benchmark replays staggered application batches under the interfering
fair-share baseline and prints the histogram, the mean and the maximum
decrease.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import throughput_decrease_study


def test_figure1_throughput_decrease(benchmark, scale):
    n_applications = 60 * scale

    def experiment():
        return throughput_decrease_study(n_applications=n_applications, rng=1)

    study = run_once(benchmark, experiment)

    print()
    print(f"Figure 1 — I/O throughput decrease over {study.n_applications} applications")
    print(f"  mean decrease      : {study.mean_decrease:5.1f} %")
    print(f"  maximum decrease   : {study.max_decrease:5.1f} %   (paper: up to ~70%)")
    print(f"  share above 50%    : {100 * study.fraction_above(50):5.1f} %")
    print("  histogram (10% bins):")
    for lo, hi, count in zip(study.bin_edges[:-1], study.bin_edges[1:], study.histogram):
        print(f"    {lo:3.0f}-{hi:3.0f}%  {count}")

    assert study.max_decrease > 40.0
    assert study.fraction_above(30.0) > 0.1

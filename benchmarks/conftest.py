"""Shared helpers for the benchmark harness.

Most benchmarks regenerate one of the paper's tables or figures and print
the corresponding rows/series (the numbers land in the pytest-benchmark
report *and* on stdout with ``-s``).  ``bench_engine_scaling.py`` is the
exception: it measures the simulator engine itself (events/sec of the
optimized engine vs the preserved seed engine) and writes the
machine-readable ``BENCH_engine.json`` — see ``benchmarks/run_bench.py`` for
the one-command CI entry point and the "Performance" section of ROADMAP.md
for how to read the payload.

Environment knobs:

``REPRO_BENCH_SCALE``
    Experiment-size multiplier.  ``1`` (default) is a laptop-friendly
    reduced setting; larger values approach the paper's full settings (e.g.
    200 repetitions for Figure 6, 56 congested moments for Table 1) and
    multiply the engine-scaling event budget.
``REPRO_BENCH_OUT``
    Output path for ``BENCH_engine.json`` (default: current directory).

Experiment grids accept ``workers=`` (see
:func:`repro.experiments.runner.run_grid`) to fan independent cells out over
processes; benchmarks keep the default serial mode so that the timings stay
comparable run-to-run.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> int:
    """Experiment-size multiplier controlled by ``REPRO_BENCH_SCALE``."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1


@pytest.fixture
def scale() -> int:
    """The benchmark scale factor as a fixture."""
    return bench_scale()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    The experiments are deterministic (fixed seeds), so a single round is a
    faithful timing; re-running them dozens of times would only slow the
    harness down.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows/series (the numbers land in the pytest-benchmark
report *and* on stdout with ``-s``).  The ``REPRO_BENCH_SCALE`` environment
variable scales the experiment sizes: ``1`` (default) is a laptop-friendly
reduced setting; larger values approach the paper's full settings (e.g. 200
repetitions for Figure 6, 56 congested moments for Table 1).
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> int:
    """Experiment-size multiplier controlled by ``REPRO_BENCH_SCALE``."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1


@pytest.fixture
def scale() -> int:
    """The benchmark scale factor as a fixture."""
    return bench_scale()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    The experiments are deterministic (fixed seeds), so a single round is a
    faithful timing; re-running them dozens of times would only slow the
    harness down.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

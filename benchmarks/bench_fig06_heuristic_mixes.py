"""Figure 6 — objectives of the eight heuristics on the three application mixes.

(a) 10 large applications, I/O-to-compute ratio 20%;
(b) 50 small and 5 large applications, ratio 20%;
(c) 50 small and 5 large applications, ratio 35%.

The paper averages 200 random mixes per panel; the benchmark uses a reduced
repetition count by default (``REPRO_BENCH_SCALE`` raises it) and prints the
per-heuristic SysEfficiency / Dilation averages.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments import FIGURE6_SCHEDULERS, figure6_experiment


@pytest.mark.parametrize(
    "scenario", ["10large-20", "50small5large-20", "50small5large-35"]
)
def test_figure6_panel(benchmark, scale, scenario):
    n_repetitions = 5 * scale

    def experiment():
        return figure6_experiment(
            scenario, n_repetitions=n_repetitions, schedulers=FIGURE6_SCHEDULERS, rng=6
        )

    result = run_once(benchmark, experiment)

    print()
    print(f"Figure 6 ({scenario}) — averages over {n_repetitions} mixes")
    print(f"  {'scheduler':24s} {'SysEff(%)':>10s} {'Dilation':>10s}")
    for averages in result.ranked_by_system_efficiency():
        print(
            f"  {averages.scheduler:24s} {averages.system_efficiency:10.2f} "
            f"{averages.dilation:10.2f}"
        )

    # Paper shape: MaxSysEff wins SysEfficiency, MinDilation wins Dilation,
    # and the MinMax trade-off sits between the two on Dilation (with a small
    # tolerance: in heavily congested mixes MinMax-0.5 and MinDilation become
    # nearly indistinguishable and their averages can cross by a hair).
    avg = result.averages
    assert avg["MaxSysEff"].system_efficiency >= avg["MinDilation"].system_efficiency
    assert avg["MinDilation"].dilation <= avg["MaxSysEff"].dilation
    assert avg["MinDilation"].dilation <= avg["MinMax-0.5"].dilation * 1.05
    assert avg["MinMax-0.5"].dilation <= avg["MaxSysEff"].dilation * 1.05

"""Figure 5 — characteristics of the applications that ran on Intrepid in 2013.

(a) system usage per day for each application category;
(b) percentage of time spent doing I/O per application category.

The benchmark generates a synthetic year of Darshan-like records with the
paper's category mix and prints both summaries.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import characterize
from repro.core import intrepid
from repro.workload import generate_records, replicate_uncovered
from repro.workload.categories import Category


def test_figure5_workload_characteristics(benchmark, scale):
    n_jobs = 1500 * scale

    def experiment():
        records = generate_records(n_jobs, intrepid(), rng=2013, duration_days=365.0)
        return characterize(replicate_uncovered(records, rng=7))

    usage = run_once(benchmark, experiment)

    print()
    print("Figure 5a — average node-hours per day by category")
    for category in Category:
        print(f"  {category.value:11s} {usage.daily_node_hours[category]:12.0f}")
    print("Figure 5b — percentage of time spent in I/O by category")
    for category in Category:
        print(f"  {category.value:11s} {usage.io_time_percent[category]:6.1f} %")
    print("Job counts:", {c.value: usage.job_counts[c] for c in Category})

    # Shape assertions: small jobs dominate the count, very large jobs exist,
    # small jobs spend proportionally more time in I/O than very large ones.
    assert usage.job_counts[Category.SMALL] > usage.job_counts[Category.VERY_LARGE]
    assert usage.io_time_percent[Category.SMALL] >= usage.io_time_percent[Category.VERY_LARGE]

"""Engine scaling — events/sec of the three engines on identical timelines.

Not a paper figure: this is the perf-regression harness for the simulator
hot path.  Every cell simulates the same congested scenario with the
batched numpy engine, the event-heap engine and the preserved seed engine
over the same horizon, reports events/sec, and asserts that all three
traverse the identical timeline.  The suite payload is written to
``BENCH_engine.json`` (override with ``REPRO_BENCH_OUT``) so successive
PRs can diff the trajectory.

``REPRO_BENCH_SCALE`` multiplies the per-cell event budget; scale 1 keeps
the whole suite around a minute on a laptop.
"""

from __future__ import annotations

import os

from conftest import run_once

from repro.experiments.scaling import (
    DEFAULT_GRID,
    run_scaling_suite,
    write_bench_json,
)


def test_engine_scaling_suite(benchmark, scale):
    def experiment():
        return run_scaling_suite(
            DEFAULT_GRID, events_budget=4000 * scale, progress=None
        )

    payload = run_once(benchmark, experiment)
    out = write_bench_json(
        payload, os.environ.get("REPRO_BENCH_OUT", "BENCH_engine.json")
    )

    print()
    print("Engine scaling — events/sec (batched vs heap vs seed engine):")
    for cell in payload["cells"]:
        print(
            f"  {cell['n_apps']:4d} apps x {cell['n_instances']:3d} inst: "
            f"batched {cell['batched']['events_per_sec']:8.0f} ev/s, "
            f"heap {cell['engine']['events_per_sec']:8.0f} ev/s, "
            f"seed {cell['reference']['events_per_sec']:8.0f} ev/s "
            f"-> {cell['batched_speedup_vs_heap']:.2f}x over heap"
        )
    print(f"  payload written to {out}")

    # All engines must walk the identical timeline in every cell, or the
    # events/sec ratios compare different simulations.
    assert all(cell["identical"] for cell in payload["cells"])
    # The headline claims on the 500-app x 100-instance cell: the heap
    # engine keeps its >= 3x over the seed engine, and the batched engine
    # adds >= 5x over the heap engine.
    headline = next(
        c for c in payload["cells"] if (c["n_apps"], c["n_instances"]) == (500, 100)
    )
    assert headline["speedup"] >= 3.0, f"headline speedup {headline['speedup']:.2f}x"
    assert headline["batched_speedup_vs_heap"] >= 5.0, (
        f"headline batched speedup {headline['batched_speedup_vs_heap']:.2f}x over heap"
    )
    # No pessimization — but only judge cells that ran long enough for the
    # wall clock to mean something (millisecond cells are scheduler noise).
    assert all(
        cell["speedup"] >= 1.0
        for cell in payload["cells"]
        if cell["reference"]["seconds"] >= 1.0
    )
    assert all(
        cell["batched_speedup_vs_heap"] >= 1.0
        for cell in payload["cells"]
        if cell["engine"]["seconds"] >= 1.0
    )

"""Figures 11-13 — per-moment comparison on the Mira congested moments.

Same structure as Figures 8-10, on the 11 Mira congested moments.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import congested_moments_experiment, format_series


def test_figures_11_to_13_mira_moments(benchmark, scale):
    n_moments = min(11, 4 * scale)
    schedulers = (
        "Priority-MaxSysEff",
        "Priority-MinMax-0.5",
        "Priority-MinDilation",
        "MaxSysEff",
        "MinDilation",
    )

    def experiment():
        return congested_moments_experiment(
            "mira", n_moments=n_moments, schedulers=schedulers, rng=1113
        )

    result = run_once(benchmark, experiment)

    print()
    print(f"Figures 11-13 — {n_moments} Mira congested moments")
    print("SysEfficiency per moment:")
    for scheduler in list(schedulers) + ["Mira"]:
        print("  " + format_series(scheduler, result.series(scheduler, "system_efficiency")))
    print("  " + format_series("Upper limit", result.upper_limit_series()))
    print("Dilation per moment:")
    for scheduler in list(schedulers) + ["Mira"]:
        print("  " + format_series(scheduler, result.series(scheduler, "dilation")))

    table = result.table()
    assert table["MaxSysEff"].system_efficiency >= 0.9 * table["Mira"].system_efficiency
    assert table["Priority-MinDilation"].dilation <= table["Mira"].dilation

"""Figure 16 — per-application dilation in the 512/256/256/32 Vesta scenario.

Paper: under MaxSysEff the small (32-node) application is slowed further
(+36% dilation) while the big applications improve by ~48%, which is what
buys the system-level efficiency; under MinDilation every application's
dilation decreases roughly uniformly (-8.4% on average).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure16_per_application_dilation, format_table


def test_figure16_per_application_dilation(benchmark, scale):
    def experiment():
        return figure16_per_application_dilation("512/256/256/32")

    data = run_once(benchmark, experiment)

    applications = sorted(next(iter(data.values())))
    rows = [
        [configuration] + [data[configuration][app] for app in applications]
        for configuration in ("IOR", "MaxSysEff", "MinDilation")
    ]
    print()
    print(
        format_table(
            ["Configuration"] + applications,
            rows,
            title="Figure 16 — per-application dilation, 512/256/256/32",
        )
    )

    big, small = "ior-0-512n", "ior-3-32n"
    # MaxSysEff favours the big application at the small one's expense.
    assert data["MaxSysEff"][big] <= data["IOR"][big]
    assert data["MaxSysEff"][big] <= data["MaxSysEff"][small]
    # MinDilation keeps the spread tight and does not sacrifice anyone as much.
    spread = lambda d: max(d.values()) - min(d.values())  # noqa: E731
    assert spread(data["MinDilation"]) <= spread(data["MaxSysEff"])
    assert max(data["MinDilation"].values()) <= max(data["MaxSysEff"].values()) + 1e-9

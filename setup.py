"""Packaging metadata for the IPDPS 2015 I/O-scheduling reproduction.

Installs the ``repro`` package from ``src/`` and the ``repro`` console
script (the unified CLI of :mod:`repro.cli`)::

    pip install -e .
    repro quickstart

The package also runs uninstalled: ``PYTHONPATH=src python -m repro ...``.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single-sourced from the package so `repro --version` and pip metadata can
# never disagree.
_version = re.search(
    r'^__version__ = "([^"]+)"',
    Path(__file__).with_name("src").joinpath("repro", "__init__.py").read_text(),
    re.MULTILINE,
).group(1)

setup(
    name="repro-hpc-io-scheduling",
    version=_version,
    description=(
        "Reproduction of 'Scheduling the I/O of HPC applications under "
        "congestion' (Gainaru et al., IPDPS 2015)"
    ),
    long_description=__doc__,
    license="MIT",
    python_requires=">=3.11",
    install_requires=["numpy"],
    extras_require={
        # The tier-1 suite hard-imports both (tests/test_properties.py and
        # tests/test_allocation_invariants.py fuzz the core invariants).
        "test": ["pytest", "hypothesis"],
        # `repro report` renders PNG figures with matplotlib when available
        # and falls back to text charts without it.
        "plots": ["matplotlib"],
    },
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Distributed Computing",
    ],
)

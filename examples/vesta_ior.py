#!/usr/bin/env python3
"""Emulate the Vesta / modified-IOR experiments of Section 5 (Figures 14-16).

Three artefacts are printed:

1. Figure 14 — the execution-time overhead of routing every write request
   through the scheduler thread, per node mix (1% to ~5%).
2. Figure 15 — SysEfficiency and Dilation of stock IOR vs the MaxSysEff and
   MinDilation heuristics, with and without burst buffers, for each node mix.
3. Figure 16 — the per-application dilations of the 512/256/256/32 mix,
   showing how MaxSysEff sacrifices the small application while MinDilation
   spreads the slowdown.

Run with::

    python examples/vesta_ior.py
"""

from __future__ import annotations

from repro.experiments import (
    figure14_overheads,
    figure16_per_application_dilation,
    format_mapping,
    format_table,
    vesta_experiment,
)
from repro.workload import VESTA_SCENARIOS


def main() -> None:
    # Keep the example fast: a subset of the node mixes; pass the full list
    # (VESTA_SCENARIOS) to reproduce the whole figure.
    mixes = ("256", "512", "32/512", "256/256", "512/256/32", "512/256/256/32",
             "512/512/512/512")

    print("Figure 14 — scheduler-request overhead (% of execution time):")
    print(format_mapping(figure14_overheads(mixes)))

    result = vesta_experiment(scenarios=mixes)
    rows = []
    for mix in mixes:
        row = [mix]
        for configuration in ("IOR", "MaxSysEff", "MinDilation",
                              "BBIOR", "BBMaxSysEff", "BBMinDilation"):
            cell = result.cell(mix, configuration)
            row.append(cell.summary.system_efficiency)
        rows.append(row)
    print(
        format_table(
            ["Mix", "IOR", "MaxSysEff", "MinDil", "BBIOR", "BBMaxSysEff", "BBMinDil"],
            rows,
            title="Figure 15 (top) — SysEfficiency (%) per node mix",
        )
    )
    rows = []
    for mix in mixes:
        row = [mix]
        for configuration in ("IOR", "MaxSysEff", "MinDilation",
                              "BBIOR", "BBMaxSysEff", "BBMinDilation"):
            row.append(result.cell(mix, configuration).summary.dilation)
        rows.append(row)
    print(
        format_table(
            ["Mix", "IOR", "MaxSysEff", "MinDil", "BBIOR", "BBMaxSysEff", "BBMinDil"],
            rows,
            title="Figure 15 (bottom) — Dilation per node mix",
        )
    )

    print("Figure 16 — per-application dilation, 512/256/256/32 mix:")
    data = figure16_per_application_dilation("512/256/256/32")
    apps = sorted(next(iter(data.values())))
    rows = [[cfg] + [data[cfg][a] for a in apps] for cfg in ("IOR", "MaxSysEff", "MinDilation")]
    print(format_table(["Configuration"] + apps, rows))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Replay Intrepid congested moments (the Table 1 / Figures 8-10 experiment).

The script generates a handful of Intrepid "congested moments" — application
mixes whose aggregate I/O demand exceeds the file-system bandwidth, the
situation the paper extracted from Darshan logs — and compares the paper's
heuristics (without burst buffers) against the machine's native behaviour
with and without burst buffers, plus the upper limit.

Run with::

    python examples/congested_moments.py [n_moments]
"""

from __future__ import annotations

import sys

from repro.core import intrepid
from repro.experiments import SchedulerCase, format_series, format_table, run_grid
from repro.workload import intrepid_congested_moments


def main(n_moments: int = 6) -> None:
    moments = intrepid_congested_moments(n_moments, rng=2015)
    cases = [
        SchedulerCase("Priority-MaxSysEff"),
        SchedulerCase("Priority-MinMax-0.5"),
        SchedulerCase("Priority-MinDilation"),
        SchedulerCase("Intrepid"),
        SchedulerCase(
            "Intrepid",
            use_burst_buffer=True,
            burst_buffer_platform=intrepid(with_burst_buffer=True),
            label="Intrepid+BB",
        ),
    ]
    grid = run_grid(moments, cases)

    # Per-moment series, like the curves of Figures 8-10.
    print("Per-moment SysEfficiency (%):")
    for scheduler in grid.schedulers():
        print("  " + format_series(scheduler, grid.series(scheduler, "system_efficiency")))
    print("  " + format_series("Upper limit",
                               grid.series(grid.schedulers()[0], "upper_limit")))
    print()
    print("Per-moment Dilation:")
    for scheduler in grid.schedulers():
        print("  " + format_series(scheduler, grid.series(scheduler, "dilation")))
    print()

    # Averages, like Table 1.
    rows = []
    for scheduler, metrics in grid.averages().items():
        rows.append([scheduler, metrics["dilation"], metrics["system_efficiency"]])
    rows.append(["Upper limit", float("nan"),
                 grid.mean(grid.schedulers()[0], "upper_limit")])
    print(
        format_table(
            ["Scheduler", "Dilation (min)", "SysEfficiency (max)"],
            [[r[0], r[1], r[2]] for r in rows],
            title=f"Averages over {n_moments} Intrepid congested moments",
        )
    )
    print(
        "Note how the heuristics, *without* burst buffers, stay close to (or beat)\n"
        "the native scheduler *with* burst buffers — the paper's striking result."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)

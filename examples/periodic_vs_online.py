#!/usr/bin/env python3
"""Compare periodic (steady-state) schedules against the online heuristics.

Section 3.2 of the paper defines periodic schedules and proves the problem is
NP-complete; Section 7 leaves the periodic-vs-online comparison as future
work.  This example runs that comparison on a small workload:

* the two greedy periodic heuristics (Insert-In-Schedule-Throu and
  Insert-In-Schedule-Cong) with the (1+eps) period sweep, scored on their
  steady-state period;
* the online MaxSysEff / MinDilation heuristics on the same applications,
  scored on a full simulated execution.

Run with::

    python examples/periodic_vs_online.py
"""

from __future__ import annotations

from repro.core import Application, Scenario, generic
from repro.experiments import format_table
from repro.online import make_scheduler
from repro.periodic import InsertInScheduleCong, InsertInScheduleThrou, search_period
from repro.simulator import simulate


def main() -> None:
    platform = generic(
        total_processors=400,
        node_bandwidth=1e6,
        system_bandwidth=4e7,
        name="steady-state",
    )
    applications = [
        Application.periodic("checkpointer", 120, work=180.0, io_volume=2.4e9,
                             n_instances=6),
        Application.periodic("analytics", 80, work=90.0, io_volume=1.6e9,
                             n_instances=8),
        Application.periodic("solver", 150, work=420.0, io_volume=3.0e9,
                             n_instances=4),
        Application.periodic("post-proc", 50, work=60.0, io_volume=8.0e8,
                             n_instances=10),
    ]

    rows = []
    for heuristic, objective in (
        (InsertInScheduleThrou(), "system_efficiency"),
        (InsertInScheduleCong(), "dilation"),
    ):
        result = search_period(
            heuristic, platform, applications, objective=objective, epsilon=0.1,
            max_period_factor=6.0,
        )
        summary = result.best_schedule.summary()
        rows.append(
            [
                f"{heuristic.name} (periodic)",
                summary.system_efficiency,
                summary.dilation,
                result.best_period,
            ]
        )

    scenario = Scenario(platform=platform, applications=tuple(applications),
                        label="periodic-vs-online")
    for name in ("MaxSysEff", "MinDilation"):
        online = simulate(scenario, make_scheduler(name))
        summary = online.summary()
        rows.append([f"{name} (online)", summary.system_efficiency,
                     summary.dilation, float("nan")])

    print(
        format_table(
            ["Scheduler", "SysEfficiency (%)", "Dilation", "Period T (s)"],
            rows,
            title="Periodic steady state vs online execution",
        )
    )
    print(
        "The periodic schedules know the whole workload in advance and avoid\n"
        "congestion by construction; the online heuristics get close without\n"
        "needing any advance information — which is why the paper deploys the\n"
        "online version and leaves periodic scheduling as future work."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Characterize a synthetic year of Intrepid workload (Figures 1 and 5).

Two analyses:

1. Figure 5 — generate a year of Darshan-like records, report per-category
   system usage and the percentage of time each category spends doing I/O.
2. Figure 1 — replay batches of applications under uncoordinated congestion
   and histogram the per-application I/O throughput decrease.

Run with::

    python examples/workload_characterization.py
"""

from __future__ import annotations

from repro.analysis import characterize, throughput_decrease_study
from repro.core import intrepid
from repro.experiments import format_table
from repro.workload import generate_records, replicate_uncovered


def main() -> None:
    platform = intrepid()

    # ---------------- Figure 5 ----------------
    records = generate_records(2000, platform, rng=2013, duration_days=365.0)
    covered = [r for r in records if r.covered]
    print(f"Generated {len(records)} jobs over one year "
          f"({len(covered)} captured by the characterization tool).")
    full = replicate_uncovered(records, rng=7)
    usage = characterize(full)
    rows = [
        [
            category.value,
            usage.job_counts[category],
            usage.daily_node_hours[category],
            usage.io_time_percent[category],
        ]
        for category in usage.job_counts
    ]
    print(
        format_table(
            ["Category", "Jobs", "Node-hours/day", "Time in I/O (%)"],
            rows,
            title="Figure 5 — workload characterization by category",
        )
    )

    # ---------------- Figure 1 ----------------
    study = throughput_decrease_study(n_applications=120, rng=2013)
    print("Figure 1 — per-application I/O throughput decrease under congestion")
    print(f"  applications measured : {study.n_applications}")
    print(f"  mean decrease         : {study.mean_decrease:.1f}%")
    print(f"  worst decrease        : {study.max_decrease:.1f}%")
    print(f"  share losing > 50%    : {100 * study.fraction_above(50):.0f}%")
    print("  histogram (10% bins)  :")
    for lo, hi, count in zip(study.bin_edges[:-1], study.bin_edges[1:], study.histogram):
        bar = "#" * count
        print(f"    {lo:3.0f}-{hi:3.0f}%  {bar} ({count})")


if __name__ == "__main__":
    main()

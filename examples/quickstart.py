#!/usr/bin/env python3
"""Quickstart: simulate a congested platform under several I/O schedulers.

This example builds a small platform, puts four periodic applications on it
whose combined I/O demand exceeds the shared back-end bandwidth, and compares
what happens under:

* the uncoordinated fair-share baseline (what the machine does on its own),
* the paper's online heuristics (MaxSysEff, MinDilation, MinMax-0.5),
* the RoundRobin comparison heuristic.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import Application, Scenario, generic
from repro.experiments import format_table
from repro.online import make_scheduler
from repro.simulator import SimulatorConfig, simulate


def main() -> None:
    # A platform of 1,024 unit-speed processors; each node has a 100 MB/s I/O
    # card and the shared parallel file system delivers 20 GB/s in aggregate.
    platform = generic(
        total_processors=1024,
        node_bandwidth=1e8,
        system_bandwidth=2e10,
        name="quickstart",
    )

    # Four periodic applications: compute for a while, then dump a checkpoint.
    # Together they want more bandwidth than the file system has, so their
    # I/O phases interfere.
    applications = (
        Application.periodic("climate", processors=512, work=300.0,
                             io_volume=4e12, n_instances=5),
        Application.periodic("combustion", processors=256, work=200.0,
                             io_volume=2e12, n_instances=6),
        Application.periodic("cosmology", processors=192, work=450.0,
                             io_volume=1.5e12, n_instances=4),
        Application.periodic("materials", processors=64, work=120.0,
                             io_volume=5e11, n_instances=8),
    )
    scenario = Scenario(platform=platform, applications=applications,
                        label="quickstart")

    rows = []
    for name in ("FairShare", "RoundRobin", "MaxSysEff", "MinDilation", "MinMax-0.5"):
        result = simulate(scenario, make_scheduler(name), SimulatorConfig())
        summary = result.summary()
        rows.append(
            [
                name,
                summary.system_efficiency,
                summary.dilation,
                summary.upper_limit,
                result.makespan / 3600.0,
            ]
        )

    print(
        format_table(
            ["Scheduler", "SysEfficiency (%)", "Dilation", "Upper limit (%)", "Makespan (h)"],
            rows,
            title="Quickstart: four applications competing for 20 GB/s",
        )
    )
    print(
        "The coordinated heuristics recover most of the efficiency lost to\n"
        "congestion; MaxSysEff maximizes machine throughput, MinDilation keeps\n"
        "the worst per-application slowdown low, MinMax-0.5 trades between the two."
    )


if __name__ == "__main__":
    main()

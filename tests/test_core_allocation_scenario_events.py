"""Unit tests for BandwidthAllocation, Scenario and the event log."""

from __future__ import annotations

import pytest

from repro.core.allocation import BandwidthAllocation
from repro.core.application import Application
from repro.core.events import Event, EventLog, EventType
from repro.core.platform import Platform
from repro.core.scenario import Scenario
from repro.utils.validation import ValidationError


@pytest.fixture
def apps():
    return {
        "a": Application.periodic("a", 10, 10.0, 1e6, 2),
        "b": Application.periodic("b", 5, 10.0, 1e6, 2),
    }


@pytest.fixture
def platform():
    return Platform("p", 100, 1e6, 1e7)


class TestBandwidthAllocation:
    def test_gamma_lookup_defaults_to_zero(self):
        alloc = BandwidthAllocation({"a": 5e5})
        assert alloc.gamma("a") == 5e5
        assert alloc.gamma("missing") == 0.0

    def test_zero_entries_dropped(self):
        alloc = BandwidthAllocation({"a": 0.0, "b": 1.0})
        assert "a" not in alloc
        assert "b" in alloc
        assert len(alloc) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            BandwidthAllocation({"a": -1.0})

    def test_application_rate(self, apps):
        alloc = BandwidthAllocation({"a": 2e5})
        assert alloc.application_rate(apps["a"]) == pytest.approx(2e6)

    def test_total_rate(self, apps):
        alloc = BandwidthAllocation({"a": 2e5, "b": 4e5})
        assert alloc.total_rate(apps.values()) == pytest.approx(2e6 + 2e6)

    def test_validate_ok(self, apps, platform):
        BandwidthAllocation({"a": 5e5, "b": 1e6}).validate(platform, apps)

    def test_validate_unknown_application(self, apps, platform):
        with pytest.raises(ValidationError):
            BandwidthAllocation({"zzz": 1.0}).validate(platform, apps)

    def test_validate_node_cap(self, apps, platform):
        with pytest.raises(ValidationError):
            BandwidthAllocation({"a": 2e6}).validate(platform, apps)

    def test_validate_total_cap(self, apps, platform):
        # a: 10 * 1e6 = 1e7 = B, b adds more -> violation
        with pytest.raises(ValidationError):
            BandwidthAllocation({"a": 1e6, "b": 1e6}).validate(platform, apps)

    def test_validate_custom_capacity(self, apps, platform):
        alloc = BandwidthAllocation({"a": 1e6})
        alloc.validate(platform, apps, capacity=1e7)
        with pytest.raises(ValidationError):
            alloc.validate(platform, apps, capacity=1e6)

    def test_restricted_to(self):
        alloc = BandwidthAllocation({"a": 1.0, "b": 2.0})
        restricted = alloc.restricted_to(["b"])
        assert restricted.active_applications() == frozenset({"b"})

    def test_empty(self):
        assert len(BandwidthAllocation.empty()) == 0


class TestScenario:
    def test_basic(self, apps, platform):
        sc = Scenario(platform=platform, applications=tuple(apps.values()), label="t")
        assert sc.n_applications == 2
        assert sc.used_processors == 15
        assert set(sc.application_names) == {"a", "b"}
        assert sc.application("a").processors == 10
        assert len(list(iter(sc))) == 2

    def test_duplicate_names_rejected(self, platform):
        app = Application.periodic("dup", 5, 1.0, 1.0, 1)
        with pytest.raises(ValidationError):
            Scenario(platform=platform, applications=(app, app))

    def test_overcommitted_platform_rejected(self, platform):
        big = Application.periodic("big", 200, 1.0, 1.0, 1)
        with pytest.raises(ValidationError):
            Scenario(platform=platform, applications=(big,))

    def test_empty_rejected(self, platform):
        with pytest.raises(ValidationError):
            Scenario(platform=platform, applications=())

    def test_unknown_lookup(self, apps, platform):
        sc = Scenario(platform=platform, applications=tuple(apps.values()))
        with pytest.raises(KeyError):
            sc.application("ghost")

    def test_subset(self, apps, platform):
        sc = Scenario(platform=platform, applications=tuple(apps.values()))
        sub = sc.subset(["b"])
        assert sub.application_names == ("b",)
        with pytest.raises(KeyError):
            sc.subset(["ghost"])

    def test_with_helpers(self, apps, platform):
        sc = Scenario(platform=platform, applications=tuple(apps.values()), label="x")
        assert sc.with_label("y").label == "y"
        bigger = Platform("p2", 1000, 1e6, 1e7)
        assert sc.with_platform(bigger).platform.name == "p2"
        one = sc.with_applications([apps["a"]])
        assert one.n_applications == 1


class TestEventLog:
    def test_chronological_append(self):
        log = EventLog()
        log.append(Event(0.0, EventType.APP_RELEASE, "a"))
        log.append(Event(1.0, EventType.IO_REQUEST, "a"))
        assert len(log) == 2

    def test_out_of_order_rejected(self):
        log = EventLog()
        log.append(Event(5.0, EventType.IO_REQUEST, "a"))
        with pytest.raises(ValueError):
            log.append(Event(1.0, EventType.IO_COMPLETE, "a"))

    def test_filters(self):
        log = EventLog()
        log.append(Event(0.0, EventType.APP_RELEASE, "a"))
        log.append(Event(1.0, EventType.IO_REQUEST, "b"))
        log.append(Event(2.0, EventType.IO_COMPLETE, "b"))
        assert len(log.of_type(EventType.IO_REQUEST)) == 1
        assert len(log.for_app("b")) == 2
        assert [e.event_type for e in log][0] == EventType.APP_RELEASE

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(-1.0, EventType.APP_RELEASE)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            Event(0.0, "not-an-event-type")
